//! Per-core analysis sessions over a [`Partition`].
//!
//! Under partitioned scheduling every analytical question factors
//! through the cores: a task's WCRT, detector threshold or allowance
//! depends only on the tasks sharing its core. [`PartitionedAnalyzer`]
//! therefore owns one memoized uniprocessor
//! [`Analyzer`] session per occupied core — the
//! exact session the harness, detectors and differential oracle already
//! consume — and exposes the same surface core-by-core: feasibility,
//! WCRTs, [`policy_thresholds`](Analyzer::policy_thresholds), equitable
//! and system allowances.

use crate::partition::Partition;
use rtft_core::allowance::{EquitableAllowance, SystemAllowance};
use rtft_core::analyzer::Analyzer;
use rtft_core::error::AnalysisError;
use rtft_core::policy::PolicyKind;
use rtft_core::task::TaskId;
use rtft_core::time::Duration;

/// One memoized [`Analyzer`] session per occupied core of a partition.
#[derive(Debug)]
pub struct PartitionedAnalyzer {
    partition: Partition,
    policy: PolicyKind,
    sessions: Vec<Option<Analyzer>>,
}

impl PartitionedAnalyzer {
    /// Build the per-core sessions for `partition` under `policy`.
    pub fn new(partition: Partition, policy: PolicyKind) -> Self {
        let sessions = (0..partition.cores())
            .map(|c| {
                partition
                    .core_set(c)
                    .map(|set| Analyzer::for_policy(set, policy))
            })
            .collect();
        PartitionedAnalyzer {
            partition,
            policy,
            sessions,
        }
    }

    /// The partition the sessions were built for.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The scheduling policy every core runs.
    pub fn sched_policy(&self) -> PolicyKind {
        self.policy
    }

    /// The analysis session of one core (`None` for empty cores).
    pub fn core_session_mut(&mut self, core: usize) -> Option<&mut Analyzer> {
        self.sessions.get_mut(core).and_then(Option::as_mut)
    }

    /// Every occupied core's session, cores ascending — the iteration
    /// the query plane's `Workbench` assembles per-core answers from.
    pub fn sessions_mut(&mut self) -> impl Iterator<Item = (usize, &mut Analyzer)> {
        self.sessions
            .iter_mut()
            .enumerate()
            .filter_map(|(core, s)| s.as_mut().map(|s| (core, s)))
    }

    /// System-wide admission: every occupied core passes its own
    /// policy-aware feasibility test.
    ///
    /// # Errors
    /// The first core's [`AnalysisError`], if any analysis fails.
    pub fn is_feasible(&mut self) -> Result<bool, AnalysisError> {
        for s in self.sessions.iter_mut().flatten() {
            if !s.is_feasible()? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Per-rank detection thresholds of one core — WCRTs under the
    /// fixed-priority policies, deadlines under EDF (exactly
    /// [`Analyzer::policy_thresholds`] of the core's session).
    ///
    /// # Errors
    /// The core session's [`AnalysisError`].
    ///
    /// # Panics
    /// Panics on an empty core.
    pub fn policy_thresholds(&mut self, core: usize) -> Result<Vec<Duration>, AnalysisError> {
        self.core_session_mut(core)
            .expect("policy_thresholds: empty core")
            .policy_thresholds()
    }

    /// A task's WCRT under its core's local schedule — the policy-aware
    /// threshold (blocking-inflated for non-preemptive FP); `None` for
    /// EDF, where the demand test yields no per-task response bound.
    ///
    /// # Errors
    /// The owning core session's [`AnalysisError`].
    ///
    /// # Panics
    /// Panics if the task is not in the partition.
    pub fn wcrt_of(&mut self, id: TaskId) -> Result<Option<Duration>, AnalysisError> {
        let core = self.partition.core_of(id).expect("wcrt_of: unknown task");
        if self.policy == PolicyKind::Edf {
            return Ok(None);
        }
        let rank = self
            .partition
            .core_set(core)
            .expect("occupied core")
            .rank_of(id)
            .expect("task on its core");
        Ok(Some(self.policy_thresholds(core)?[rank]))
    }

    /// Equitable allowance per core (`None` entries for empty or
    /// infeasible cores) — each core redistributes *its own* slack, so
    /// the allowances are independent and generally differ across cores.
    ///
    /// # Errors
    /// The first core's [`AnalysisError`].
    pub fn equitable_allowances(
        &mut self,
    ) -> Result<Vec<Option<EquitableAllowance>>, AnalysisError> {
        self.sessions
            .iter_mut()
            .map(|s| match s {
                Some(s) => s.equitable_allowance(),
                None => Ok(None),
            })
            .collect()
    }

    /// System allowance per core (`None` entries for empty or
    /// infeasible cores), under each session's configured slack policy.
    ///
    /// # Errors
    /// The first core's [`AnalysisError`].
    pub fn system_allowances(&mut self) -> Result<Vec<Option<SystemAllowance>>, AnalysisError> {
        self.sessions
            .iter_mut()
            .map(|s| match s {
                Some(s) => s.system_allowance(),
                None => Ok(None),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{allocate, AllocPolicy};
    use rtft_core::task::{TaskBuilder, TaskSet};

    fn ms(v: i64) -> Duration {
        Duration::millis(v)
    }

    /// Two copies of the paper's Table 2 system (ids 1–3 and 11–13):
    /// together they overload one core's deadlines, split 1:1 across two
    /// cores each half reproduces the paper's numbers exactly.
    fn twin_paper_set() -> TaskSet {
        let mut specs = Vec::new();
        for base in [0u32, 10] {
            specs.push(
                TaskBuilder::new(base + 1, 20, ms(200), ms(29))
                    .deadline(ms(70))
                    .build(),
            );
            specs.push(
                TaskBuilder::new(base + 2, 18, ms(250), ms(29))
                    .deadline(ms(120))
                    .build(),
            );
            specs.push(
                TaskBuilder::new(base + 3, 16, ms(1500), ms(29))
                    .deadline(ms(120))
                    .build(),
            );
        }
        TaskSet::from_specs(specs)
    }

    #[test]
    fn per_core_analysis_reproduces_the_uniprocessor_numbers() {
        let set = twin_paper_set();
        // WFD balances the twin system 3 tasks per core.
        let p = allocate(
            &set,
            2,
            PolicyKind::FixedPriority,
            AllocPolicy::WorstFitDecreasing,
        )
        .unwrap();
        let mut pa = PartitionedAnalyzer::new(p, PolicyKind::FixedPriority);
        assert!(pa.is_feasible().unwrap());
        for core in 0..2 {
            assert_eq!(pa.partition().core_set(core).unwrap().len(), 3);
            let thresholds = pa.policy_thresholds(core).unwrap();
            assert_eq!(thresholds, vec![ms(29), ms(58), ms(87)], "core {core}");
        }
        // Each core's equitable allowance is the paper's A = 11 ms.
        let eqs = pa.equitable_allowances().unwrap();
        for eq in eqs {
            assert_eq!(eq.unwrap().allowance, ms(11));
        }
        // System allowance per core: the paper's M = 33 ms.
        let sas = pa.system_allowances().unwrap();
        for sa in sas {
            assert_eq!(sa.unwrap().max_overrun, vec![ms(33), ms(33), ms(33)]);
        }
    }

    #[test]
    fn wcrt_follows_the_owning_core() {
        let set = twin_paper_set();
        let p = allocate(
            &set,
            2,
            PolicyKind::FixedPriority,
            AllocPolicy::WorstFitDecreasing,
        )
        .unwrap();
        let mut pa = PartitionedAnalyzer::new(p, PolicyKind::FixedPriority);
        // Both τ1 twins are their core's highest-priority task: WCRT = C.
        assert_eq!(pa.wcrt_of(TaskId(1)).unwrap(), Some(ms(29)));
        assert_eq!(pa.wcrt_of(TaskId(11)).unwrap(), Some(ms(29)));
    }

    #[test]
    fn edf_cores_have_no_per_task_wcrt() {
        let set = twin_paper_set();
        let p = allocate(&set, 2, PolicyKind::Edf, AllocPolicy::WorstFitDecreasing).unwrap();
        let mut pa = PartitionedAnalyzer::new(p, PolicyKind::Edf);
        assert!(pa.is_feasible().unwrap());
        assert_eq!(pa.wcrt_of(TaskId(1)).unwrap(), None);
        // Thresholds fall back to deadlines per core.
        for core in pa.partition().occupied_cores().collect::<Vec<_>>() {
            let set = pa.partition().core_set(core).unwrap().clone();
            let thresholds = pa.policy_thresholds(core).unwrap();
            for (rank, th) in thresholds.iter().enumerate() {
                assert_eq!(*th, set.by_rank(rank).deadline);
            }
        }
    }

    #[test]
    fn npfp_blocking_is_local_to_the_core() {
        // τ1 (C=5, D=8) over a long lower-priority task (C=10): under
        // npfp on one core τ1 can be blocked for 10 − ε and misses, so
        // the probe forces two cores; split, τ1 has no local blocker
        // and its threshold is its bare cost.
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 9, ms(40), ms(5))
                .deadline(ms(8))
                .build(),
            TaskBuilder::new(2, 3, ms(100), ms(10)).build(),
        ]);
        let e = allocate(
            &set,
            1,
            PolicyKind::NonPreemptiveFp,
            AllocPolicy::FirstFitDecreasing,
        );
        assert!(e.is_err(), "npfp blocking must fail the 1-core probe");
        // The same set under preemptive fp fits one core — allocation
        // is policy-sensitive.
        assert!(allocate(
            &set,
            1,
            PolicyKind::FixedPriority,
            AllocPolicy::FirstFitDecreasing
        )
        .is_ok());
        let p = allocate(
            &set,
            2,
            PolicyKind::NonPreemptiveFp,
            AllocPolicy::FirstFitDecreasing,
        )
        .unwrap();
        let mut pa = PartitionedAnalyzer::new(p, PolicyKind::NonPreemptiveFp);
        assert!(pa.is_feasible().unwrap());
        assert_eq!(
            pa.wcrt_of(TaskId(1)).unwrap(),
            Some(ms(5)),
            "no local blocker left"
        );
    }

    #[test]
    fn empty_cores_are_skipped() {
        let set = TaskSet::from_specs(vec![TaskBuilder::new(1, 9, ms(100), ms(10)).build()]);
        let p = allocate(
            &set,
            3,
            PolicyKind::FixedPriority,
            AllocPolicy::FirstFitDecreasing,
        )
        .unwrap();
        let mut pa = PartitionedAnalyzer::new(p, PolicyKind::FixedPriority);
        assert!(pa.is_feasible().unwrap());
        assert!(pa.core_session_mut(1).is_none());
        assert_eq!(pa.equitable_allowances().unwrap()[1], None);
    }
}
