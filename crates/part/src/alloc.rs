//! Bin-packing allocators for partitioned multiprocessor scheduling.
//!
//! Tasks are placed one by one in **decreasing utilization** order (the
//! classic *-fit-decreasing heuristics: FFD packs best when the big
//! items go first) and every tentative placement is validated by a
//! **per-core [`Analyzer`] feasibility probe** under the chosen
//! [`PolicyKind`] — not by a utilization threshold. The probe is the
//! exact per-core admission test (response-time analysis for fp/npfp,
//! the processor-demand test for edf), so an accepted [`Partition`] is
//! schedulable core by core *by construction*.
//!
//! Three heuristics differ only in which fitting core they pick:
//!
//! * [`AllocPolicy::FirstFitDecreasing`] — the lowest-indexed core that
//!   passes the probe (tends to fill low cores, leaving empties);
//! * [`AllocPolicy::BestFitDecreasing`] — the fitting core with the
//!   **highest** current utilization (tightest remaining room);
//! * [`AllocPolicy::WorstFitDecreasing`] — the fitting core with the
//!   **lowest** current utilization (balances load across cores).
//!
//! [`AllocPolicy::Exhaustive`] is a backtracking search over all
//! assignments (with identical-core symmetry breaking), exponential and
//! capped at [`EXHAUSTIVE_TASK_LIMIT`] tasks — it exists as the test
//! oracle the heuristics are property-checked against: whatever a
//! heuristic places, the exhaustive search must also place.

use crate::partition::Partition;
use rtft_core::analyzer::Analyzer;
use rtft_core::policy::PolicyKind;
use rtft_core::task::{TaskId, TaskSet, TaskSpec};
use std::fmt;

// The allocator vocabulary lives in the core query plane (a serialized
// `SystemSpec` names its placement); the algorithms live here.
pub use rtft_core::query::AllocPolicy;

/// Exhaustive search refuses sets larger than this (its worst case is
/// `cores^n` probes).
pub const EXHAUSTIVE_TASK_LIMIT: usize = 16;

/// Why a set could not be partitioned, with the placement state at the
/// point of failure (the rejection diagnostics of a campaign report).
#[derive(Clone, PartialEq, Debug)]
pub struct AllocError {
    /// First task no core would accept (`None` for whole-set errors,
    /// e.g. the exhaustive task limit).
    pub task: Option<TaskId>,
    /// Explanation, including per-core utilizations at failure.
    pub message: String,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.task {
            Some(t) => write!(f, "cannot place {t}: {}", self.message),
            None => write!(f, "allocation failed: {}", self.message),
        }
    }
}

impl std::error::Error for AllocError {}

/// Partition `set` over `cores` identical cores under `alloc`, probing
/// every placement with a per-core feasibility analysis for `policy`.
///
/// `cores == 1` always yields [`Partition::single_core`] *if* the set is
/// feasible on one core (the probe still runs — an infeasible set is a
/// rejection, matching the uniprocessor admission gate).
///
/// # Errors
/// [`AllocError`] when some task fits no core (heuristics), no
/// assignment exists (exhaustive), or the set exceeds
/// [`EXHAUSTIVE_TASK_LIMIT`] for the exhaustive search.
pub fn allocate(
    set: &TaskSet,
    cores: usize,
    policy: PolicyKind,
    alloc: AllocPolicy,
) -> Result<Partition, AllocError> {
    assert!(cores >= 1, "need at least one core");
    let order = decreasing_utilization(set);
    match alloc {
        AllocPolicy::Exhaustive => exhaustive(set, &order, cores, policy),
        _ => heuristic(set, &order, cores, policy, alloc),
    }
}

/// Task ranks of `set` in decreasing-utilization order, ties broken by
/// ascending id — exact integer cross-multiplication, no float compare.
fn decreasing_utilization(set: &TaskSet) -> Vec<usize> {
    let mut order: Vec<usize> = (0..set.len()).collect();
    order.sort_by(|&a, &b| {
        let (ta, tb) = (set.by_rank(a), set.by_rank(b));
        // u_a vs u_b  ⇔  C_a·T_b vs C_b·T_a
        let ua = i128::from(ta.cost.as_nanos()) * i128::from(tb.period.as_nanos());
        let ub = i128::from(tb.cost.as_nanos()) * i128::from(ta.period.as_nanos());
        ub.cmp(&ua).then(ta.id.cmp(&tb.id))
    });
    order
}

/// The per-core admission probe: would `group ∪ {candidate}` stay
/// feasible under `policy`? Analysis errors (divergence past the
/// iteration limit) count as "does not fit".
fn fits(group: &[TaskSpec], candidate: &TaskSpec, policy: PolicyKind) -> bool {
    let mut tasks = group.to_vec();
    tasks.push(candidate.clone());
    let Ok(set) = TaskSet::new(tasks) else {
        return false;
    };
    Analyzer::for_policy(&set, policy)
        .is_feasible()
        .unwrap_or(false)
}

fn utilization_of(group: &[TaskSpec]) -> f64 {
    group.iter().map(TaskSpec::utilization).sum()
}

fn rejection(set: &TaskSet, groups: &[Vec<TaskSpec>], task: &TaskSpec) -> AllocError {
    let loads: Vec<String> = groups
        .iter()
        .enumerate()
        .map(|(c, g)| format!("core {c} U={:.3}", utilization_of(g)))
        .collect();
    AllocError {
        task: Some(task.id),
        message: format!(
            "no core passes the feasibility probe (task U={:.3}, set U={:.3}; {})",
            task.utilization(),
            set.utilization(),
            loads.join(", ")
        ),
    }
}

fn heuristic(
    set: &TaskSet,
    order: &[usize],
    cores: usize,
    policy: PolicyKind,
    alloc: AllocPolicy,
) -> Result<Partition, AllocError> {
    let mut groups: Vec<Vec<TaskSpec>> = vec![Vec::new(); cores];
    for &rank in order {
        let task = set.by_rank(rank);
        let fitting = (0..cores).filter(|&c| fits(&groups[c], task, policy));
        let chosen = match alloc {
            AllocPolicy::FirstFitDecreasing => fitting.take(1).next(),
            AllocPolicy::BestFitDecreasing => {
                // Highest-loaded fitting core; f64 total_cmp with the
                // index tiebreak keeps the choice fully deterministic.
                fitting.fold(None::<usize>, |best, c| match best {
                    Some(b)
                        if utilization_of(&groups[b]).total_cmp(&utilization_of(&groups[c]))
                            != std::cmp::Ordering::Less =>
                    {
                        Some(b)
                    }
                    _ => Some(c),
                })
            }
            AllocPolicy::WorstFitDecreasing => fitting.fold(None::<usize>, |best, c| match best {
                Some(b)
                    if utilization_of(&groups[b]).total_cmp(&utilization_of(&groups[c]))
                        != std::cmp::Ordering::Greater =>
                {
                    Some(b)
                }
                _ => Some(c),
            }),
            AllocPolicy::Exhaustive => unreachable!("dispatched in allocate()"),
        };
        match chosen {
            Some(core) => groups[core].push(task.clone()),
            None => return Err(rejection(set, &groups, task)),
        }
    }
    Ok(Partition::from_groups(groups))
}

fn exhaustive(
    set: &TaskSet,
    order: &[usize],
    cores: usize,
    policy: PolicyKind,
) -> Result<Partition, AllocError> {
    if set.len() > EXHAUSTIVE_TASK_LIMIT {
        return Err(AllocError {
            task: None,
            message: format!(
                "exhaustive allocator is limited to {EXHAUSTIVE_TASK_LIMIT} tasks (got {})",
                set.len()
            ),
        });
    }
    let mut groups: Vec<Vec<TaskSpec>> = vec![Vec::new(); cores];
    if search(set, order, 0, &mut groups, policy) {
        Ok(Partition::from_groups(groups))
    } else {
        Err(AllocError {
            task: Some(set.by_rank(order[0]).id),
            message: format!(
                "no feasible assignment exists on {cores} cores under {policy} \
                 (set U={:.3})",
                set.utilization()
            ),
        })
    }
}

/// Depth-first assignment of `order[depth..]`. Identical-core symmetry
/// breaking: a task may open at most one fresh (empty) core — trying a
/// second empty core only permutes core indices.
fn search(
    set: &TaskSet,
    order: &[usize],
    depth: usize,
    groups: &mut Vec<Vec<TaskSpec>>,
    policy: PolicyKind,
) -> bool {
    let Some(&rank) = order.get(depth) else {
        return true;
    };
    let task = set.by_rank(rank);
    let mut tried_empty = false;
    for core in 0..groups.len() {
        if groups[core].is_empty() {
            if tried_empty {
                continue;
            }
            tried_empty = true;
        }
        if !fits(&groups[core], task, policy) {
            continue;
        }
        groups[core].push(task.clone());
        if search(set, order, depth + 1, groups, policy) {
            return true;
        }
        groups[core].pop();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtft_core::task::TaskBuilder;
    use rtft_core::time::Duration;

    fn ms(v: i64) -> Duration {
        Duration::millis(v)
    }

    /// Four tasks of U = 0.6 each: total 2.4 needs ≥ 3 cores; on 4 cores
    /// FFD packs pairwise-infeasible tasks one per... actually any pair
    /// sums to 1.2 > 1, so every core takes exactly one task.
    fn heavy4() -> TaskSet {
        TaskSet::from_specs(
            (1..=4)
                .map(|i| TaskBuilder::new(i, 10 - i as i32, ms(100), ms(60)).build())
                .collect(),
        )
    }

    #[test]
    fn labels_round_trip() {
        for a in AllocPolicy::HEURISTICS
            .into_iter()
            .chain([AllocPolicy::Exhaustive])
        {
            assert_eq!(a.label().parse::<AllocPolicy>().unwrap(), a);
            assert_eq!(a.to_string(), a.label());
        }
        assert!("sideways".parse::<AllocPolicy>().is_err());
    }

    #[test]
    fn heavy_tasks_spread_one_per_core() {
        for alloc in AllocPolicy::HEURISTICS {
            let p = allocate(&heavy4(), 4, PolicyKind::FixedPriority, alloc).unwrap();
            for core in 0..4 {
                assert_eq!(p.core_set(core).unwrap().len(), 1, "{alloc}");
            }
        }
    }

    #[test]
    fn overload_is_rejected_with_diagnostics() {
        let e = allocate(
            &heavy4(),
            3,
            PolicyKind::FixedPriority,
            AllocPolicy::FirstFitDecreasing,
        )
        .unwrap_err();
        assert!(e.task.is_some());
        assert!(e.to_string().contains("feasibility probe"), "{e}");
        assert!(e.to_string().contains("core 2"), "{e}");
        // The exhaustive search agrees: no assignment exists at all.
        let e = allocate(
            &heavy4(),
            3,
            PolicyKind::FixedPriority,
            AllocPolicy::Exhaustive,
        )
        .unwrap_err();
        assert!(e.to_string().contains("no feasible assignment"), "{e}");
    }

    #[test]
    fn ffd_and_wfd_disagree_on_shape() {
        // Two light tasks on two cores: FFD stacks both on core 0,
        // WFD balances one per core.
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 9, ms(100), ms(20)).build(),
            TaskBuilder::new(2, 8, ms(100), ms(20)).build(),
        ]);
        let ffd = allocate(
            &set,
            2,
            PolicyKind::FixedPriority,
            AllocPolicy::FirstFitDecreasing,
        )
        .unwrap();
        assert_eq!(ffd.core_set(0).unwrap().len(), 2);
        assert!(ffd.core_set(1).is_none());
        let wfd = allocate(
            &set,
            2,
            PolicyKind::FixedPriority,
            AllocPolicy::WorstFitDecreasing,
        )
        .unwrap();
        assert_eq!(wfd.core_set(0).unwrap().len(), 1);
        assert_eq!(wfd.core_set(1).unwrap().len(), 1);
    }

    #[test]
    fn bfd_prefers_the_tightest_core() {
        // A 0.5 task then two 0.2 tasks on two cores: BFD packs the 0.2s
        // onto the already-loaded core 0 (0.5+0.2+0.2 = 0.9 feasible for
        // RM? 3 implicit-deadline tasks, same period 100: C sums to 90
        // ≤ 100 with RM priorities — feasible), WFD sends them to core 1.
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 9, ms(100), ms(50)).build(),
            TaskBuilder::new(2, 8, ms(100), ms(20)).build(),
            TaskBuilder::new(3, 7, ms(100), ms(20)).build(),
        ]);
        let bfd = allocate(
            &set,
            2,
            PolicyKind::FixedPriority,
            AllocPolicy::BestFitDecreasing,
        )
        .unwrap();
        assert_eq!(bfd.core_set(0).unwrap().len(), 3);
        let wfd = allocate(
            &set,
            2,
            PolicyKind::FixedPriority,
            AllocPolicy::WorstFitDecreasing,
        )
        .unwrap();
        assert_eq!(wfd.core_set(0).unwrap().len(), 1);
        assert_eq!(wfd.core_set(1).unwrap().len(), 2);
    }

    #[test]
    fn probe_is_schedulability_not_utilization() {
        // U = 0.95 on one core but deadline-infeasible under the probe:
        // two tasks whose WCRT analysis rejects despite U < 1.
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 9, ms(100), ms(50)).build(),
            TaskBuilder::new(2, 8, ms(100), ms(45))
                .deadline(ms(60))
                .build(),
        ]);
        // Together infeasible (τ2 responds at 95 > 60), so two cores are
        // required even though U < 1.
        let p = allocate(
            &set,
            2,
            PolicyKind::FixedPriority,
            AllocPolicy::FirstFitDecreasing,
        )
        .unwrap();
        assert_ne!(p.core_of(TaskId(1)).unwrap(), p.core_of(TaskId(2)).unwrap());
        let e = allocate(
            &set,
            1,
            PolicyKind::FixedPriority,
            AllocPolicy::FirstFitDecreasing,
        );
        assert!(e.is_err(), "one core must reject on the WCRT probe");
    }

    #[test]
    fn single_core_allocation_matches_admission() {
        let set = rtft_core::task::TaskSet::from_specs(vec![
            TaskBuilder::new(1, 20, ms(200), ms(29))
                .deadline(ms(70))
                .build(),
            TaskBuilder::new(2, 18, ms(250), ms(29))
                .deadline(ms(120))
                .build(),
        ]);
        let p = allocate(
            &set,
            1,
            PolicyKind::FixedPriority,
            AllocPolicy::BestFitDecreasing,
        )
        .unwrap();
        assert_eq!(p, Partition::single_core(&set));
    }

    #[test]
    fn exhaustive_places_what_needs_backtracking() {
        // Utilizations 0.6, 0.5, 0.5, 0.4 on two cores: decreasing order
        // places 0.6 then 0.5 on separate cores; FFD then puts 0.5 with
        // 0.5 wait that's fine (1.0 RM implicit same period? C=50+50=100
        // = T: feasible). Make it tight with deadlines instead: use
        // harmonic loads 0.6/0.5/0.5/0.4 where only {0.6,0.4}+{0.5,0.5}
        // works.
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 9, ms(100), ms(60)).build(),
            TaskBuilder::new(2, 8, ms(100), ms(50)).build(),
            TaskBuilder::new(3, 7, ms(100), ms(50)).build(),
            TaskBuilder::new(4, 6, ms(100), ms(40)).build(),
        ]);
        let p = allocate(&set, 2, PolicyKind::FixedPriority, AllocPolicy::Exhaustive).unwrap();
        // Only the {1,4} / {2,3} split fits (0.6+0.5 = 1.1 overloads).
        assert_eq!(p.core_of(TaskId(1)), p.core_of(TaskId(4)));
        assert_eq!(p.core_of(TaskId(2)), p.core_of(TaskId(3)));
        assert_ne!(p.core_of(TaskId(1)), p.core_of(TaskId(2)));
    }

    #[test]
    fn exhaustive_task_limit_is_enforced() {
        let set = TaskSet::from_specs(
            (1..=17)
                .map(|i| TaskBuilder::new(i, -(i as i32), ms(1000), ms(1)).build())
                .collect(),
        );
        let e = allocate(&set, 2, PolicyKind::FixedPriority, AllocPolicy::Exhaustive).unwrap_err();
        assert!(e.task.is_none());
        assert!(e.to_string().contains("limited to 16 tasks"), "{e}");
    }
}
