//! The [`Workbench`]: one executor for the serializable query plane.
//!
//! [`rtft_core::query`] defines *what* can be asked — a
//! [`SystemSpec`] plus [`Query`] values answered by typed
//! [`Response`]s. This module owns *how*: a `Workbench` holds the
//! memoized analysis state for one spec and dispatches automatically —
//! a uniprocessor [`Analyzer`] session on one core, a per-core
//! [`PartitionedAnalyzer`] (allocation included) on several — so
//! callers never branch on platform. Campaign engine workers, the
//! `rtft query` / `rtft analyze` commands and the benches all answer
//! questions through this one type.
//!
//! [`Workbench::run_batch`] additionally *orders* the queries of a
//! batch to maximize warm-start reuse inside the existing fixed-point
//! and binary-search memoization: cheap memo-populating queries
//! (feasibility, WCRTs, thresholds) run first, then the equitable
//! search (which seeds the session's busy-period caches along its
//! feasible frontier), then the per-task overrun searches that reuse
//! those seeds, then the scaling search. Responses come back in the
//! caller's order; ordering changes *when* a fixed point is computed,
//! never its value.
//!
//! ```
//! use rtft_core::query::{parse_batch, Query, Response};
//! use rtft_part::workbench::Workbench;
//!
//! let (spec, queries) = parse_batch(
//!     "system paper\n\
//!      task tau1 20 200ms 70ms 29ms\n\
//!      task tau2 18 250ms 120ms 29ms\n\
//!      task tau3 16 1500ms 120ms 29ms\n\
//!      query feasibility\n\
//!      query equitable\n",
//! )
//! .unwrap();
//! let mut bench = Workbench::new(spec);
//! let responses = bench.run_batch(&queries).unwrap();
//! assert!(matches!(
//!     responses[0],
//!     Response::Feasibility { feasible: true, .. }
//! ));
//! let Response::EquitableAllowance(cores) = &responses[1] else {
//!     panic!("equitable response expected");
//! };
//! // The paper's Table 2 allowance: A = 11 ms.
//! assert_eq!(
//!     cores[0].allowance,
//!     Some(rtft_core::time::Duration::millis(11))
//! );
//! ```

use crate::alloc::allocate;
use crate::analyzer::PartitionedAnalyzer;
use crate::partition::Partition;
use rtft_core::analyzer::{Analyzer, AnalyzerBuilder};
use rtft_core::diag::{self, Diagnostic};
use rtft_core::error::AnalysisError;
use rtft_core::policy::PolicyKind;
use rtft_core::query::{
    CoreAllowance, CoreScale, Placement, Query, Response, SystemSpec, TaskValue,
};
use rtft_core::time::Duration;
use rtft_global::GlobalAnalyzer;

/// The memoized analysis state behind a [`Workbench`], built lazily on
/// the first query.
enum Backend {
    /// One core: the plain uniprocessor session — bit-identical to the
    /// pre-query-plane `Analyzer` path.
    Uni(Box<Analyzer>),
    /// Several cores: one session per occupied core over the
    /// allocator's partition.
    Multi(Box<PartitionedAnalyzer>),
    /// Several migrating cores (`placement global`): one shared-queue
    /// session over the whole set — sufficient-only bounds, no
    /// partition. Queries report every task on core 0.
    Global(Box<GlobalAnalyzer>),
    /// The allocator found no placement; the diagnostics answer every
    /// query.
    Unplaceable(String),
}

/// Memoized query executor for one [`SystemSpec`]. See the
/// [module docs](self).
pub struct Workbench {
    spec: SystemSpec,
    backend: Option<Backend>,
    /// Pre-flight findings from [`diag::lint_system`], computed once at
    /// construction (static rules only — microseconds, no fixed point).
    lint: Vec<Diagnostic>,
}

impl Workbench {
    /// A workbench over `spec`. No analysis runs until the first query
    /// (or session accessor) forces the backend.
    pub fn new(spec: SystemSpec) -> Self {
        let lint = diag::lint_system(&spec);
        Workbench {
            spec,
            backend: None,
            lint,
        }
    }

    /// The spec this workbench answers queries about.
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// The pre-flight diagnostics for the spec (all severities).
    /// Error-severity findings make every [`Workbench::run`] answer
    /// [`Response::Rejected`] without building a backend.
    pub fn lint(&self) -> &[Diagnostic] {
        &self.lint
    }

    fn ensure(&mut self) -> &mut Backend {
        self.backend.get_or_insert_with(|| {
            if self.spec.cores <= 1 {
                return Backend::Uni(Box::new(
                    AnalyzerBuilder::new(&self.spec.set)
                        .sched_policy(self.spec.policy)
                        .build(),
                ));
            }
            if self.spec.placement == Placement::Global {
                return Backend::Global(Box::new(GlobalAnalyzer::new(
                    self.spec.set.clone(),
                    self.spec.cores,
                    self.spec.policy,
                )));
            }
            match allocate(
                &self.spec.set,
                self.spec.cores,
                self.spec.policy,
                self.spec.alloc,
            ) {
                Ok(partition) => Backend::Multi(Box::new(PartitionedAnalyzer::new(
                    partition,
                    self.spec.policy,
                ))),
                Err(e) => Backend::Unplaceable(e.to_string()),
            }
        })
    }

    /// The uniprocessor session (`None` on a multicore or unplaceable
    /// spec) — the exact session the scenario harness consumes.
    pub fn uni_session_mut(&mut self) -> Option<&mut Analyzer> {
        match self.ensure() {
            Backend::Uni(a) => Some(a),
            _ => None,
        }
    }

    /// The per-core sessions (`None` on a uniprocessor or unplaceable
    /// spec).
    pub fn partitioned_mut(&mut self) -> Option<&mut PartitionedAnalyzer> {
        match self.ensure() {
            Backend::Multi(pa) => Some(pa),
            _ => None,
        }
    }

    /// The global session (`None` unless the spec is a multicore
    /// `placement global` system) — the session the global scenario
    /// runner consumes.
    pub fn global_mut(&mut self) -> Option<&mut GlobalAnalyzer> {
        match self.ensure() {
            Backend::Global(ga) => Some(ga),
            _ => None,
        }
    }

    /// The partition behind a multicore spec (`None` otherwise).
    pub fn partition(&mut self) -> Option<&Partition> {
        match self.ensure() {
            Backend::Multi(pa) => Some(pa.partition()),
            _ => None,
        }
    }

    /// The allocator's rejection diagnostics, when the spec is
    /// unplaceable.
    pub fn unplaceable(&mut self) -> Option<&str> {
        match self.ensure() {
            Backend::Unplaceable(diag) => Some(diag),
            _ => None,
        }
    }

    /// Answer one query. Specs whose pre-flight [`Workbench::lint`]
    /// carries Error-severity findings answer [`Response::Rejected`]
    /// for every query — the static proofs make running the analyzer
    /// pointless.
    ///
    /// # Errors
    /// [`AnalysisError`] when an underlying fixed point trips its
    /// iteration guard. (Divergence — a saturated level workload — is
    /// an *answer*, reported as `None` values, not an error.)
    ///
    /// # Panics
    /// Panics when a [`Query::MaxSingleOverrun`] names a task that is
    /// not in the spec's set (a parsed batch cannot produce one).
    pub fn run(&mut self, query: &Query) -> Result<Response, AnalysisError> {
        if diag::has_errors(&self.lint) {
            // The static lint proved the spec broken or infeasible:
            // reject instead of spending analyzer time (or panicking in
            // a fixed point the proofs say cannot settle).
            return Ok(Response::Rejected(self.lint.clone()));
        }
        if let Some(diag) = self.unplaceable() {
            return Ok(Response::Unplaceable(diag.to_string()));
        }
        if matches!(self.ensure(), Backend::Global(_)) {
            return Ok(self.global_query(query));
        }
        match query {
            Query::Feasibility => self.feasibility(),
            Query::WcrtAll => self.per_task(false).map(Response::WcrtAll),
            Query::Thresholds => self.per_task(true).map(Response::Thresholds),
            Query::EquitableAllowance => self.equitable(),
            Query::SystemAllowance(policy) => {
                let policy = *policy;
                let per_task = self.for_each_core(|core, session| {
                    let sa = session.system_allowance_with(policy)?;
                    Ok(task_values(session, core, |rank| {
                        sa.as_ref().map(|sa| sa.max_overrun[rank])
                    }))
                })?;
                Ok(Response::SystemAllowance { policy, per_task })
            }
            Query::MaxSingleOverrun(id) => {
                let id = *id;
                let rows = self.for_each_core(|core, session| {
                    let Some(rank) = session.task_set().rank_of(id) else {
                        return Ok(Vec::new());
                    };
                    let m = session.max_single_overrun_with(
                        rank,
                        rtft_core::allowance::SlackPolicy::ProtectAll,
                    )?;
                    let spec = session.task_set().by_rank(rank);
                    Ok(vec![TaskValue {
                        task: spec.id,
                        name: spec.name.clone(),
                        core,
                        value: m,
                    }])
                })?;
                let v = rows
                    .into_iter()
                    .next()
                    .unwrap_or_else(|| panic!("overrun query names task {id:?} not in the set"));
                Ok(Response::MaxSingleOverrun(v))
            }
            Query::Sensitivity => {
                let cores = self.for_each_core(|core, session| {
                    Ok(vec![CoreScale {
                        core,
                        factor: session.cost_scaling_margin()?,
                    }])
                })?;
                Ok(Response::Sensitivity(cores))
            }
        }
    }

    /// Answer a batch, reordering execution for warm-start reuse while
    /// returning responses in the caller's order. This is the batched
    /// entry `rtft query` and the campaign path use; on cold sessions
    /// it is measurably faster than one-shot workbenches per query
    /// (see `bench_query`).
    ///
    /// # Errors
    /// The first [`AnalysisError`] any query produces.
    pub fn run_batch(&mut self, queries: &[Query]) -> Result<Vec<Response>, AnalysisError> {
        let mut order: Vec<usize> = (0..queries.len()).collect();
        order.sort_by_key(|&i| diag::execution_phase(&queries[i]));
        let mut responses: Vec<Option<Response>> = vec![None; queries.len()];
        for i in order {
            responses[i] = Some(self.run(&queries[i])?);
        }
        Ok(responses
            .into_iter()
            .map(|r| r.expect("answered"))
            .collect())
    }

    /// Run `f` over every occupied core's `(core, session)`,
    /// concatenating the per-core rows (cores ascending — rank order
    /// within a core). The core's task set is read through the
    /// session ([`Analyzer::task_set`]), so no set is cloned per query.
    fn for_each_core<T>(
        &mut self,
        mut f: impl FnMut(usize, &mut Analyzer) -> Result<Vec<T>, AnalysisError>,
    ) -> Result<Vec<T>, AnalysisError> {
        match self.ensure() {
            Backend::Uni(session) => f(0, session),
            Backend::Multi(pa) => {
                let mut out = Vec::new();
                for (core, session) in pa.sessions_mut() {
                    out.extend(f(core, session)?);
                }
                Ok(out)
            }
            Backend::Global(_) => unreachable!("run() routes global specs to global_query"),
            Backend::Unplaceable(_) => unreachable!("run() short-circuits unplaceable specs"),
        }
    }

    /// Answer one query over the global session. Globally scheduled
    /// tasks have no home core, so every row reports core 0; all
    /// numbers carry the crate's sufficient-only semantics (a `None`
    /// WCRT is "no convergent bound", infeasible means "unproven").
    fn global_query(&mut self, query: &Query) -> Response {
        let ga = match self.ensure() {
            Backend::Global(ga) => ga,
            _ => unreachable!("global_query requires the global backend"),
        };
        match query {
            Query::Feasibility => {
                let v = ga.verdict();
                Response::Feasibility {
                    feasible: v.feasible,
                    overloaded: v.overloaded,
                    utilization: v.utilization,
                }
            }
            Query::WcrtAll => {
                let bounds = ga.wcrt_bounds().to_vec();
                Response::WcrtAll(global_rows(ga.task_set(), &bounds))
            }
            Query::Thresholds => {
                let bounds: Vec<_> = ga
                    .stop_thresholds_at(Duration::ZERO)
                    .into_iter()
                    .map(Some)
                    .collect();
                Response::Thresholds(global_rows(ga.task_set(), &bounds))
            }
            Query::EquitableAllowance => {
                let allowance = ga.equitable_allowance();
                let stop_thresholds = allowance
                    .map(|a| {
                        let inflated: Vec<_> =
                            ga.stop_thresholds_at(a).into_iter().map(Some).collect();
                        global_rows(ga.task_set(), &inflated)
                    })
                    .unwrap_or_default();
                Response::EquitableAllowance(vec![CoreAllowance {
                    core: 0,
                    allowance,
                    stop_thresholds,
                }])
            }
            // SlackPolicy cannot loosen the global bound (an overrun
            // interferes with every lower-priority task system-wide),
            // so both policies answer the protect-all maxima.
            Query::SystemAllowance(policy) => {
                let maxima: Vec<_> = (0..ga.task_set().len())
                    .map(|rank| ga.max_single_overrun(rank))
                    .collect();
                Response::SystemAllowance {
                    policy: *policy,
                    per_task: global_rows(ga.task_set(), &maxima),
                }
            }
            Query::MaxSingleOverrun(id) => {
                let rank = ga
                    .task_set()
                    .rank_of(*id)
                    .unwrap_or_else(|| panic!("overrun query names task {id:?} not in the set"));
                let value = ga.max_single_overrun(rank);
                let spec = ga.task_set().by_rank(rank);
                Response::MaxSingleOverrun(TaskValue {
                    task: spec.id,
                    name: spec.name.clone(),
                    core: 0,
                    value,
                })
            }
            Query::Sensitivity => Response::Sensitivity(vec![CoreScale {
                core: 0,
                factor: ga.cost_scaling_margin(),
            }]),
        }
    }

    fn feasibility(&mut self) -> Result<Response, AnalysisError> {
        let utilization = self.spec.set.utilization();
        match self.ensure() {
            Backend::Uni(session) => {
                if utilization > 1.0 {
                    return Ok(Response::Feasibility {
                        feasible: false,
                        overloaded: true,
                        utilization,
                    });
                }
                Ok(Response::Feasibility {
                    feasible: session.is_feasible()?,
                    overloaded: false,
                    utilization,
                })
            }
            Backend::Multi(pa) => {
                let overloaded = pa.partition().occupied_cores().any(|c| {
                    pa.partition()
                        .core_set(c)
                        .is_some_and(|s| s.utilization() > 1.0)
                });
                if overloaded {
                    return Ok(Response::Feasibility {
                        feasible: false,
                        overloaded: true,
                        utilization,
                    });
                }
                Ok(Response::Feasibility {
                    feasible: pa.is_feasible()?,
                    overloaded: false,
                    utilization,
                })
            }
            Backend::Global(_) => unreachable!("run() routes global specs to global_query"),
            Backend::Unplaceable(_) => unreachable!("run() short-circuits unplaceable specs"),
        }
    }

    /// Per-task durations: WCRTs (`thresholds = false`, `None` under
    /// EDF) or detection thresholds (`thresholds = true`, deadlines
    /// under EDF). Divergent tasks answer `None` either way.
    fn per_task(&mut self, thresholds: bool) -> Result<Vec<TaskValue>, AnalysisError> {
        let policy = self.spec.policy;
        self.for_each_core(|core, session| {
            let mut rows = Vec::with_capacity(session.len());
            for rank in 0..session.len() {
                let value = if policy == PolicyKind::Edf {
                    if thresholds {
                        Some(session.task_set().by_rank(rank).deadline)
                    } else {
                        None
                    }
                } else {
                    match session.wcrt(rank) {
                        Ok(w) => Some(w),
                        Err(AnalysisError::Divergent { .. }) => None,
                        Err(e) => return Err(e),
                    }
                };
                let spec = session.task_set().by_rank(rank);
                rows.push(TaskValue {
                    task: spec.id,
                    name: spec.name.clone(),
                    core,
                    value,
                });
            }
            Ok(rows)
        })
    }

    fn equitable(&mut self) -> Result<Response, AnalysisError> {
        let cores = self.for_each_core(|core, session| {
            let eq = session.equitable_allowance()?;
            let stop_thresholds = eq
                .as_ref()
                .map(|eq| task_values(session, core, |rank| Some(eq.inflated_wcrt[rank])))
                .unwrap_or_default();
            Ok(vec![CoreAllowance {
                core,
                allowance: eq.map(|eq| eq.allowance),
                stop_thresholds,
            }])
        })?;
        Ok(Response::EquitableAllowance(cores))
    }
}

/// Rank-ordered [`TaskValue`] rows over a globally scheduled set —
/// every task on core 0 (global tasks have no home core).
fn global_rows(set: &rtft_core::task::TaskSet, values: &[Option<Duration>]) -> Vec<TaskValue> {
    (0..set.len())
        .map(|rank| {
            let spec = set.by_rank(rank);
            TaskValue {
                task: spec.id,
                name: spec.name.clone(),
                core: 0,
                value: values[rank],
            }
        })
        .collect()
}

/// Rank-ordered [`TaskValue`] rows over one core's session.
fn task_values(
    session: &Analyzer,
    core: usize,
    value: impl Fn(usize) -> Option<Duration>,
) -> Vec<TaskValue> {
    let set = session.task_set();
    (0..set.len())
        .map(|rank| {
            let spec = set.by_rank(rank);
            TaskValue {
                task: spec.id,
                name: spec.name.clone(),
                core,
                value: value(rank),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtft_core::allowance::SlackPolicy;
    use rtft_core::query::AllocPolicy;
    use rtft_core::task::{TaskBuilder, TaskId, TaskSet};

    fn ms(v: i64) -> Duration {
        Duration::millis(v)
    }

    fn paper_set() -> TaskSet {
        TaskSet::from_specs(vec![
            TaskBuilder::new(1, 20, ms(200), ms(29))
                .deadline(ms(70))
                .build(),
            TaskBuilder::new(2, 18, ms(250), ms(29))
                .deadline(ms(120))
                .build(),
            TaskBuilder::new(3, 16, ms(1500), ms(29))
                .deadline(ms(120))
                .build(),
        ])
    }

    /// Twin paper system: needs two cores, each half reproducing the
    /// uniprocessor Table 2 numbers.
    fn twin_set() -> TaskSet {
        let mut specs = Vec::new();
        for base in [0u32, 10] {
            specs.push(
                TaskBuilder::new(base + 1, 20, ms(200), ms(29))
                    .deadline(ms(70))
                    .build(),
            );
            specs.push(
                TaskBuilder::new(base + 2, 18, ms(250), ms(29))
                    .deadline(ms(120))
                    .build(),
            );
            specs.push(
                TaskBuilder::new(base + 3, 16, ms(1500), ms(29))
                    .deadline(ms(120))
                    .build(),
            );
        }
        TaskSet::from_specs(specs)
    }

    fn all_queries() -> Vec<Query> {
        vec![
            Query::Feasibility,
            Query::WcrtAll,
            Query::Thresholds,
            Query::EquitableAllowance,
            Query::SystemAllowance(SlackPolicy::ProtectAll),
            Query::MaxSingleOverrun(TaskId(1)),
            Query::Sensitivity,
        ]
    }

    #[test]
    fn uniprocessor_answers_match_the_analyzer_session() {
        let mut bench = Workbench::new(SystemSpec::uniprocessor("paper", paper_set()));
        let responses = bench.run_batch(&all_queries()).unwrap();
        assert_eq!(
            responses[0],
            Response::Feasibility {
                feasible: true,
                overloaded: false,
                utilization: paper_set().utilization(),
            }
        );
        let Response::WcrtAll(wcrt) = &responses[1] else {
            panic!()
        };
        let values: Vec<_> = wcrt.iter().map(|v| v.value.unwrap()).collect();
        assert_eq!(values, vec![ms(29), ms(58), ms(87)]);
        let Response::Thresholds(th) = &responses[2] else {
            panic!()
        };
        assert_eq!(th, wcrt, "fp thresholds are the WCRTs");
        let Response::EquitableAllowance(eq) = &responses[3] else {
            panic!()
        };
        assert_eq!(eq[0].allowance, Some(ms(11)));
        let stops: Vec<_> = eq[0]
            .stop_thresholds
            .iter()
            .map(|v| v.value.unwrap())
            .collect();
        assert_eq!(stops, vec![ms(40), ms(80), ms(120)]);
        let Response::SystemAllowance { per_task, .. } = &responses[4] else {
            panic!()
        };
        let ms33: Vec<_> = per_task.iter().map(|v| v.value.unwrap()).collect();
        assert_eq!(ms33, vec![ms(33), ms(33), ms(33)]);
        assert_eq!(
            responses[5],
            Response::MaxSingleOverrun(TaskValue {
                task: TaskId(1),
                name: "τ1".into(),
                core: 0,
                value: Some(ms(33)),
            })
        );
        let Response::Sensitivity(scale) = &responses[6] else {
            panic!()
        };
        assert!((scale[0].factor.unwrap() - 120.0 / 87.0).abs() < 1e-6);
    }

    #[test]
    fn batch_answers_equal_one_shot_answers() {
        // Ordering and session sharing are accelerations, never
        // different numbers: each batched response must equal a cold
        // workbench's answer to the same query.
        let spec = SystemSpec::uniprocessor("paper", paper_set());
        let queries = all_queries();
        let batched = Workbench::new(spec.clone()).run_batch(&queries).unwrap();
        for (q, batched_response) in queries.iter().zip(&batched) {
            let one_shot = Workbench::new(spec.clone()).run(q).unwrap();
            assert_eq!(&one_shot, batched_response, "{q:?}");
        }
    }

    #[test]
    fn multicore_dispatch_reproduces_per_core_numbers() {
        let spec = SystemSpec::uniprocessor("twin", twin_set())
            .with_cores(2, AllocPolicy::WorstFitDecreasing);
        let mut bench = Workbench::new(spec);
        let responses = bench
            .run_batch(&[
                Query::Feasibility,
                Query::Thresholds,
                Query::EquitableAllowance,
            ])
            .unwrap();
        assert!(matches!(
            responses[0],
            Response::Feasibility {
                feasible: true,
                overloaded: false,
                ..
            }
        ));
        let Response::Thresholds(th) = &responses[1] else {
            panic!()
        };
        assert_eq!(th.len(), 6);
        for core in 0..2 {
            let values: Vec<_> = th
                .iter()
                .filter(|v| v.core == core)
                .map(|v| v.value.unwrap())
                .collect();
            assert_eq!(values, vec![ms(29), ms(58), ms(87)], "core {core}");
        }
        let Response::EquitableAllowance(eq) = &responses[2] else {
            panic!()
        };
        assert_eq!(eq.len(), 2);
        for c in eq {
            assert_eq!(c.allowance, Some(ms(11)));
        }
    }

    #[test]
    fn edf_specs_answer_deadline_thresholds_and_no_wcrt() {
        let spec = SystemSpec::uniprocessor("paper", paper_set()).with_policy(PolicyKind::Edf);
        let mut bench = Workbench::new(spec);
        let Response::WcrtAll(wcrt) = bench.run(&Query::WcrtAll).unwrap() else {
            panic!()
        };
        assert!(wcrt.iter().all(|v| v.value.is_none()));
        let Response::Thresholds(th) = bench.run(&Query::Thresholds).unwrap() else {
            panic!()
        };
        let values: Vec<_> = th.iter().map(|v| v.value.unwrap()).collect();
        assert_eq!(values, vec![ms(70), ms(120), ms(120)]);
    }

    #[test]
    fn lint_rejected_specs_answer_every_query_without_analysis() {
        // U = 1.2 on one core: RT010 is a static infeasibility proof,
        // so the workbench must never build a backend for this spec.
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 9, ms(100), ms(60)).build(),
            TaskBuilder::new(2, 8, ms(100), ms(60)).build(),
        ]);
        let mut bench = Workbench::new(SystemSpec::uniprocessor("overloaded", set));
        assert!(rtft_core::diag::has_errors(bench.lint()));
        for q in all_queries() {
            match bench.run(&q).unwrap() {
                Response::Rejected(diags) => {
                    assert!(diags.iter().any(|d| d.code == "RT010"), "{diags:?}")
                }
                other => panic!("expected rejection, got {other:?}"),
            }
        }
        assert!(bench.backend.is_none(), "no analyzer session may be built");
        // And the batch path agrees with the one-shot path.
        let responses = bench.run_batch(&all_queries()).unwrap();
        assert!(responses.iter().all(|r| matches!(r, Response::Rejected(_))));
    }

    #[test]
    fn unplaceable_specs_answer_every_query_with_diagnostics() {
        // Three 0.6-utilization tasks cannot fit two cores.
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 9, ms(100), ms(60)).build(),
            TaskBuilder::new(2, 8, ms(100), ms(60)).build(),
            TaskBuilder::new(3, 7, ms(100), ms(60)).build(),
        ]);
        let spec =
            SystemSpec::uniprocessor("heavy", set).with_cores(2, AllocPolicy::FirstFitDecreasing);
        let mut bench = Workbench::new(spec);
        for q in all_queries() {
            match bench.run(&q).unwrap() {
                Response::Unplaceable(diag) => {
                    assert!(diag.contains("cannot place"), "{diag}")
                }
                other => panic!("expected unplaceable, got {other:?}"),
            }
        }
    }

    /// Light twins (costs halved to 14 ms) — inside the global
    /// sufficient test at m = 2, unlike the full 29 ms twins.
    fn light_twin_set() -> TaskSet {
        let mut specs = Vec::new();
        for base in [0u32, 10] {
            specs.push(
                TaskBuilder::new(base + 1, 20 + base as i32, ms(200), ms(14))
                    .deadline(ms(70))
                    .build(),
            );
            specs.push(
                TaskBuilder::new(base + 2, 18 + base as i32, ms(250), ms(14))
                    .deadline(ms(120))
                    .build(),
            );
            specs.push(
                TaskBuilder::new(base + 3, 16 + base as i32, ms(1500), ms(14))
                    .deadline(ms(120))
                    .build(),
            );
        }
        TaskSet::from_specs(specs)
    }

    #[test]
    fn global_specs_answer_every_query_on_core_zero() {
        let spec = SystemSpec::uniprocessor("twin", light_twin_set())
            .with_cores(2, AllocPolicy::FirstFitDecreasing)
            .with_placement(Placement::Global);
        let mut bench = Workbench::new(spec);
        assert!(bench.global_mut().is_some());
        assert!(bench.partitioned_mut().is_none());
        for q in all_queries() {
            match bench.run(&q).unwrap() {
                Response::Feasibility {
                    feasible,
                    overloaded,
                    ..
                } => assert!(feasible && !overloaded),
                Response::WcrtAll(rows) | Response::Thresholds(rows) => {
                    assert_eq!(rows.len(), 6);
                    assert!(rows.iter().all(|r| r.core == 0));
                    // The top-priority task's bound is its cost.
                    assert_eq!(rows[0].value, Some(ms(14)));
                }
                Response::EquitableAllowance(cores) => {
                    assert_eq!(cores.len(), 1);
                    assert_eq!(cores[0].core, 0);
                    assert!(cores[0].allowance.is_some());
                    assert!(cores[0].stop_thresholds.iter().all(|r| r.core == 0));
                }
                Response::SystemAllowance { per_task, .. } => {
                    assert_eq!(per_task.len(), 6);
                    assert!(per_task.iter().all(|r| r.core == 0));
                }
                Response::MaxSingleOverrun(row) => {
                    assert_eq!(row.core, 0);
                    assert!(row.value.is_some());
                }
                Response::Sensitivity(cores) => {
                    assert_eq!(cores.len(), 1);
                    assert_eq!(cores[0].core, 0);
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
    }

    #[test]
    fn global_slack_policy_cannot_loosen_the_bound() {
        let spec = SystemSpec::uniprocessor("twin", light_twin_set())
            .with_cores(2, AllocPolicy::FirstFitDecreasing)
            .with_placement(Placement::Global);
        let mut bench = Workbench::new(spec);
        let a = bench
            .run(&Query::SystemAllowance(SlackPolicy::ProtectAll))
            .unwrap();
        let b = bench
            .run(&Query::SystemAllowance(SlackPolicy::ProtectOthers))
            .unwrap();
        let (
            Response::SystemAllowance { per_task: pa, .. },
            Response::SystemAllowance { per_task: pb, .. },
        ) = (a, b)
        else {
            panic!("system-allowance responses expected");
        };
        assert_eq!(pa, pb);
    }

    #[test]
    fn unproven_global_specs_answer_infeasible_not_unplaceable() {
        // Full-cost twins with staggered priorities (the second copy
        // strictly above the first) partition cleanly onto two cores,
        // but the global sufficient test cannot prove them — the BC
        // interference bound on the low-copy 70 ms-deadline task
        // overflows. The workbench must report "unproven" (infeasible),
        // never route to the allocator.
        let mut specs = Vec::new();
        for base in [0u32, 10] {
            specs.push(
                TaskBuilder::new(base + 1, 20 + base as i32, ms(200), ms(29))
                    .deadline(ms(70))
                    .build(),
            );
            specs.push(
                TaskBuilder::new(base + 2, 18 + base as i32, ms(250), ms(29))
                    .deadline(ms(120))
                    .build(),
            );
            specs.push(
                TaskBuilder::new(base + 3, 16 + base as i32, ms(1500), ms(29))
                    .deadline(ms(120))
                    .build(),
            );
        }
        let spec = SystemSpec::uniprocessor("twin", TaskSet::from_specs(specs))
            .with_cores(2, AllocPolicy::FirstFitDecreasing)
            .with_placement(Placement::Global);
        let mut bench = Workbench::new(spec);
        let Response::Feasibility {
            feasible,
            overloaded,
            ..
        } = bench.run(&Query::Feasibility).unwrap()
        else {
            panic!("feasibility response expected");
        };
        assert!(!feasible && !overloaded);
        assert!(bench.unplaceable().is_none());
    }
}
