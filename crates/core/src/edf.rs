//! EDF schedulability via processor-demand analysis.
//!
//! The exact test for preemptive EDF on a single processor (Baruah,
//! Rosier & Howell): a synchronous periodic set is schedulable iff for
//! every absolute deadline `t` inside the first busy period the demand
//! bound function
//!
//! ```text
//! h(t) = Σ_i max(0, ⌊(t − D_i)/T_i⌋ + 1) · C_i
//! ```
//!
//! stays at or below `t`. The deadlines are enumerated with Zhang &
//! Burns' QPA iteration (walking *down* from the last deadline below
//! the busy period, jumping to `h(t)` whenever `h(t) < t`), which
//! converges in a handful of demand evaluations instead of touching
//! every deadline.
//!
//! For task sets with release offsets the synchronous test is a
//! **sufficient** condition (the synchronous release is the worst
//! case), which is exactly the polarity the differential oracle and
//! admission control need: `feasible == true` certifies the run.
//!
//! The `skip` parameter supports the
//! [`SlackPolicy::ProtectOthers`](crate::allowance::SlackPolicy)
//! allowance searches: the skipped task's *demand* still counts (its
//! late jobs hold the earliest deadlines and hog the processor), but
//! its own deadlines are removed from the requirement.

use crate::task::TaskSet;
use crate::time::Duration;

/// Utilization slack below which the implicit-deadline fast path is not
/// trusted (floating-point guard; the exact QPA decides instead).
const UTIL_EPSILON: f64 = 1e-9;

/// Total utilization under an explicit cost vector.
fn utilization(set: &TaskSet, costs: &[Duration]) -> f64 {
    (0..set.len())
        .map(|r| costs[r].as_nanos() as f64 / set.by_rank(r).period.as_nanos() as f64)
        .sum()
}

/// Demand bound `h(t)`: execution released *and* due within any window
/// of length `t` of the synchronous pattern. Saturates at `i128::MAX`
/// (treated as "exceeds `t`" by the caller).
fn demand(set: &TaskSet, costs: &[Duration], t: i64) -> i128 {
    let mut h: i128 = 0;
    for (spec, cost) in set.tasks().iter().zip(costs) {
        let d = spec.deadline.as_nanos();
        if t < d {
            continue;
        }
        let jobs = (t - d) / spec.period.as_nanos() + 1;
        h += jobs as i128 * cost.as_nanos() as i128;
    }
    h
}

/// Length of the synchronous busy period under `costs`: the least fixed
/// point of `W(t) = Σ ⌈t/T_i⌉ C_i`. `None` when the iteration guard
/// trips or the workload saturates (callers treat both as infeasible —
/// the conservative polarity).
fn busy_period(set: &TaskSet, costs: &[Duration], limit: u64) -> Option<i64> {
    let mut t: i64 = costs.iter().map(|c| c.as_nanos()).sum();
    if t <= 0 {
        return None;
    }
    for _ in 0..limit {
        let mut w: i128 = 0;
        for (spec, cost) in set.tasks().iter().zip(costs) {
            let p = spec.period.as_nanos();
            let jobs = (t + p - 1) / p;
            w += jobs as i128 * cost.as_nanos() as i128;
        }
        if w > i64::MAX as i128 {
            return None;
        }
        let w = w as i64;
        if w == t {
            return Some(t);
        }
        t = w;
    }
    None
}

/// Largest absolute deadline of a non-skipped task strictly below
/// `bound` (synchronous pattern), or `None` when every considered
/// deadline is at or above `bound`.
fn last_deadline_below(set: &TaskSet, skip: Option<usize>, bound: i64) -> Option<i64> {
    let mut best: Option<i64> = None;
    for rank in 0..set.len() {
        if skip == Some(rank) {
            continue;
        }
        let spec = set.by_rank(rank);
        let d = spec.deadline.as_nanos();
        if d >= bound {
            continue;
        }
        let k = (bound - d - 1) / spec.period.as_nanos();
        let last = d + k * spec.period.as_nanos();
        best = Some(best.map_or(last, |b: i64| b.max(last)));
    }
    best
}

/// EDF schedulability of `set` under the effective `costs`, ignoring
/// release offsets (sufficient for offset sets). With `skip =
/// Some(rank)` that task's deadlines are exempt from the requirement
/// while its demand still interferes.
///
/// Returns `false` (never an error) on overload or when the busy-period
/// iteration guard trips — a "don't know" is reported as infeasible so
/// every caller stays sound.
pub fn feasible(set: &TaskSet, costs: &[Duration], skip: Option<usize>, limit: u64) -> bool {
    debug_assert_eq!(costs.len(), set.len());
    let u = utilization(set, costs);
    if u > 1.0 + UTIL_EPSILON {
        return false;
    }
    // Implicit/arbitrary-deadline fast path: with every D_i ≥ T_i,
    // h(t) ≤ U·t ≤ t for all t, so U ≤ 1 alone decides.
    let all_implicit = (0..set.len()).all(|r| {
        let spec = set.by_rank(r);
        spec.deadline >= spec.period
    });
    if all_implicit && u < 1.0 - UTIL_EPSILON {
        return true;
    }
    let Some(busy) = busy_period(set, costs, limit) else {
        return false;
    };
    let dmin = (0..set.len())
        .filter(|&r| skip != Some(r))
        .map(|r| set.by_rank(r).deadline.as_nanos())
        .min();
    let Some(dmin) = dmin else {
        return true; // nothing to protect
    };
    // QPA: walk down from the last considered deadline inside the busy
    // period; feasible iff the walk bottoms out at or below d_min
    // without ever finding h(t) > t.
    let Some(mut t) = last_deadline_below(set, skip, busy.saturating_add(1)) else {
        return true; // the busy period closes before any deadline
    };
    for _ in 0..limit {
        let h = demand(set, costs, t);
        if h > t as i128 {
            return false;
        }
        if h <= dmin as i128 {
            return true;
        }
        let h = h as i64;
        t = if h < t {
            h
        } else {
            match last_deadline_below(set, skip, t) {
                Some(prev) => prev,
                None => return true,
            }
        };
    }
    false // iteration guard: report "don't know" as infeasible
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::DEFAULT_ITERATION_LIMIT;
    use crate::task::TaskBuilder;

    fn ms(v: i64) -> Duration {
        Duration::millis(v)
    }

    fn declared(set: &TaskSet) -> Vec<Duration> {
        set.tasks().iter().map(|t| t.cost).collect()
    }

    fn check(set: &TaskSet) -> bool {
        feasible(set, &declared(set), None, DEFAULT_ITERATION_LIMIT)
    }

    #[test]
    fn implicit_deadlines_decide_by_utilization() {
        // U = 1.0 exactly, non-harmonic: EDF-feasible, FP (RM) is not.
        let full = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 2, ms(4), ms(2)).build(),
            TaskBuilder::new(2, 1, ms(6), ms(3)).build(),
        ]);
        assert!(check(&full));
        let over = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 2, ms(4), ms(2)).build(),
            TaskBuilder::new(2, 1, ms(6), ms(4)).build(),
        ]);
        assert!(!check(&over));
    }

    #[test]
    fn constrained_deadlines_use_the_demand_test() {
        // U = 0.75 but D1 = 1 < C1 + nothing: τ1 alone fits (C=1 ≤ D=1);
        // adding τ2's demand at t = 2 breaks it: h(2) = 1 + 2 > 2.
        let tight = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 2, ms(4), ms(1)).deadline(ms(1)).build(),
            TaskBuilder::new(2, 1, ms(4), ms(2)).deadline(ms(2)).build(),
        ]);
        assert!(!check(&tight));
        // Relaxing τ2's deadline to 3 ms makes every checkpoint pass:
        // h(1) = 1 ≤ 1, h(3) = 3 ≤ 3.
        let ok = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 2, ms(4), ms(1)).deadline(ms(1)).build(),
            TaskBuilder::new(2, 1, ms(4), ms(2)).deadline(ms(3)).build(),
        ]);
        assert!(check(&ok));
    }

    #[test]
    fn paper_table2_is_edf_feasible() {
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 20, ms(200), ms(29))
                .deadline(ms(70))
                .build(),
            TaskBuilder::new(2, 18, ms(250), ms(29))
                .deadline(ms(120))
                .build(),
            TaskBuilder::new(3, 16, ms(1500), ms(29))
                .deadline(ms(120))
                .build(),
        ]);
        assert!(check(&set));
        // Inflating every cost by 30 ms (beyond any slack: C1 = 59 > …)
        // h(70) = 59 ≤ 70, h(120) = 59+59+59 = 177 > 120: infeasible.
        let inflated: Vec<Duration> = declared(&set).iter().map(|&c| c + ms(30)).collect();
        assert!(!feasible(&set, &inflated, None, DEFAULT_ITERATION_LIMIT));
    }

    #[test]
    fn skip_exempts_only_the_skipped_deadlines() {
        // τ1's deadline is impossible (C = 2 > D = 1) but with τ1's
        // deadlines exempt the rest of the system still holds.
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 2, ms(10), ms(2))
                .deadline(ms(1))
                .build(),
            TaskBuilder::new(2, 1, ms(10), ms(2))
                .deadline(ms(5))
                .build(),
        ]);
        assert!(!feasible(
            &set,
            &declared(&set),
            None,
            DEFAULT_ITERATION_LIMIT
        ));
        assert!(feasible(
            &set,
            &declared(&set),
            Some(0),
            DEFAULT_ITERATION_LIMIT
        ));
        // The skipped task's demand still counts: grow it past what the
        // others can absorb and τ2 fails too (h(5) = 5 + 2 > 5).
        let mut costs = declared(&set);
        costs[0] = ms(5);
        assert!(!feasible(&set, &costs, Some(0), DEFAULT_ITERATION_LIMIT));
    }

    #[test]
    fn overload_is_infeasible_with_and_without_skip() {
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 2, ms(10), ms(8)).build(),
            TaskBuilder::new(2, 1, ms(10), ms(8)).build(),
        ]);
        assert!(!feasible(
            &set,
            &declared(&set),
            None,
            DEFAULT_ITERATION_LIMIT
        ));
        assert!(!feasible(
            &set,
            &declared(&set),
            Some(0),
            DEFAULT_ITERATION_LIMIT
        ));
    }
}
