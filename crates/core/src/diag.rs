//! Static diagnostics (`rtft lint`) over the query plane: a rule set
//! that inspects a [`SystemSpec`] — and optionally its query batch —
//! and emits structured [`Diagnostic`]s *without running any fixed
//! point*. The rules are the classical necessary conditions the
//! paper's analysis assumes (C ≤ D, C ≤ T per Joseph & Pandya-style
//! sanity, `U ≤ 1` per the load test, deadline-monotonic optimality
//! per Leung & Whitehead, the Baruah–Rosier–Howell demand frontier
//! under EDF) plus structural checks on fault plans and batch hygiene
//! notes.
//!
//! Every rule has a stable `RT0xx` code registered in [`RULES`] —
//! the code, not the construction site, owns the severity, so a code
//! can never be emitted at two different severities. The README's
//! "Diagnostics" table is tested against this registry.
//!
//! Diagnostics render two ways, mirroring the query plane's contract:
//! a line-oriented text form that round-trips
//! ([`Diagnostic::to_line`] / [`Diagnostic::parse_line`], whole
//! documents via [`render_text`] / [`parse_text`]) and an emit-only
//! JSON form ([`render_json`]).
//!
//! The `Workbench` in `rtft-part` runs [`lint_system`] as a pre-flight
//! and answers every query on a spec with Error-severity findings with
//! `Response::Rejected` instead of spending analyzer time; the
//! campaign engine lints each grid cell once and annotates its report.
//!
//! ```
//! use rtft_core::diag::{lint_system, Severity};
//! use rtft_core::query::SystemSpec;
//! use rtft_core::task::{TaskBuilder, TaskSet};
//! use rtft_core::time::Duration;
//!
//! // Cost 80 ms against a 70 ms deadline: never schedulable.
//! let set = TaskSet::from_specs(vec![TaskBuilder::new(1, 1, Duration::millis(200), Duration::millis(80))
//!     .deadline(Duration::millis(70))
//!     .build()]);
//! let diags = lint_system(&SystemSpec::uniprocessor("demo", set));
//! assert!(diags.iter().any(|d| d.code == "RT002" && d.severity == Severity::Error));
//! ```

use crate::policy::PolicyKind;
use crate::query::{json_escape, AllocPolicy, Placement, Query, SystemSpec};
use crate::task::{TaskId, TaskSet, TaskSpec};
use crate::time::Duration;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fmt::Write as _;

/// How bad a finding is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Advisory only; never gates anything.
    Note,
    /// Suspicious but possibly intended; gates under `--deny-warnings`.
    Warning,
    /// The input is broken or provably infeasible; the `Workbench`
    /// rejects the spec instead of analysing it.
    Error,
}

impl Severity {
    /// Stable lowercase label (`error` / `warning` / `note`).
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for Severity {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "error" => Severity::Error,
            "warning" => Severity::Warning,
            "note" => Severity::Note,
            other => return Err(format!("unknown severity `{other}`")),
        })
    }
}

/// What a diagnostic points at.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Span {
    /// The whole input (no better anchor).
    Whole,
    /// A 1-based line of the source file.
    Line(usize),
    /// A task, by id and display name.
    Task(TaskId, String),
}

impl Span {
    /// Stable single-token rendering (`-`, `line:<n>`,
    /// `task:<id>:<name>`). Task names from the parsers are single
    /// whitespace-free tokens, so the token stays splittable.
    fn token(&self) -> String {
        match self {
            Span::Whole => "-".to_string(),
            Span::Line(n) => format!("line:{n}"),
            Span::Task(id, name) => format!("task:{}:{}", id.0, name),
        }
    }

    fn parse_token(tok: &str) -> Result<Span, String> {
        if tok == "-" {
            return Ok(Span::Whole);
        }
        if let Some(n) = tok.strip_prefix("line:") {
            return n
                .parse()
                .map(Span::Line)
                .map_err(|e| format!("bad span line `{n}`: {e}"));
        }
        if let Some(rest) = tok.strip_prefix("task:") {
            let (id, name) = rest
                .split_once(':')
                .ok_or_else(|| format!("bad task span `{tok}`"))?;
            let id: u32 = id
                .parse()
                .map_err(|e| format!("bad span task id `{id}`: {e}"))?;
            return Ok(Span::Task(TaskId(id), name.to_string()));
        }
        Err(format!("bad span token `{tok}`"))
    }
}

/// One lint finding: a stable code, the code's severity, an anchor,
/// a message, and a fix-it hint.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Stable rule code (`RT0xx`), from [`RULES`].
    pub code: &'static str,
    /// Severity owned by the code (see [`RULES`]).
    pub severity: Severity,
    /// What the finding points at.
    pub span: Span,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub help: String,
}

/// One registered rule: the code, the severity every emission of that
/// code carries, and a one-line summary (the README table row).
pub struct Rule {
    /// Stable `RT0xx` code.
    pub code: &'static str,
    /// Severity of every diagnostic with this code.
    pub severity: Severity,
    /// One-line summary.
    pub summary: &'static str,
}

/// The complete rule registry. [`Diagnostic::new`] refuses codes that
/// are not listed here, and the README's Diagnostics table is tested
/// to cover every row.
pub const RULES: &[Rule] = &[
    Rule {
        code: "RT000",
        severity: Severity::Error,
        summary: "input does not parse (bad token, invalid task set, unknown directive)",
    },
    Rule {
        code: "RT001",
        severity: Severity::Error,
        summary:
            "degenerate timing parameters (non-positive period/cost/deadline, negative offset)",
    },
    Rule {
        code: "RT002",
        severity: Severity::Error,
        summary: "cost exceeds deadline (C > D): the task can never meet its deadline",
    },
    Rule {
        code: "RT003",
        severity: Severity::Error,
        summary: "cost exceeds period (C > T): the task alone overloads its core",
    },
    Rule {
        code: "RT004",
        severity: Severity::Error,
        summary: "fault entry targets a task absent from the set",
    },
    Rule {
        code: "RT005",
        severity: Severity::Error,
        summary: "repeated fault injections on one job (fault inter-arrival below the period)",
    },
    Rule {
        code: "RT006",
        severity: Severity::Error,
        summary: "duplicate task id or name in the set",
    },
    Rule {
        code: "RT010",
        severity: Severity::Error,
        summary: "utilization exceeds 1 on a single core (the load test must fail)",
    },
    Rule {
        code: "RT011",
        severity: Severity::Error,
        summary: "total utilization exceeds the core count (every allocator must fail)",
    },
    Rule {
        code: "RT012",
        severity: Severity::Error,
        summary: "npfp blocking makes a deadline unreachable (C + max lower-priority C > D)",
    },
    Rule {
        code: "RT013",
        severity: Severity::Error,
        summary: "global placement fails a necessary condition (U > m, or a task density > 1)",
    },
    Rule {
        code: "RT020",
        severity: Severity::Warning,
        summary: "priorities are not deadline-monotonic under FP with constrained deadlines",
    },
    Rule {
        code: "RT021",
        severity: Severity::Warning,
        summary: "near-co-prime periods blow up the hyperperiod / EDF demand frontier",
    },
    Rule {
        code: "RT022",
        severity: Severity::Note,
        summary: "duplicate query in the batch (answered twice from the same memo)",
    },
    Rule {
        code: "RT023",
        severity: Severity::Note,
        summary: "batch is not in Workbench phase order (execution will be reordered)",
    },
    Rule {
        code: "RT030",
        severity: Severity::Warning,
        summary: "duplicate scalar directive in a campaign spec (last value wins)",
    },
    Rule {
        code: "RT031",
        severity: Severity::Warning,
        summary: "campaign axis value repeated (duplicates expand to identical jobs)",
    },
    Rule {
        code: "RT032",
        severity: Severity::Note,
        summary: "allocator axis has no effect (every grid cell is uniprocessor)",
    },
    Rule {
        code: "RT033",
        severity: Severity::Note,
        summary: "grid cell fails a necessary feasibility condition (job reports infeasible)",
    },
    Rule {
        code: "RT034",
        severity: Severity::Note,
        summary: "allocator named alongside global placement (the alloc axis is dead)",
    },
    Rule {
        code: "RT035",
        severity: Severity::Error,
        summary: "trace hash mismatch: the capture disagrees with its header or the replayed spec",
    },
];

/// Look up a rule by code.
pub fn rule(code: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.code == code)
}

impl Diagnostic {
    /// Build a diagnostic for a registered code; the severity comes
    /// from [`RULES`] so one code can never carry two severities.
    ///
    /// # Panics
    /// Panics on a code absent from [`RULES`] (a bug at the call site,
    /// not an input problem).
    pub fn new(
        code: &str,
        span: Span,
        message: impl Into<String>,
        help: impl Into<String>,
    ) -> Self {
        let rule = rule(code).unwrap_or_else(|| panic!("unregistered diagnostic code `{code}`"));
        Diagnostic {
            code: rule.code,
            severity: rule.severity,
            span,
            message: message.into(),
            help: help.into(),
        }
    }

    /// One-line rendering:
    /// `<code> <severity> <span> <message> | help: <help>` (the help
    /// clause is omitted when empty). Round-trips through
    /// [`Diagnostic::parse_line`].
    pub fn to_line(&self) -> String {
        let mut out = format!(
            "{} {} {} {}",
            self.code,
            self.severity.label(),
            self.span.token(),
            self.message
        );
        if !self.help.is_empty() {
            let _ = write!(out, " | help: {}", self.help);
        }
        out
    }

    /// Parse one [`Diagnostic::to_line`] line back. The severity must
    /// match the code's registered severity.
    ///
    /// # Errors
    /// A message naming the malformed part.
    pub fn parse_line(line: &str) -> Result<Diagnostic, String> {
        let (body, help) = match line.split_once(" | help: ") {
            Some((b, h)) => (b, h.to_string()),
            None => (line, String::new()),
        };
        let mut words = body.splitn(4, ' ');
        let code = words.next().filter(|w| !w.is_empty()).ok_or("empty line")?;
        let rule = rule(code).ok_or_else(|| format!("unknown diagnostic code `{code}`"))?;
        let sev: Severity = words
            .next()
            .ok_or_else(|| format!("`{code}`: missing severity"))?
            .parse()?;
        if sev != rule.severity {
            return Err(format!(
                "severity `{sev}` contradicts `{code}` (registered as {})",
                rule.severity
            ));
        }
        let span = Span::parse_token(
            words
                .next()
                .ok_or_else(|| format!("`{code}`: missing span"))?,
        )?;
        let message = words
            .next()
            .ok_or_else(|| format!("`{code}`: missing message"))?
            .to_string();
        Ok(Diagnostic {
            code: rule.code,
            severity: rule.severity,
            span,
            message,
            help,
        })
    }

    /// One JSON object for this diagnostic (hand-rolled, sharing the
    /// query plane's escape table — the workspace has no serde).
    pub fn to_json(&self) -> String {
        let (line, task, name) = match &self.span {
            Span::Whole => ("null".to_string(), "null".to_string(), "null".to_string()),
            Span::Line(n) => (n.to_string(), "null".to_string(), "null".to_string()),
            Span::Task(id, name) => (
                "null".to_string(),
                id.0.to_string(),
                format!("\"{}\"", json_escape(name)),
            ),
        };
        format!(
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"line\":{line},\"task\":{task},\
             \"name\":{name},\"message\":\"{}\",\"help\":\"{}\"}}",
            self.code,
            self.severity.label(),
            json_escape(&self.message),
            json_escape(&self.help)
        )
    }
}

/// A parse failure lifted into the diagnostics vocabulary: the lint
/// entry points report unparseable input as a diagnostic instead of
/// aborting, so `rtft lint` can still render it. [`TaskSet`]
/// construction enforces positive periods/costs and unique ids, so the
/// corresponding defects only ever exist *before* a set is built —
/// this classifier routes their model errors to the structural codes
/// (`RT001`, `RT006`) and everything else to `RT000`.
pub fn parse_failure(line: usize, message: impl Into<String>) -> Diagnostic {
    let span = if line == 0 {
        Span::Whole
    } else {
        Span::Line(line)
    };
    let message = message.into();
    if message.contains("must be positive") || message.contains("must be non-negative") {
        return Diagnostic::new(
            "RT001",
            span,
            message,
            "period, cost and deadline must be positive, the offset non-negative",
        );
    }
    if message.contains("duplicate task id") || message.contains("duplicate task name") {
        return Diagnostic::new(
            "RT006",
            span,
            message,
            "give every task a unique id and name",
        );
    }
    Diagnostic::new(
        "RT000",
        span,
        message,
        "fix the reported token or directive; see the format docs",
    )
}

/// `(errors, warnings, notes)` counts.
pub fn counts(diags: &[Diagnostic]) -> (usize, usize, usize) {
    let mut c = (0, 0, 0);
    for d in diags {
        match d.severity {
            Severity::Error => c.0 += 1,
            Severity::Warning => c.1 += 1,
            Severity::Note => c.2 += 1,
        }
    }
    c
}

/// Any Error-severity finding?
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Render diagnostics as one [`Diagnostic::to_line`] line each.
/// Round-trips through [`parse_text`].
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        let _ = writeln!(out, "{}", d.to_line());
    }
    out
}

/// Parse a [`render_text`] document back. Lines that do not start with
/// a rule code (e.g. the CLI's trailing summary) are skipped, so the
/// round trip also accepts raw `rtft lint` output.
///
/// # Errors
/// The first malformed `RT…` line's message.
pub fn parse_text(text: &str) -> Result<Vec<Diagnostic>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with("RT") {
            out.push(Diagnostic::parse_line(line)?);
        }
    }
    Ok(out)
}

/// Render diagnostics as one JSON document (emit-only, like the query
/// plane's response JSON):
/// `{"diagnostics": […], "errors": E, "warnings": W, "notes": N}`.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let items: Vec<String> = diags.iter().map(Diagnostic::to_json).collect();
    let (e, w, n) = counts(diags);
    format!(
        "{{\n  \"diagnostics\": [\n    {}\n  ],\n  \"errors\": {e},\n  \"warnings\": {w},\n  \"notes\": {n}\n}}\n",
        items.join(",\n    ")
    )
}

/// The `Workbench`'s batch execution phase of a query (lower runs
/// first): memo-populating lookups, then the equitable search, then
/// the searches that reuse its warm frontier. `run_batch` sorts by
/// this key; [`lint_batch`] notes batches that are not already in this
/// order (RT023).
pub fn execution_phase(q: &Query) -> u8 {
    match q {
        Query::Feasibility => 0,
        Query::WcrtAll | Query::Thresholds => 1,
        Query::EquitableAllowance => 2,
        Query::SystemAllowance(_) => 3,
        Query::MaxSingleOverrun(_) => 4,
        Query::Sensitivity => 5,
    }
}

/// Tolerance for the utilization comparisons: `U` is a sum of `C/T`
/// ratios in `f64`, so an exact-1.0 system must not be flagged.
const U_EPS: f64 = 1e-9;

/// Release points past which the EDF demand frontier is considered
/// blown up (RT021): the QPA-style scan visits ~`Σ H/Tᵢ` deadlines.
const DEMAND_FRONTIER_LIMIT: i64 = 1_000_000;

fn task_span(t: &TaskSpec) -> Span {
    Span::Task(t.id, t.name.clone())
}

/// Lint one [`SystemSpec`]: structural rules (RT001–RT006), necessary
/// feasibility conditions (RT010–RT012) and analysis-hygiene warnings
/// (RT020, RT021). Pure parameter arithmetic — no fixed point, no
/// allocator run; a 50-task spec lints in well under a millisecond.
pub fn lint_system(spec: &SystemSpec) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let set = &spec.set;

    structural_rules(set, &mut out);
    fault_rules(spec, &mut out);
    necessary_conditions(spec, &mut out);
    hygiene_rules(spec, &mut out);

    out
}

/// Lint a spec *and* its query batch: [`lint_system`] plus the batch
/// hygiene notes (RT022 duplicate queries, RT023 non-phase order).
pub fn lint_batch(spec: &SystemSpec, queries: &[Query]) -> Vec<Diagnostic> {
    let mut out = lint_system(spec);

    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut reported: BTreeSet<String> = BTreeSet::new();
    for q in queries {
        let key = q.to_line(|id| spec.task_name(id));
        if !seen.insert(key.clone()) && reported.insert(key.clone()) {
            out.push(Diagnostic::new(
                "RT022",
                Span::Whole,
                format!("`{key}` appears more than once in the batch"),
                "drop the duplicate; both occurrences answer from the same memoized session",
            ));
        }
    }

    let phases: Vec<u8> = queries.iter().map(execution_phase).collect();
    if phases.windows(2).any(|w| w[0] > w[1]) {
        out.push(Diagnostic::new(
            "RT023",
            Span::Whole,
            "batch is not in Workbench phase order (feasibility → wcrt/thresholds → \
             equitable → system-allowance → overrun → sensitivity)",
            "no action needed: run_batch reorders execution and answers in submitted order",
        ));
    }

    out
}

/// RT002 (C > D) and RT003 (C > T). [`TaskSet`] construction already
/// guarantees positive periods/costs and unique ids (their violations
/// arrive via [`parse_failure`] as RT001/RT006), but it deliberately
/// allows C > D and C > T — those are *schedulability* defects, not
/// model defects, and they are this lint's to catch.
fn structural_rules(set: &TaskSet, out: &mut Vec<Diagnostic>) {
    for t in set.tasks() {
        if t.cost > t.deadline {
            out.push(Diagnostic::new(
                "RT002",
                task_span(t),
                format!("cost {} exceeds deadline {}", t.cost, t.deadline),
                "even alone on an idle core the task misses; shrink C or relax D",
            ));
        }
        if t.cost > t.period {
            out.push(Diagnostic::new(
                "RT003",
                task_span(t),
                format!("cost {} exceeds period {}", t.cost, t.period),
                "the task's own utilization exceeds 1; shrink C or stretch T",
            ));
        }
    }
}

/// RT004 (unknown fault target), RT005 (repeated injections on one
/// job — a fault inter-arrival below the task's period).
fn fault_rules(spec: &SystemSpec, out: &mut Vec<Diagnostic>) {
    let mut jobs: BTreeMap<(TaskId, u64), usize> = BTreeMap::new();
    let mut unknown: BTreeSet<TaskId> = BTreeSet::new();
    for f in &spec.faults {
        if spec.set.by_id(f.task).is_none() {
            if unknown.insert(f.task) {
                out.push(Diagnostic::new(
                    "RT004",
                    Span::Whole,
                    format!(
                        "fault plan targets task id {}, absent from the set",
                        f.task.0
                    ),
                    "point the fault at a task that exists (check the id/name mapping)",
                ));
            }
            continue;
        }
        *jobs.entry((f.task, f.job)).or_insert(0) += 1;
    }
    for ((task, job), n) in jobs {
        if n > 1 {
            let t = spec.set.by_id(task).expect("checked above");
            out.push(Diagnostic::new(
                "RT005",
                Span::Task(task, t.name.clone()),
                format!(
                    "{n} fault entries hit job {job}: the injections' inter-arrival \
                     is below the {} period",
                    t.period
                ),
                "merge the deltas into one entry, or spread them across jobs",
            ));
        }
    }
}

/// RT010 (U > 1 on one core), RT011 (U > m over m cores, partitioned),
/// RT013 (U > m or a task density > 1 under global placement), RT012
/// (npfp blocking + cost above a deadline). Error severity, so each is
/// a *sound* infeasibility proof, never a heuristic.
fn necessary_conditions(spec: &SystemSpec, out: &mut Vec<Diagnostic>) {
    let set = &spec.set;
    let u = set.utilization();
    if spec.cores <= 1 && u > 1.0 + U_EPS {
        out.push(Diagnostic::new(
            "RT010",
            Span::Whole,
            format!("utilization {u:.4} exceeds 1 on a single core"),
            "the load test fails under every policy; shed load or add cores",
        ));
    }
    let global = spec.placement == Placement::Global && spec.cores > 1;
    if spec.cores > 1 && !global && u > spec.cores as f64 + U_EPS {
        out.push(Diagnostic::new(
            "RT011",
            Span::Whole,
            format!(
                "utilization {u:.4} exceeds the {} available cores",
                spec.cores
            ),
            "no partitioning can place the set; shed load or add cores",
        ));
    }
    if global {
        // Necessary conditions for *any* global scheduler: total work
        // cannot exceed m processors, and a single job can occupy only
        // one core at a time, so a density C/min(D, T) above 1 misses
        // even with the whole platform to itself.
        if u > spec.cores as f64 + U_EPS {
            out.push(Diagnostic::new(
                "RT013",
                Span::Whole,
                format!(
                    "utilization {u:.4} exceeds the {} available cores under global placement",
                    spec.cores
                ),
                "no global scheduler can serve the load; shed load or add cores",
            ));
        }
        for t in set.tasks() {
            let window = t.deadline.min(t.period);
            let density = t.cost.as_nanos() as f64 / window.as_nanos() as f64;
            if density > 1.0 + U_EPS {
                out.push(Diagnostic::new(
                    "RT013",
                    task_span(t),
                    format!(
                        "density {density:.4} exceeds 1: cost {} does not fit the {window} \
                         scheduling window on any single core",
                        t.cost
                    ),
                    "a migrating job still runs on one core at a time; shrink C or relax D",
                ));
            }
        }
    }
    if spec.policy == PolicyKind::NonPreemptiveFp {
        // Non-preemptive blocking: a task's response time is at least
        // C_i plus the largest lower-priority cost (the analyzer adds
        // exactly this term), so C_i + B_i > D_i is a proof of a miss.
        for rank in 0..set.len() {
            let t = set.by_rank(rank);
            if t.cost > t.deadline {
                continue; // already RT002
            }
            let blocking = set
                .lp_ranks(rank)
                .into_iter()
                .map(|r| set.by_rank(r).cost)
                .max()
                .unwrap_or(Duration::ZERO);
            if blocking + t.cost > t.deadline {
                out.push(Diagnostic::new(
                    "RT012",
                    task_span(t),
                    format!(
                        "non-preemptive blocking {blocking} plus cost {} exceeds deadline {}",
                        t.cost, t.deadline
                    ),
                    "split the longest lower-priority task's cost, or schedule preemptively",
                ));
            }
        }
    }
}

/// RT020 (non-deadline-monotonic FP priorities), RT021 (hyperperiod /
/// EDF demand-frontier blowup) — warnings: suspicious, not fatal —
/// plus RT034, a note when a non-default allocator is named on a
/// global-placement spec (tasks migrate, so no allocator ever runs).
fn hygiene_rules(spec: &SystemSpec, out: &mut Vec<Diagnostic>) {
    let set = &spec.set;
    if spec.placement == Placement::Global
        && spec.cores > 1
        && spec.alloc != AllocPolicy::FirstFitDecreasing
    {
        out.push(Diagnostic::new(
            "RT034",
            Span::Whole,
            format!(
                "allocator `{}` has no effect under global placement",
                spec.alloc
            ),
            "drop the alloc directive, or switch to partitioned placement",
        ));
    }
    if spec.policy == PolicyKind::FixedPriority && set.all_constrained() {
        // Ranks are priority-descending; DM demands deadlines
        // non-decreasing along them (Leung & Whitehead: DM is optimal
        // for D ≤ T, so an inversion forfeits schedulability for free).
        for rank in 1..set.len() {
            let (hi, lo) = (set.by_rank(rank - 1), set.by_rank(rank));
            if hi.deadline > lo.deadline {
                out.push(Diagnostic::new(
                    "RT020",
                    task_span(lo),
                    format!(
                        "`{}` (D = {}) outranks `{}` (D = {}): not deadline-monotonic",
                        hi.name, hi.deadline, lo.name, lo.deadline
                    ),
                    "deadline-monotonic priorities are optimal for constrained deadlines",
                ));
                break;
            }
        }
    }
    if spec.policy == PolicyKind::Edf {
        let h = set.hyperperiod();
        if h == Duration::MAX {
            out.push(Diagnostic::new(
                "RT021",
                Span::Whole,
                "near-co-prime periods: the hyperperiod overflows 64-bit nanoseconds".to_string(),
                "harmonize periods (shared divisors) to keep the demand test tractable",
            ));
        } else {
            let releases: i64 = set
                .tasks()
                .iter()
                .map(|t| h.as_nanos() / t.period.as_nanos())
                .sum();
            if releases > DEMAND_FRONTIER_LIMIT {
                out.push(Diagnostic::new(
                    "RT021",
                    Span::Whole,
                    format!(
                        "near-co-prime periods: the demand frontier spans ≈{releases} \
                         release points over the {h} hyperperiod"
                    ),
                    "harmonize periods (shared divisors) to keep the demand test tractable",
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{AllocPolicy, FaultEntry};
    use crate::task::TaskBuilder;

    fn ms(v: i64) -> Duration {
        Duration::millis(v)
    }

    fn task(id: u32, prio: i32, t: i64, d: i64, c: i64) -> TaskSpec {
        TaskBuilder::new(id, prio, ms(t), ms(c))
            .name(format!("t{id}"))
            .deadline(ms(d))
            .build()
    }

    fn spec_of(tasks: Vec<TaskSpec>) -> SystemSpec {
        SystemSpec::uniprocessor("lint", TaskSet::from_specs(tasks))
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_spec_has_no_diagnostics() {
        let spec = spec_of(vec![task(1, 2, 200, 70, 29), task(2, 1, 250, 120, 29)]);
        assert!(lint_system(&spec).is_empty());
    }

    #[test]
    fn structural_errors_fire() {
        let spec = spec_of(vec![task(1, 2, 10, 7, 8), task(2, 1, 10, 40, 12)]);
        let diags = lint_system(&spec);
        // t1: C > D; t2: C > T (D = 40 keeps RT002 quiet on it).
        assert!(codes(&diags).contains(&"RT002"), "{diags:?}");
        assert!(codes(&diags).contains(&"RT003"), "{diags:?}");
    }

    #[test]
    fn parse_failures_classify_structural_model_errors() {
        // TaskSet construction rejects these before a set exists, so
        // the lint surface routes the model error to the right code.
        let d = parse_failure(
            3,
            "task set invalid: invalid parameter for τ1: period must be positive",
        );
        assert_eq!((d.code, &d.span), ("RT001", &Span::Line(3)));
        let d = parse_failure(0, "task set invalid: duplicate task id 4");
        assert_eq!((d.code, &d.span), ("RT006", &Span::Whole));
        let d = parse_failure(7, "bad duration `10xs`: unknown unit");
        assert_eq!(d.code, "RT000");
        assert_eq!(d.severity, Severity::Error);
    }

    #[test]
    fn fault_rules_fire() {
        let mut spec = spec_of(vec![task(1, 1, 100, 100, 10)]);
        spec.faults.push(FaultEntry {
            task: TaskId(9),
            job: 0,
            delta: ms(5),
        });
        spec.faults.push(FaultEntry {
            task: TaskId(1),
            job: 3,
            delta: ms(5),
        });
        spec.faults.push(FaultEntry {
            task: TaskId(1),
            job: 3,
            delta: ms(7),
        });
        let diags = lint_system(&spec);
        assert!(codes(&diags).contains(&"RT004"), "{diags:?}");
        assert!(codes(&diags).contains(&"RT005"), "{diags:?}");
    }

    #[test]
    fn overload_and_unallocatable_fire() {
        let over = spec_of(vec![task(1, 2, 10, 10, 8), task(2, 1, 10, 10, 8)]);
        assert_eq!(codes(&lint_system(&over)), vec!["RT010"]);
        let multi = spec_of(vec![
            task(1, 3, 10, 10, 9),
            task(2, 2, 10, 10, 9),
            task(3, 1, 10, 10, 9),
        ])
        .with_cores(2, AllocPolicy::FirstFitDecreasing);
        assert_eq!(codes(&lint_system(&multi)), vec!["RT011"]);
    }

    #[test]
    fn global_necessary_conditions_fire() {
        // U = 2.7 over 2 cores: RT013 under global, RT011 partitioned.
        let over = spec_of(vec![
            task(1, 3, 10, 10, 9),
            task(2, 2, 10, 10, 9),
            task(3, 1, 10, 10, 9),
        ])
        .with_cores(2, AllocPolicy::FirstFitDecreasing);
        assert_eq!(codes(&lint_system(&over)), vec!["RT011"]);
        let over = over.with_placement(Placement::Global);
        assert_eq!(codes(&lint_system(&over)), vec!["RT013"]);

        // Arbitrary deadline D > T: density uses the period window, so
        // C = 12 > T = 10 is a per-task RT013 (alongside RT003).
        let dense = spec_of(vec![task(1, 2, 10, 40, 12), task(2, 1, 100, 100, 1)])
            .with_cores(2, AllocPolicy::FirstFitDecreasing)
            .with_placement(Placement::Global);
        let diags = lint_system(&dense);
        assert!(codes(&diags).contains(&"RT013"), "{diags:?}");
        assert!(
            diags
                .iter()
                .any(|d| d.code == "RT013" && matches!(d.span, Span::Task(TaskId(1), _))),
            "{diags:?}"
        );
    }

    #[test]
    fn dead_allocator_under_global_placement_notes() {
        let spec = spec_of(vec![task(1, 1, 100, 100, 10)])
            .with_cores(2, AllocPolicy::WorstFitDecreasing)
            .with_placement(Placement::Global);
        let diags = lint_system(&spec);
        assert_eq!(codes(&diags), vec!["RT034"]);
        assert_eq!(diags[0].severity, Severity::Note);
        // The default allocator rides along silently, and partitioned
        // specs keep their allocator without comment.
        let quiet = spec_of(vec![task(1, 1, 100, 100, 10)])
            .with_cores(2, AllocPolicy::FirstFitDecreasing)
            .with_placement(Placement::Global);
        assert!(lint_system(&quiet).is_empty());
        let part =
            spec_of(vec![task(1, 1, 100, 100, 10)]).with_cores(2, AllocPolicy::WorstFitDecreasing);
        assert!(lint_system(&part).is_empty());
    }

    #[test]
    fn npfp_blocking_rule_is_sound() {
        // hi: D = 10 ms; lo: C = 12 ms → blocking alone overruns hi.
        let mut spec = spec_of(vec![task(1, 2, 100, 10, 2), task(2, 1, 100, 100, 12)]);
        spec.policy = PolicyKind::NonPreemptiveFp;
        assert_eq!(codes(&lint_system(&spec)), vec!["RT012"]);
        // Preemptive FP: same set, no blocking, no finding.
        spec.policy = PolicyKind::FixedPriority;
        assert!(lint_system(&spec).is_empty());
    }

    #[test]
    fn non_dm_priorities_warn_once() {
        let spec = spec_of(vec![task(1, 2, 200, 150, 10), task(2, 1, 200, 50, 10)]);
        let diags = lint_system(&spec);
        assert_eq!(codes(&diags), vec!["RT020"]);
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn coprime_periods_warn_under_edf_only() {
        let mut spec = spec_of(vec![
            task(1, 3, 997, 997, 1),
            task(2, 2, 1009, 1009, 1),
            task(3, 1, 1013, 1013, 1),
        ]);
        assert!(lint_system(&spec).is_empty(), "FP ignores the hyperperiod");
        spec.policy = PolicyKind::Edf;
        assert_eq!(codes(&lint_system(&spec)), vec!["RT021"]);
    }

    #[test]
    fn batch_notes_fire() {
        let spec = spec_of(vec![task(1, 1, 100, 100, 10)]);
        let diags = lint_batch(
            &spec,
            &[Query::Sensitivity, Query::Feasibility, Query::Feasibility],
        );
        assert_eq!(codes(&diags), vec!["RT022", "RT023"]);
        assert!(diags.iter().all(|d| d.severity == Severity::Note));
    }

    #[test]
    fn lines_round_trip() {
        let mut spec = spec_of(vec![task(1, 2, 10, 7, 8), task(2, 1, 10, 10, 8)]);
        spec.faults.push(FaultEntry {
            task: TaskId(7),
            job: 1,
            delta: ms(1),
        });
        let diags = lint_batch(&spec, &[Query::WcrtAll, Query::Feasibility]);
        assert!(!diags.is_empty());
        let text = render_text(&diags);
        let back = parse_text(&text).unwrap();
        assert_eq!(back, diags);
        // A CLI-style trailing summary is tolerated.
        let with_summary = format!("{text}3 errors, 0 warnings, 1 note\n");
        assert_eq!(parse_text(&with_summary).unwrap(), diags);
        assert_eq!(render_text(&back), text, "printing is a fixed point");
    }

    #[test]
    fn parse_line_rejects_contradictory_severity() {
        assert!(Diagnostic::parse_line("RT002 note - whatever").is_err());
        assert!(Diagnostic::parse_line("RT999 error - whatever").is_err());
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let spec = spec_of(vec![task(1, 1, 10, 5, 8)]);
        let doc = render_json(&lint_system(&spec));
        assert!(doc.contains("\"code\":\"RT002\""), "{doc}");
        assert!(doc.contains("\"errors\": 1"), "{doc}");
        assert!(doc.trim_end().ends_with('}'), "{doc}");
    }

    #[test]
    fn rule_codes_are_unique() {
        let mut seen = BTreeSet::new();
        for r in RULES {
            assert!(seen.insert(r.code), "duplicate rule code {}", r.code);
        }
    }

    #[test]
    fn fifty_task_spec_lints_in_under_a_millisecond() {
        // The acceptance bound: static rules only, no fixed point. 100
        // lints of a 50-task spec in < 100 ms keeps the per-lint cost
        // ≤ 1 ms with a debug-build safety margin (release is ~µs).
        let tasks: Vec<TaskSpec> = (0..50)
            .map(|i| {
                task(
                    i + 1,
                    50 - i as i32,
                    100 + 7 * i as i64,
                    90 + 7 * i as i64,
                    1,
                )
            })
            .collect();
        let spec = spec_of(tasks);
        let start = std::time::Instant::now();
        for _ in 0..100 {
            let diags = lint_system(&spec);
            assert!(diags.is_empty(), "{diags:?}");
        }
        assert!(
            start.elapsed() < std::time::Duration::from_millis(100),
            "lint too slow: {:?} for 100 iterations",
            start.elapsed()
        );
    }
}
