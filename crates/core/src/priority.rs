//! Priority-assignment policies for fixed-priority scheduling.
//!
//! The paper takes the priorities as given (its tables list explicit `P_i`),
//! but admission control in a real system must often *choose* them. Three
//! classical policies are provided:
//!
//! * **Rate monotonic** (Liu & Layland, paper ref \[11\]) — shorter period,
//!   higher priority; optimal for synchronous implicit-deadline sets;
//! * **Deadline monotonic** (Audsley et al., paper ref \[1\]) — shorter
//!   relative deadline, higher priority; optimal for `D ≤ T`;
//! * **Audsley's optimal priority assignment** — bottom-up search that is
//!   optimal whenever feasibility of a task only depends on the *set* of
//!   higher-priority tasks, which holds for the response-time test used
//!   here (synchronous arbitrary-deadline sets).

use crate::error::AnalysisError;
use crate::response::ResponseAnalysis;
use crate::task::{Priority, TaskSet, TaskSpec};

/// Reassign priorities rate-monotonically: shortest period gets the highest
/// priority. Ties keep the original id order. Returns a new set; ids, costs
/// and deadlines are untouched.
pub fn rate_monotonic(set: &TaskSet) -> TaskSet {
    assign_by_key(set, |t| t.period.as_nanos())
}

/// Reassign priorities deadline-monotonically: shortest relative deadline
/// gets the highest priority.
pub fn deadline_monotonic(set: &TaskSet) -> TaskSet {
    assign_by_key(set, |t| t.deadline.as_nanos())
}

fn assign_by_key(set: &TaskSet, key: impl Fn(&TaskSpec) -> i64) -> TaskSet {
    let mut specs: Vec<TaskSpec> = set.tasks().to_vec();
    specs.sort_by_key(|t| (key(t), t.id));
    let n = specs.len() as i32;
    for (i, t) in specs.iter_mut().enumerate() {
        // Highest priority = n, descending.
        t.priority = Priority(n - i as i32);
    }
    TaskSet::from_specs(specs)
}

/// Audsley's optimal priority assignment.
///
/// Tries to find *some* priority order making the set feasible: repeatedly
/// pick, for the lowest unassigned priority level, any task that is
/// feasible at that level given all still-unassigned tasks above it.
/// Returns `Ok(Some(set))` with priorities `1..=n` assigned on success,
/// `Ok(None)` when no fixed-priority order is feasible.
pub fn audsley(set: &TaskSet) -> Result<Option<TaskSet>, AnalysisError> {
    let n = set.len();
    let mut remaining: Vec<TaskSpec> = set.tasks().to_vec();
    let mut assigned: Vec<TaskSpec> = Vec::with_capacity(n);

    for level in (1..=n as i32).rev() {
        // `level` counts down the *rank*: we assign the LOWEST priority
        // first, so the numeric priority value is (n - level + 1)… simpler:
        // we assign numeric priority = number of levels still to fill.
        let prio = Priority(n as i32 - level + 1);
        let mut chosen: Option<usize> = None;
        for cand in 0..remaining.len() {
            // Candidate at the lowest free priority; all other remaining
            // tasks sit above it, all previously assigned below.
            let mut trial: Vec<TaskSpec> = Vec::with_capacity(n);
            for (k, t) in remaining.iter().enumerate() {
                let mut t = t.clone();
                t.priority = if k == cand {
                    prio
                } else {
                    Priority(i32::MAX / 2)
                };
                trial.push(t);
            }
            // Previously assigned tasks are below the candidate and cannot
            // interfere with it; leave them out of the trial set entirely.
            let trial_set = TaskSet::from_specs(trial);
            let rank = trial_set
                .rank_of(remaining[cand].id)
                .expect("candidate in trial set");
            let analysis = ResponseAnalysis::new(&trial_set);
            let feasible = match analysis.wcrt(rank) {
                Ok(w) => w <= remaining[cand].deadline,
                Err(AnalysisError::Divergent { .. }) => false,
                Err(e) => return Err(e),
            };
            if feasible {
                chosen = Some(cand);
                break;
            }
        }
        match chosen {
            Some(c) => {
                let mut t = remaining.remove(c);
                t.priority = prio;
                assigned.push(t);
            }
            None => return Ok(None),
        }
    }
    Ok(Some(TaskSet::from_specs(assigned)))
}

/// Search every priority order of a (small) task set for the one
/// maximizing the **equitable allowance** — an allowance-aware twist on
/// optimal priority assignment. Feasibility-optimal orders (DM, Audsley)
/// maximize *schedulability*; this maximizes the *tolerance factor* the
/// paper builds its treatments on, which can prefer a different order.
///
/// Exhaustive over `n!` permutations; intended for `n ≤ 8`.
///
/// Returns `Ok(None)` when no order is feasible.
///
/// # Panics
/// Panics when the set has more than 8 tasks.
pub fn maximize_allowance(
    set: &TaskSet,
) -> Result<Option<(TaskSet, crate::time::Duration)>, AnalysisError> {
    assert!(set.len() <= 8, "exhaustive search is for n ≤ 8");
    let specs: Vec<TaskSpec> = set.tasks().to_vec();
    let n = specs.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut best: Option<(TaskSet, crate::time::Duration)> = None;

    // Heap's algorithm over permutations.
    let mut c = vec![0usize; n];
    let evaluate = |order: &[usize],
                    best: &mut Option<(TaskSet, crate::time::Duration)>|
     -> Result<(), AnalysisError> {
        let mut candidate: Vec<TaskSpec> = Vec::with_capacity(n);
        for (rank, &idx) in order.iter().enumerate() {
            let mut spec = specs[idx].clone();
            spec.priority = Priority(n as i32 - rank as i32);
            candidate.push(spec);
        }
        let candidate = TaskSet::from_specs(candidate);
        if let Some(eq) = crate::analyzer::Analyzer::new(&candidate).equitable_allowance()? {
            if best.as_ref().is_none_or(|(_, a)| eq.allowance > *a) {
                *best = Some((candidate, eq.allowance));
            }
        }
        Ok(())
    };
    evaluate(&order, &mut best)?;
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                order.swap(0, i);
            } else {
                order.swap(c[i], i);
            }
            evaluate(&order, &mut best)?;
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    Ok(Some(match best {
        Some(b) => b,
        None => return Ok(None),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::ResponseAnalysis;
    use crate::task::{TaskBuilder, TaskId};
    use crate::time::Duration;

    fn ms(v: i64) -> Duration {
        Duration::millis(v)
    }

    #[test]
    fn rm_orders_by_period() {
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 0, ms(1500), ms(29)).build(),
            TaskBuilder::new(2, 0, ms(200), ms(29)).build(),
            TaskBuilder::new(3, 0, ms(250), ms(29)).build(),
        ]);
        let rm = rate_monotonic(&set);
        assert_eq!(rm.by_rank(0).id, TaskId(2)); // T=200 highest
        assert_eq!(rm.by_rank(1).id, TaskId(3)); // T=250
        assert_eq!(rm.by_rank(2).id, TaskId(1)); // T=1500
    }

    #[test]
    fn dm_orders_by_deadline() {
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 0, ms(100), ms(5))
                .deadline(ms(90))
                .build(),
            TaskBuilder::new(2, 0, ms(50), ms(5))
                .deadline(ms(95))
                .build(),
        ]);
        let dm = deadline_monotonic(&set);
        assert_eq!(dm.by_rank(0).id, TaskId(1));
        let rm = rate_monotonic(&set);
        assert_eq!(rm.by_rank(0).id, TaskId(2));
    }

    #[test]
    fn ties_break_by_id() {
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(5, 0, ms(100), ms(5)).build(),
            TaskBuilder::new(2, 0, ms(100), ms(5)).build(),
        ]);
        let rm = rate_monotonic(&set);
        assert_eq!(rm.by_rank(0).id, TaskId(2));
    }

    #[test]
    fn audsley_finds_feasible_assignment() {
        // DM-infeasible orderings exist; Audsley must find the working one.
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 1, ms(10), ms(4)).build(),
            TaskBuilder::new(2, 2, ms(15), ms(5)).build(),
        ]);
        // As given (τ2 higher) τ1 sees R = 4 + 5 = 9 ≤ 10, τ2 = 5: feasible
        // either way; Audsley should return some feasible assignment.
        let out = audsley(&set).unwrap().expect("feasible assignment exists");
        let a = ResponseAnalysis::new(&out);
        assert!(a.is_feasible().unwrap());
    }

    #[test]
    fn audsley_rejects_infeasible_sets() {
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 1, ms(10), ms(7)).build(),
            TaskBuilder::new(2, 2, ms(10), ms(7)).build(),
        ]);
        assert_eq!(audsley(&set).unwrap(), None);
    }

    #[test]
    fn audsley_agrees_with_dm_on_constrained_sets() {
        // For D ≤ T both DM and Audsley are optimal: they accept the same
        // sets. Verify on a set only schedulable with the right order.
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 0, ms(100), ms(40))
                .deadline(ms(100))
                .build(),
            TaskBuilder::new(2, 0, ms(100), ms(40))
                .deadline(ms(50))
                .build(),
        ]);
        // τ2 must be on top (D=50): R2=40 ≤ 50, R1=80 ≤ 100.
        let dm = deadline_monotonic(&set);
        assert!(ResponseAnalysis::new(&dm).is_feasible().unwrap());
        let aud = audsley(&set).unwrap().unwrap();
        assert!(ResponseAnalysis::new(&aud).is_feasible().unwrap());
        assert_eq!(aud.by_rank(0).id, TaskId(2));
    }

    #[test]
    fn maximize_allowance_at_least_matches_dm() {
        // On the paper's system the DM order is already optimal; the
        // search must find an allowance ≥ the DM one.
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 20, ms(200), ms(29))
                .deadline(ms(70))
                .build(),
            TaskBuilder::new(2, 18, ms(250), ms(29))
                .deadline(ms(120))
                .build(),
            TaskBuilder::new(3, 16, ms(1500), ms(29))
                .deadline(ms(120))
                .build(),
        ]);
        let dm = deadline_monotonic(&set);
        let dm_allowance = crate::analyzer::Analyzer::new(&dm)
            .equitable_allowance()
            .unwrap()
            .unwrap()
            .allowance;
        let (best_set, best_a) = maximize_allowance(&set).unwrap().unwrap();
        assert!(best_a >= dm_allowance);
        assert_eq!(best_a, ms(11), "paper system: 11 ms is optimal");
        assert!(crate::response::ResponseAnalysis::new(&best_set)
            .is_feasible()
            .unwrap());
    }

    #[test]
    fn maximize_allowance_can_beat_rm() {
        // Two tasks, same period: RM ties (id order), but giving the
        // tight-deadline task priority yields more allowance.
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 5, ms(100), ms(10))
                .deadline(ms(100))
                .build(),
            TaskBuilder::new(2, 9, ms(100), ms(10))
                .deadline(ms(40))
                .build(),
        ]);
        // As given, τ2 (tight) is on top: A from τ2: 10+x ≤ 40 → 30;
        // τ1: 20+2x ≤ 100 → 40 ⇒ A = 30.
        // Swapped, τ2 underneath: 20+2x ≤ 40 → 10 ⇒ A = 10.
        let (_, best) = maximize_allowance(&set).unwrap().unwrap();
        assert_eq!(best, ms(30));
    }

    #[test]
    fn maximize_allowance_none_when_infeasible() {
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 2, ms(10), ms(8)).build(),
            TaskBuilder::new(2, 1, ms(10), ms(8)).build(),
        ]);
        assert_eq!(maximize_allowance(&set).unwrap(), None);
    }

    #[test]
    fn audsley_priorities_are_contiguous() {
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 9, ms(100), ms(10)).build(),
            TaskBuilder::new(2, 9, ms(200), ms(10)).build(),
            TaskBuilder::new(3, 9, ms(400), ms(10)).build(),
        ]);
        let out = audsley(&set).unwrap().unwrap();
        let mut prios: Vec<i32> = out.tasks().iter().map(|t| t.priority.0).collect();
        prios.sort_unstable();
        assert_eq!(prios, vec![1, 2, 3]);
    }
}
