//! Aperiodic-task servers — the paper's §7 closes with "studying the faults
//! detection and tolerance in the case of aperiodic tasks"; this module
//! provides the classical server abstractions that make aperiodic work
//! analysable inside the fixed-priority framework, so the same detectors
//! and allowances apply.
//!
//! Two servers are modelled:
//!
//! * **Polling server** — a periodic task (`T_s`, `C_s`) that serves queued
//!   aperiodic requests at its releases; capacity not used is lost. For the
//!   feasibility analysis it *is* a periodic task, so admission control and
//!   allowance computations apply unchanged.
//! * **Deferrable server** — keeps its budget through the period, giving
//!   better aperiodic response at the price of extra interference on lower
//!   tasks: the worst case is budget spent back-to-back at the end of one
//!   period and the start of the next. Its interference term is that of a
//!   periodic task with release jitter `T_s − C_s`, handled here by an
//!   explicit interference bound.

use crate::error::AnalysisError;
use crate::response::ResponseAnalysis;
use crate::task::{TaskBuilder, TaskSet, TaskSpec};
use crate::time::Duration;

/// Parameters of a server.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ServerParams {
    /// Replenishment period `T_s`.
    pub period: Duration,
    /// Budget per period `C_s`.
    pub budget: Duration,
    /// Fixed priority of the server.
    pub priority: i32,
}

impl ServerParams {
    /// Server utilization `C_s / T_s`.
    pub fn utilization(&self) -> f64 {
        self.budget.as_nanos() as f64 / self.period.as_nanos() as f64
    }
}

/// A simple aperiodic request for response-time estimation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AperiodicRequest {
    /// Arrival instant offset (relative time used by the estimators).
    pub arrival: Duration,
    /// Execution demand.
    pub demand: Duration,
}

/// The polling server as a periodic task spec (for admission alongside the
/// application tasks).
pub fn polling_server_task(id: u32, params: ServerParams) -> TaskSpec {
    TaskBuilder::new(id, params.priority, params.period, params.budget)
        .name(format!("PS{id}"))
        .build()
}

/// Worst-case response time of an aperiodic request of `demand` served by a
/// polling server, assuming the request arrives just *after* a server
/// release (worst case) and the server gets its full budget every period
/// (i.e. the server itself is feasible):
///
/// ```text
/// full periods needed = ⌈demand / C_s⌉
/// WCRT = T_s (missed release) + (k − 1)·T_s + R_s(last chunk)
/// ```
///
/// where `R_s` is the server's own WCRT within its period, bounded here by
/// the server WCRT computed against `set` (which must contain the server
/// task, identified by `server_rank`).
pub fn polling_server_response(
    set: &TaskSet,
    server_rank: usize,
    demand: Duration,
) -> Result<Duration, AnalysisError> {
    let server = set.by_rank(server_rank);
    assert!(demand.is_positive(), "demand must be positive");
    let k = demand.div_ceil(server.cost); // full budget chunks needed
    let server_wcrt = ResponseAnalysis::new(set).wcrt(server_rank)?;
    // Arrive right after a release: wait one full period, then (k−1) whole
    // periods for the first k−1 chunks, then the completion of the final
    // chunk inside its period.
    Ok(server.period + server.period.saturating_mul(k - 1) + server_wcrt)
}

/// Interference bound of a deferrable server on a lower-priority task over
/// a window `t`: budget with "jitter" `T_s − C_s`:
/// `(⌊(t + T_s − C_s)/T_s⌋ + 1)·C_s` — the classical back-to-back bound.
pub fn deferrable_interference(params: ServerParams, window: Duration) -> Duration {
    assert!(!window.is_negative(), "window must be non-negative");
    let jitter = params.period - params.budget;
    let n = (window + jitter) / params.period + 1;
    params.budget.saturating_mul(n)
}

/// WCRT of the task at `rank` in `set` with an *additional* deferrable
/// server at higher-or-equal priority, using the back-to-back interference
/// bound. The server is not part of `set`.
pub fn wcrt_under_deferrable(
    set: &TaskSet,
    rank: usize,
    server: ServerParams,
) -> Result<Duration, AnalysisError> {
    let task = set.by_rank(rank);
    if server.priority < task.priority.0 {
        // Lower-priority server does not interfere.
        return ResponseAnalysis::new(set).wcrt(rank);
    }
    // Fixed-point iteration including the server term.
    let analysis = ResponseAnalysis::new(set);
    let hp = set.hp_ranks(rank);
    let mut r = task.cost;
    for _ in 0..1_000_000u32 {
        let mut next = task.cost + deferrable_interference(server, r);
        for &j in &hp {
            let tj = set.by_rank(j);
            next = next.saturating_add(tj.cost.saturating_mul(r.div_ceil(tj.period)));
        }
        if next == r {
            return Ok(r);
        }
        if next > set.max_deadline() + set.hyperperiod() {
            return Err(AnalysisError::Divergent { task: task.id });
        }
        r = next;
    }
    let _ = analysis;
    Err(AnalysisError::IterationLimit {
        task: task.id,
        limit: 1_000_000,
    })
}

/// Utilization-based feasibility check of adding a server: the combined
/// utilization must not exceed 1 (necessary), reported with the exact
/// response-time verdict for the application tasks under a *polling*
/// server.
pub fn admit_polling_server(
    set: &TaskSet,
    id: u32,
    params: ServerParams,
) -> Result<Option<TaskSet>, AnalysisError> {
    let server = polling_server_task(id, params);
    let Ok(with_server) = set.with_added(server) else {
        return Ok(None);
    };
    let feasible = ResponseAnalysis::new(&with_server).is_feasible()?;
    Ok(feasible.then_some(with_server))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskId;

    fn ms(v: i64) -> Duration {
        Duration::millis(v)
    }

    fn table2() -> TaskSet {
        TaskSet::from_specs(vec![
            TaskBuilder::new(1, 20, ms(200), ms(29))
                .deadline(ms(70))
                .build(),
            TaskBuilder::new(2, 18, ms(250), ms(29))
                .deadline(ms(120))
                .build(),
            TaskBuilder::new(3, 16, ms(1500), ms(29))
                .deadline(ms(120))
                .build(),
        ])
    }

    #[test]
    fn polling_server_admits_into_paper_system() {
        // A 10 ms / 100 ms server at top priority: τ3's response grows by
        // the server interference but stays within 120 ms?
        // R3 = 29+29+29 + interference(PS). With PS at P=25, T=100, C=10:
        // R3 fixed point: 87 + ⌈R/100⌉·10 → R = 87+10 = 97 → ⌈97/100⌉ = 1 ✓.
        let params = ServerParams {
            period: ms(100),
            budget: ms(10),
            priority: 25,
        };
        let with = admit_polling_server(&table2(), 9, params).unwrap().unwrap();
        let rank3 = with.rank_of(TaskId(3)).unwrap();
        assert_eq!(ResponseAnalysis::new(&with).wcrt(rank3).unwrap(), ms(97));
    }

    #[test]
    fn oversized_server_is_rejected() {
        let params = ServerParams {
            period: ms(100),
            budget: ms(40),
            priority: 25,
        };
        // τ3: R = 87 + ⌈R/100⌉·40 → 127 → ⌈127/100⌉=2 → 167 → 207 → ⌈207/100⌉=3
        // → 207 fixed? 87+3*40=207, ⌈207/100⌉=3 ✓ → R3 = 207 > 120: reject.
        assert_eq!(admit_polling_server(&table2(), 9, params).unwrap(), None);
    }

    #[test]
    fn polling_response_single_chunk() {
        let params = ServerParams {
            period: ms(100),
            budget: ms(10),
            priority: 25,
        };
        let with = admit_polling_server(&table2(), 9, params).unwrap().unwrap();
        let rank = with.rank_of(TaskId(9)).unwrap();
        // Demand fits one budget: WCRT = T_s + R_s = 100 + 10 (top prio).
        let r = polling_server_response(&with, rank, ms(8)).unwrap();
        assert_eq!(r, ms(110));
    }

    #[test]
    fn polling_response_multiple_chunks() {
        let params = ServerParams {
            period: ms(100),
            budget: ms(10),
            priority: 25,
        };
        let with = admit_polling_server(&table2(), 9, params).unwrap().unwrap();
        let rank = with.rank_of(TaskId(9)).unwrap();
        // Demand 25 ms → 3 chunks → 100 + 2·100 + 10 = 310.
        let r = polling_server_response(&with, rank, ms(25)).unwrap();
        assert_eq!(r, ms(310));
    }

    #[test]
    fn deferrable_interference_back_to_back() {
        let p = ServerParams {
            period: ms(100),
            budget: ms(10),
            priority: 25,
        };
        // Tiny window still pays one full budget + the back-to-back one.
        assert_eq!(deferrable_interference(p, ms(1)), ms(10));
        // Window spanning the jitter boundary pays twice.
        assert_eq!(deferrable_interference(p, ms(15)), ms(20));
        // Window of one period: ⌊(100+90)/100⌋+1 = 2 budgets.
        assert_eq!(deferrable_interference(p, ms(100)), ms(20));
    }

    #[test]
    fn deferrable_hurts_more_than_polling() {
        let set = table2();
        let params = ServerParams {
            period: ms(100),
            budget: ms(10),
            priority: 25,
        };
        let deferrable = wcrt_under_deferrable(&set, 2, params).unwrap();
        // Polling equivalent: server as plain periodic task.
        let with = admit_polling_server(&set, 9, params).unwrap().unwrap();
        let rank3 = with.rank_of(TaskId(3)).unwrap();
        let polling = ResponseAnalysis::new(&with).wcrt(rank3).unwrap();
        assert!(
            deferrable >= polling,
            "deferrable ({deferrable}) must dominate polling ({polling})"
        );
        assert_eq!(deferrable, ms(107)); // 87 + 2·10 (back-to-back hit)
    }

    #[test]
    fn low_priority_server_does_not_interfere() {
        let set = table2();
        let params = ServerParams {
            period: ms(100),
            budget: ms(50),
            priority: 1,
        };
        assert_eq!(wcrt_under_deferrable(&set, 0, params).unwrap(), ms(29));
    }

    #[test]
    fn server_utilization() {
        let p = ServerParams {
            period: ms(100),
            budget: ms(10),
            priority: 1,
        };
        assert!((p.utilization() - 0.1).abs() < 1e-12);
    }
}
