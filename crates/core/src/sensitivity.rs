//! Sensitivity analysis — how far the declared parameters can drift before
//! feasibility is lost.
//!
//! The paper's §7 observes that costs "obtained by a statistical work"
//! may be under- *or* over-estimated. The allowance of [`crate::allowance`]
//! answers "how much *extra* execution can be absorbed"; this module
//! answers the complementary calibration questions:
//!
//! * [`Analyzer::cost_scaling_margin`](crate::analyzer::Analyzer::cost_scaling_margin)
//!   — the largest multiplicative factor `f` such that the system with
//!   costs `f·C_i` stays feasible (the classical *critical scaling
//!   factor*);
//! * [`Analyzer::max_single_overrun_with`](crate::analyzer::Analyzer::max_single_overrun_with)
//!   — per-task additive cost slack (the single-task overrun search);
//! * [`Analyzer::set_cost`](crate::analyzer::Analyzer::set_cost) followed
//!   by `wcrt_all()` — the monotonicity witness that reducing a cost never
//!   hurts feasibility;
//! * [`Analyzer::underrun_reclaim`](crate::analyzer::Analyzer::underrun_reclaim)
//!   — given observed under-runs (paper §7: "it is also possible to
//!   overestimate it"), how much allowance the *remaining* tasks gain if
//!   the measured costs replace the declared ones; its result type
//!   [`UnderrunReclaim`] lives here.
//!
//! The one-shot free functions this module used to export were
//! deprecated in 0.2.0 and have been removed; every caller holds an
//! [`Analyzer`](crate::analyzer::Analyzer) session (or issues
//! [`crate::query::Query::Sensitivity`] through a `Workbench`).

use crate::time::Duration;

/// Result of reclaiming observed under-runs (paper §7 "detect these costs
/// under-run and reassign resources").
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UnderrunReclaim {
    /// Equitable allowance with declared costs.
    pub declared_allowance: Duration,
    /// Equitable allowance with the measured (smaller) costs.
    pub measured_allowance: Duration,
    /// The gain, `measured − declared` (never negative).
    pub gained: Duration,
}

#[cfg(test)]
mod tests {
    use crate::allowance::SlackPolicy;
    use crate::analyzer::Analyzer;
    use crate::response::ResponseAnalysis;
    use crate::task::{TaskBuilder, TaskId, TaskSet};
    use crate::time::Duration;

    fn ms(v: i64) -> Duration {
        Duration::millis(v)
    }

    fn table2() -> TaskSet {
        TaskSet::from_specs(vec![
            TaskBuilder::new(1, 20, ms(200), ms(29))
                .deadline(ms(70))
                .build(),
            TaskBuilder::new(2, 18, ms(250), ms(29))
                .deadline(ms(120))
                .build(),
            TaskBuilder::new(3, 16, ms(1500), ms(29))
                .deadline(ms(120))
                .build(),
        ])
    }

    #[test]
    fn scaling_margin_of_paper_system() {
        // Scaling all costs by f: R3 = 3·29f ≤ 120 → f ≤ 120/87 ≈ 1.3793.
        let f = Analyzer::new(&table2())
            .cost_scaling_margin()
            .unwrap()
            .unwrap();
        assert!((f - 120.0 / 87.0).abs() < 1e-6, "got {f}");
    }

    #[test]
    fn scaling_margin_none_when_infeasible() {
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 2, ms(10), ms(8)).build(),
            TaskBuilder::new(2, 1, ms(10), ms(8)).build(),
        ]);
        assert_eq!(Analyzer::new(&set).cost_scaling_margin().unwrap(), None);
    }

    #[test]
    fn scaling_margin_exactly_one_when_tight() {
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 2, ms(4), ms(2)).build(),
            TaskBuilder::new(2, 1, ms(8), ms(4)).build(),
        ]);
        let f = Analyzer::new(&set).cost_scaling_margin().unwrap().unwrap();
        assert!((f - 1.0).abs() < 1e-6, "got {f}");
    }

    #[test]
    fn per_task_slack_matches_allowance_module() {
        let set = table2();
        let mut session = Analyzer::new(&set);
        assert_eq!(
            session
                .max_single_overrun_with(0, SlackPolicy::ProtectAll)
                .unwrap(),
            Some(ms(33))
        );
        assert_eq!(
            session
                .max_single_overrun_with(2, SlackPolicy::ProtectAll)
                .unwrap(),
            Some(ms(33))
        );
    }

    #[test]
    fn reduction_only_improves() {
        let set = table2();
        let base = ResponseAnalysis::new(&set).wcrt_all().unwrap();
        let mut session = Analyzer::new(&set);
        session.set_cost(0, ms(10));
        let reduced = session.wcrt_all().unwrap();
        for (b, r) in base.iter().zip(&reduced) {
            assert!(r <= b, "reduction must not increase any response time");
        }
        assert_eq!(reduced, vec![ms(10), ms(39), ms(68)]);
    }

    #[test]
    fn underrun_reclaim_gains_allowance() {
        let set = table2();
        // τ1 actually runs 9 ms instead of 29: R3 base becomes 9+29+29 = 67,
        // allowance rises accordingly.
        let r = Analyzer::new(&set)
            .underrun_reclaim(&[(TaskId(1), ms(9))])
            .unwrap()
            .unwrap();
        assert_eq!(r.declared_allowance, ms(11));
        // New constraint: 3A + 67 ≤ 120 → A ≤ 17.666… ms; exact integer-ns
        // search: ⌊53 ms / 3⌋ = 17_666_666 ns.
        assert!(r.measured_allowance > r.declared_allowance);
        assert_eq!(r.measured_allowance.as_nanos(), 17_666_666);
        assert_eq!(r.gained, r.measured_allowance - ms(11));
    }

    #[test]
    #[should_panic(expected = "expects observed ≤ declared")]
    fn underrun_reclaim_rejects_overrun_input() {
        let set = table2();
        let _ = Analyzer::new(&set).underrun_reclaim(&[(TaskId(1), ms(30))]);
    }
}
