//! Sensitivity analysis — how far the declared parameters can drift before
//! feasibility is lost.
//!
//! The paper's §7 observes that costs "obtained by a statistical work"
//! may be under- *or* over-estimated. The allowance of [`crate::allowance`]
//! answers "how much *extra* execution can be absorbed"; this module
//! answers the complementary calibration questions:
//!
//! * [`cost_scaling_margin`] — the largest multiplicative factor `f` such
//!   that the system with costs `f·C_i` stays feasible (the classical
//!   *critical scaling factor*);
//! * [`task_cost_slack`] — per-task additive slack (alias of the
//!   single-task overrun search, exposed here under its sensitivity name);
//! * [`min_feasible_cost`] — how far a cost can be *reduced* before the
//!   analysis stops being the binding certificate (always 1 ns: feasibility
//!   is monotone, so reduction never hurts — provided as an explicit,
//!   testable statement of that monotonicity);
//! * [`underrun_reclaim`] — given observed under-runs (paper §7: "it is
//!   also possible to overestimate it"), how much allowance the *remaining*
//!   tasks gain if the measured costs replace the declared ones.

use crate::allowance::SlackPolicy;
use crate::analyzer::Analyzer;
use crate::error::AnalysisError;
use crate::task::{TaskId, TaskSet};
use crate::time::Duration;

/// Largest factor `f ≥ 1` (within `1e-9`) such that scaling every cost by
/// `f` keeps the set feasible; `None` when the set is infeasible as-is.
/// A result of exactly `1.0` means there is no multiplicative headroom.
#[deprecated(
    since = "0.2.0",
    note = "one-shot wrapper; use `analyzer::Analyzer::cost_scaling_margin` on \
            a session — its probes warm-start from the feasible frontier"
)]
pub fn cost_scaling_margin(set: &TaskSet) -> Result<Option<f64>, AnalysisError> {
    Analyzer::new(set).cost_scaling_margin()
}

/// Additive cost slack of one task: how much its cost may grow, everything
/// else fixed, with the whole system staying feasible. Sensitivity-analysis
/// name for the single-task overrun search with [`SlackPolicy::ProtectAll`].
#[deprecated(
    since = "0.2.0",
    note = "one-shot wrapper; use `analyzer::Analyzer::max_single_overrun_with` \
            with `SlackPolicy::ProtectAll`"
)]
pub fn task_cost_slack(set: &TaskSet, rank: usize) -> Result<Option<Duration>, AnalysisError> {
    Analyzer::new(set).max_single_overrun_with(rank, SlackPolicy::ProtectAll)
}

/// Monotonicity witness: reducing any cost keeps a feasible system
/// feasible. Returns the response-time vector after the reduction so tests
/// (and callers reclaiming budget) can observe the improvement.
#[deprecated(
    since = "0.2.0",
    note = "one-shot wrapper; on an `analyzer::Analyzer` session call \
            `set_cost(rank, reduced)` followed by `wcrt_all()`"
)]
pub fn min_feasible_cost(
    set: &TaskSet,
    rank: usize,
    reduced: Duration,
) -> Result<Vec<Duration>, AnalysisError> {
    assert!(reduced.is_positive(), "cost must stay positive");
    assert!(
        reduced <= set.by_rank(rank).cost,
        "min_feasible_cost is for reductions"
    );
    let mut session = Analyzer::new(set);
    session.set_cost(rank, reduced);
    session.wcrt_all()
}

/// Result of reclaiming observed under-runs (paper §7 "detect these costs
/// under-run and reassign resources").
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UnderrunReclaim {
    /// Equitable allowance with declared costs.
    pub declared_allowance: Duration,
    /// Equitable allowance with the measured (smaller) costs.
    pub measured_allowance: Duration,
    /// The gain, `measured − declared` (never negative).
    pub gained: Duration,
}

/// Recompute the equitable allowance after substituting measured costs
/// (`(task, observed_cost)` pairs, each at most the declared cost) for the
/// declared ones. Quantifies how much extra tolerance under-running tasks
/// hand back to the system.
#[deprecated(
    since = "0.2.0",
    note = "one-shot wrapper; use `analyzer::Analyzer::underrun_reclaim` on a \
            session to reuse its memoized declared-cost allowance"
)]
pub fn underrun_reclaim(
    set: &TaskSet,
    measured: &[(TaskId, Duration)],
) -> Result<Option<UnderrunReclaim>, AnalysisError> {
    Analyzer::new(set).underrun_reclaim(measured)
}

#[cfg(test)]
mod tests {
    // The free functions under test are the deprecated compatibility
    // shims; these tests pin their behaviour to the Analyzer's.
    #![allow(deprecated)]

    use super::*;
    use crate::response::ResponseAnalysis;
    use crate::task::TaskBuilder;

    fn ms(v: i64) -> Duration {
        Duration::millis(v)
    }

    fn table2() -> TaskSet {
        TaskSet::from_specs(vec![
            TaskBuilder::new(1, 20, ms(200), ms(29))
                .deadline(ms(70))
                .build(),
            TaskBuilder::new(2, 18, ms(250), ms(29))
                .deadline(ms(120))
                .build(),
            TaskBuilder::new(3, 16, ms(1500), ms(29))
                .deadline(ms(120))
                .build(),
        ])
    }

    #[test]
    fn scaling_margin_of_paper_system() {
        // Scaling all costs by f: R3 = 3·29f ≤ 120 → f ≤ 120/87 ≈ 1.3793.
        let f = cost_scaling_margin(&table2()).unwrap().unwrap();
        assert!((f - 120.0 / 87.0).abs() < 1e-6, "got {f}");
    }

    #[test]
    fn scaling_margin_none_when_infeasible() {
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 2, ms(10), ms(8)).build(),
            TaskBuilder::new(2, 1, ms(10), ms(8)).build(),
        ]);
        assert_eq!(cost_scaling_margin(&set).unwrap(), None);
    }

    #[test]
    fn scaling_margin_exactly_one_when_tight() {
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 2, ms(4), ms(2)).build(),
            TaskBuilder::new(2, 1, ms(8), ms(4)).build(),
        ]);
        let f = cost_scaling_margin(&set).unwrap().unwrap();
        assert!((f - 1.0).abs() < 1e-6, "got {f}");
    }

    #[test]
    fn per_task_slack_matches_allowance_module() {
        let set = table2();
        assert_eq!(task_cost_slack(&set, 0).unwrap(), Some(ms(33)));
        assert_eq!(task_cost_slack(&set, 2).unwrap(), Some(ms(33)));
    }

    #[test]
    fn reduction_only_improves() {
        let set = table2();
        let base = ResponseAnalysis::new(&set).wcrt_all().unwrap();
        let reduced = min_feasible_cost(&set, 0, ms(10)).unwrap();
        for (b, r) in base.iter().zip(&reduced) {
            assert!(r <= b, "reduction must not increase any response time");
        }
        assert_eq!(reduced, vec![ms(10), ms(39), ms(68)]);
    }

    #[test]
    fn underrun_reclaim_gains_allowance() {
        let set = table2();
        // τ1 actually runs 9 ms instead of 29: R3 base becomes 9+29+29 = 67,
        // allowance rises accordingly.
        let r = underrun_reclaim(&set, &[(TaskId(1), ms(9))])
            .unwrap()
            .unwrap();
        assert_eq!(r.declared_allowance, ms(11));
        // New constraint: 3A + 67 ≤ 120 → A ≤ 17.666… ms; exact integer-ns
        // search: ⌊53 ms / 3⌋ = 17_666_666 ns.
        assert!(r.measured_allowance > r.declared_allowance);
        assert_eq!(r.measured_allowance.as_nanos(), 17_666_666);
        assert_eq!(r.gained, r.measured_allowance - ms(11));
    }

    #[test]
    #[should_panic(expected = "expects observed ≤ declared")]
    fn underrun_reclaim_rejects_overrun_input() {
        let set = table2();
        let _ = underrun_reclaim(&set, &[(TaskId(1), ms(30))]);
    }
}
