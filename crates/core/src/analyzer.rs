//! The incremental analysis session — the single entry point unifying
//! everything `rtft-core` can compute.
//!
//! The paper's construction derives fault detection (WCRT thresholds) and
//! fault allowance (equitable / system slack) entirely from numbers the
//! admission analysis already produced. Historically this crate exposed
//! those computations as disconnected free functions, each rebuilding a
//! [`ResponseAnalysis`](crate::response::ResponseAnalysis) and re-running
//! the full fixed point from scratch — including *inside* the binary
//! searches of [`crate::allowance`] and [`crate::sensitivity`], and on
//! every epoch of an online system.
//!
//! [`Analyzer`] replaces that: one session that
//!
//! * composes the previously siloed options — release jitter
//!   ([`JitterModel`]), priority-ceiling blocking ([`ResourceModel`]),
//!   aperiodic polling servers ([`ServerParams`]), slack policy
//!   ([`SlackPolicy`]) — behind one [`AnalyzerBuilder`];
//! * **memoizes** per-task WCRTs, busy-period solutions and the load
//!   test, so repeated queries are free;
//! * **incrementally revalidates** when a single task's parameters are
//!   perturbed: only tasks whose level-i workload actually changed are
//!   recomputed, and the response-time recurrence is **warm-started**
//!   from the previous fixed point instead of from `C_i` (valid because
//!   `W_q` is monotone in the costs: any old solution under costs ≤ the
//!   current ones is at or below the new least fixed point);
//! * warm-starts its binary searches the same way: each probe of the
//!   allowance / sensitivity searches seeds from the solution at the
//!   highest feasible inflation found so far, turning
//!   `O(probes × full fixed point)` into `O(probes × small delta)`.
//!
//! The legacy free functions survive as thin deprecated shims over this
//! type and return **bit-identical** results: warm starting changes the
//! number of recurrence iterations, never the fixed point.
//!
//! ```
//! use rtft_core::analyzer::Analyzer;
//! use rtft_core::prelude::*;
//!
//! let set = TaskSet::from_specs(vec![
//!     TaskBuilder::new(1, 20, Duration::millis(200), Duration::millis(29))
//!         .deadline(Duration::millis(70)).build(),
//!     TaskBuilder::new(2, 18, Duration::millis(250), Duration::millis(29))
//!         .deadline(Duration::millis(120)).build(),
//!     TaskBuilder::new(3, 16, Duration::millis(1500), Duration::millis(29))
//!         .deadline(Duration::millis(120)).build(),
//! ]);
//! let mut session = Analyzer::new(&set);
//! let wcrt = session.wcrt_all().unwrap();           // computed once…
//! assert_eq!(wcrt, vec![Duration::millis(29), Duration::millis(58),
//!                       Duration::millis(87)]);
//! let eq = session.equitable_allowance().unwrap().unwrap();
//! assert_eq!(eq.allowance, Duration::millis(11));   // …and reused here.
//! ```

use crate::allowance::{EquitableAllowance, SlackPolicy, SystemAllowance};
use crate::blocking::ResourceModel;
use crate::error::AnalysisError;
use crate::feasibility::{Admission, AdmissionError, FeasibilityReport, TaskFeasibility};
use crate::jitter::JitterModel;
use crate::policy::PolicyKind;
use crate::response::{TaskResponse, DEFAULT_ITERATION_LIMIT};
use crate::sensitivity::UnderrunReclaim;
use crate::server::{polling_server_task, ServerParams};
use crate::task::{TaskId, TaskSet, TaskSpec};
use crate::time::Duration;

/// Precision of the multiplicative scaling-factor search (mirrors
/// `sensitivity::SCALE_EPSILON`).
const SCALE_EPSILON: f64 = 1e-9;

/// Builder composing the analysis options that used to live in separate
/// modules. All options are optional; `AnalyzerBuilder::new(set).build()`
/// is the plain analysis of the paper's Figure 2.
#[derive(Clone, Debug)]
pub struct AnalyzerBuilder {
    set: TaskSet,
    blocking: Vec<Duration>,
    jitter: Option<Vec<Duration>>,
    policy: SlackPolicy,
    sched: PolicyKind,
    iteration_limit: u64,
    warm_start: bool,
}

impl AnalyzerBuilder {
    /// Start a session over `set` with no jitter, no blocking, the
    /// default slack policy and warm starting enabled.
    pub fn new(set: &TaskSet) -> Self {
        AnalyzerBuilder {
            blocking: vec![Duration::ZERO; set.len()],
            jitter: None,
            policy: SlackPolicy::default(),
            sched: PolicyKind::FixedPriority,
            iteration_limit: DEFAULT_ITERATION_LIMIT,
            warm_start: true,
            set: set.clone(),
        }
    }

    /// Analyse under a scheduling policy other than the default
    /// preemptive fixed priority:
    ///
    /// * [`PolicyKind::Edf`] — feasibility and allowance searches use
    ///   the processor-demand test of [`crate::edf`]; the WCRT queries
    ///   remain the fixed-priority reference numbers. The demand test
    ///   models neither blocking terms nor release jitter, so
    ///   [`AnalyzerBuilder::build`] rejects an EDF session combined
    ///   with either option rather than certify unsoundly;
    /// * [`PolicyKind::NonPreemptiveFp`] — every response-time query
    ///   adds the non-preemption blocking term `max_{j ∈ lp(i)} C_j` to
    ///   `B_i`, a sufficient (conservative) bound on the
    ///   run-to-completion dispatcher.
    pub fn sched_policy(mut self, kind: PolicyKind) -> Self {
        self.sched = kind;
        self
    }

    /// Analyse under a release-jitter model (Audsley's recurrence; see
    /// [`crate::jitter`]). Jitter-aware queries use the
    /// constrained-deadline single-job analysis, like the module did.
    pub fn jitter(mut self, model: &JitterModel) -> Self {
        self.jitter = Some((0..self.set.len()).map(|r| model.of(r)).collect());
        self
    }

    /// Install the blocking terms `B_i` induced by `resources` under the
    /// immediate priority ceiling protocol (see [`crate::blocking`]).
    pub fn blocking(mut self, resources: &ResourceModel) -> Self {
        self.blocking = resources.blocking_all(&self.set);
        self
    }

    /// Install explicit per-rank blocking terms.
    ///
    /// # Panics
    /// Panics on a length mismatch or a negative term.
    pub fn blocking_terms(mut self, terms: Vec<Duration>) -> Self {
        assert_eq!(terms.len(), self.set.len(), "one blocking term per task");
        assert!(
            terms.iter().all(|b| !b.is_negative()),
            "blocking must be ≥ 0"
        );
        self.blocking = terms;
        self
    }

    /// Add a polling server for aperiodic work as an ordinary periodic
    /// task (see [`crate::server`]); it is analysed — and granted
    /// allowance — like any other task.
    ///
    /// # Errors
    /// [`crate::error::ModelError`] if the server id collides or the
    /// parameters are invalid.
    pub fn polling_server(
        mut self,
        id: u32,
        params: ServerParams,
    ) -> Result<Self, crate::error::ModelError> {
        let server = polling_server_task(id, params);
        let old_set = self.set.clone();
        self.set = self.set.with_added(server)?;
        // `with_added` re-sorts by priority: remap the per-rank options
        // already configured onto the new ranks (the server itself gets
        // zero blocking and zero jitter).
        fn remap(old_set: &TaskSet, new_set: &TaskSet, old: &[Duration]) -> Vec<Duration> {
            (0..new_set.len())
                .map(|new_rank| {
                    old_set
                        .rank_of(new_set.by_rank(new_rank).id)
                        .map_or(Duration::ZERO, |old_rank| old[old_rank])
                })
                .collect()
        }
        self.blocking = remap(&old_set, &self.set, &self.blocking);
        self.jitter = self
            .jitter
            .as_deref()
            .map(|j| remap(&old_set, &self.set, j));
        Ok(self)
    }

    /// Slack policy used by the single-task overrun searches when no
    /// explicit policy is passed.
    pub fn slack_policy(mut self, policy: SlackPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replace the per-analysis iteration guard.
    pub fn iteration_limit(mut self, limit: u64) -> Self {
        self.iteration_limit = limit;
        self
    }

    /// Disable warm starting: every recurrence restarts from `C_i` as the
    /// legacy free functions did. Only useful for benchmarking the
    /// incremental path against the cold one and for equivalence tests —
    /// results are identical either way.
    pub fn warm_start(mut self, enabled: bool) -> Self {
        self.warm_start = enabled;
        self
    }

    /// Finish building.
    ///
    /// # Panics
    /// Panics when an EDF session is combined with blocking terms or a
    /// jitter model — the processor-demand test does not model either,
    /// and silently dropping them would turn the feasibility
    /// certificate unsound.
    pub fn build(self) -> Analyzer {
        if self.sched == PolicyKind::Edf {
            assert!(
                self.blocking.iter().all(|b| b.is_zero()),
                "EDF analysis does not model blocking terms"
            );
            assert!(
                self.jitter.is_none(),
                "EDF analysis does not model release jitter"
            );
        }
        let n = self.set.len();
        Analyzer {
            hp: (0..n).map(|r| self.set.hp_ranks(r)).collect(),
            lp: (0..n).map(|r| self.set.lp_ranks(r)).collect(),
            costs: self.set.tasks().iter().map(|t| t.cost).collect(),
            set: self.set,
            blocking: self.blocking,
            jitter: self.jitter,
            policy: self.policy,
            sched: self.sched,
            iteration_limit: self.iteration_limit,
            warm_start: self.warm_start,
            cache: vec![TaskCache::default(); n],
            eq_cache: None,
            sys_cache: None,
        }
    }
}

/// A feasible search frontier: the delta plus the per-rank busy-period
/// solution found there (used to warm-start the next, larger probe).
type Frontier = (Duration, Vec<Vec<Duration>>);

/// Everything one task's analysis reads, for cache-salvage comparisons:
/// `(period, cost, blocking, jitter, sorted hp (period, cost, jitter))`.
type ViewKey = (
    Duration,
    Duration,
    Duration,
    Duration,
    Vec<(Duration, Duration, Duration)>,
);

/// Memoized per-task state.
#[derive(Clone, Debug, Default)]
struct TaskCache {
    /// Completion times of the last converged busy-period solution that
    /// is still a valid **lower bound** for the current parameters
    /// (i.e. computed under component-wise smaller-or-equal costs and
    /// blocking). Used to warm-start the recurrence.
    seeds: Vec<Duration>,
    /// Fully valid memoized response for the *current* parameters.
    result: Option<TaskResponse>,
    /// Memoized jitter-analysis WCRT for the current parameters.
    jitter_wcrt: Option<Duration>,
}

/// The incremental analysis session. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct Analyzer {
    set: TaskSet,
    /// `hp_ranks(r)` for every rank, precomputed once per set.
    hp: Vec<Vec<usize>>,
    /// `lp_ranks(r)` for every rank (the non-preemptive blocking set).
    lp: Vec<Vec<usize>>,
    /// Effective costs (start at the declared ones; perturbable).
    costs: Vec<Duration>,
    blocking: Vec<Duration>,
    /// Per-rank release jitter when a jitter model is installed.
    jitter: Option<Vec<Duration>>,
    policy: SlackPolicy,
    /// Dispatch rule the session analyses for.
    sched: PolicyKind,
    iteration_limit: u64,
    warm_start: bool,
    cache: Vec<TaskCache>,
    eq_cache: Option<Option<EquitableAllowance>>,
    sys_cache: Option<(SlackPolicy, Option<SystemAllowance>)>,
}

impl Analyzer {
    /// Plain session over `set`: declared costs, no jitter, no blocking.
    pub fn new(set: &TaskSet) -> Self {
        AnalyzerBuilder::new(set).build()
    }

    /// Plain session over `set` analysed for `kind` (see
    /// [`AnalyzerBuilder::sched_policy`]).
    pub fn for_policy(set: &TaskSet, kind: PolicyKind) -> Self {
        AnalyzerBuilder::new(set).sched_policy(kind).build()
    }

    /// Scheduling policy the session was built for.
    pub fn sched_policy(&self) -> PolicyKind {
        self.sched
    }

    /// The task set under analysis.
    pub fn task_set(&self) -> &TaskSet {
        &self.set
    }

    /// Number of tasks in the session.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// `true` iff the session has no tasks (never, for a validated set).
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Effective cost of the task at `rank`.
    pub fn cost(&self, rank: usize) -> Duration {
        self.costs[rank]
    }

    /// Slack policy the session was built with.
    pub fn slack_policy(&self) -> SlackPolicy {
        self.policy
    }

    // ------------------------------------------------------------------
    // Perturbation — the incremental-revalidation API.
    // ------------------------------------------------------------------

    /// Override the effective cost of the task at `rank`, invalidating
    /// exactly the tasks whose level workload includes it. A cost
    /// *increase* keeps the old solutions as warm seeds; a decrease
    /// clears them (the recurrence can only be seeded from below).
    ///
    /// # Panics
    /// Panics if `cost` is not strictly positive.
    pub fn set_cost(&mut self, rank: usize, cost: Duration) {
        assert!(cost.is_positive(), "effective cost must be positive");
        if self.costs[rank] == cost {
            return;
        }
        let increased = cost > self.costs[rank];
        self.costs[rank] = cost;
        self.invalidate_dependents_of(rank, increased);
    }

    /// Add `delta` to every task's *declared* cost — the uniform
    /// inflation of the equitable-allowance search.
    ///
    /// # Panics
    /// Panics if any resulting cost is not strictly positive.
    pub fn inflate_all(&mut self, delta: Duration) {
        for rank in 0..self.set.len() {
            let cost = self.set.by_rank(rank).cost + delta;
            assert!(cost.is_positive(), "inflated cost must stay positive");
        }
        for rank in 0..self.set.len() {
            let cost = self.set.by_rank(rank).cost + delta;
            if cost < self.costs[rank] {
                self.cache[rank].seeds.clear();
            }
            self.costs[rank] = cost;
            self.cache[rank].result = None;
            self.cache[rank].jitter_wcrt = None;
        }
        // A decrease of any cost may invalidate every seed (all tasks can
        // see all others through equal priorities); be conservative.
        if self.cache.iter().any(|c| c.seeds.is_empty()) {
            for c in &mut self.cache {
                c.seeds.clear();
            }
        }
        self.eq_cache = None;
        self.sys_cache = None;
    }

    /// Reset every effective cost back to the declared one.
    pub fn reset_costs(&mut self) {
        for rank in 0..self.set.len() {
            let declared = self.set.by_rank(rank).cost;
            if self.costs[rank] != declared {
                let increased = declared > self.costs[rank];
                self.costs[rank] = declared;
                self.invalidate_dependents_of(rank, increased);
            }
        }
    }

    /// Set the blocking term `B_i` of the task at `rank`. Blocking only
    /// enters `τ_rank`'s own recurrence, so only that task revalidates.
    ///
    /// # Panics
    /// Panics on a negative term.
    pub fn set_blocking(&mut self, rank: usize, b: Duration) {
        assert!(!b.is_negative(), "blocking must be non-negative");
        if self.blocking[rank] == b {
            return;
        }
        let increased = b > self.blocking[rank];
        self.blocking[rank] = b;
        let cache = &mut self.cache[rank];
        cache.result = None;
        cache.jitter_wcrt = None;
        if !increased {
            cache.seeds.clear();
        }
        self.eq_cache = None;
        self.sys_cache = None;
    }

    /// Perturb one task of the underlying set (matched by id), keeping
    /// every cached solution that the change cannot affect.
    ///
    /// * cost-only changes go through the warm [`Analyzer::set_cost`]
    ///   path (the effective cost follows the new declared cost);
    /// * deadline-only changes invalidate nothing — deadlines are read
    ///   live by the feasibility queries;
    /// * period / priority / offset changes rebuild the session,
    ///   salvaging the caches of unaffected tasks.
    ///
    /// # Panics
    /// Panics if the id is not in the set.
    pub fn replace_task(&mut self, spec: TaskSpec) {
        let rank = self.set.rank_of(spec.id).expect("replace_task: unknown id");
        let old = self.set.by_rank(rank).clone();
        if old.period == spec.period && old.priority == spec.priority && old.offset == spec.offset {
            let was_declared = self.costs[rank] == old.cost;
            let new_cost = spec.cost;
            self.set = self.set.with_replaced(spec);
            if was_declared && new_cost != self.costs[rank] {
                self.set_cost(rank, new_cost);
            } else if !was_declared {
                // A session override is in place; keep it but note the
                // new declared baseline for inflate_all / reset_costs.
                self.eq_cache = None;
                self.sys_cache = None;
            } else {
                // Deadline-only change: feasibility reads deadlines live,
                // but any memoized allowance depended on them.
                self.eq_cache = None;
                self.sys_cache = None;
            }
            return;
        }
        let new_set = self.set.with_replaced(spec);
        *self = self.rebuilt_for(new_set);
    }

    // ------------------------------------------------------------------
    // Online admission — add/remove with cache salvage.
    // ------------------------------------------------------------------

    /// RTSJ `addToFeasibility` as a session operation: admit `spec` iff
    /// the grown system stays feasible. Higher-priority tasks keep their
    /// cached solutions (the newcomer cannot interfere with them); only
    /// the newcomer and the tasks below it are analysed, warm-started
    /// where possible. On rejection the session is unchanged.
    ///
    /// # Errors
    /// Model errors (duplicate id, bad parameters) and analysis errors
    /// are reported as in [`crate::feasibility::AdmissionController`].
    pub fn admit(&mut self, spec: TaskSpec) -> Result<Admission, AdmissionError> {
        let cut = spec.priority;
        let candidate_set = self.set.with_added(spec).map_err(AdmissionError::Model)?;
        // Interference can only grow on admission: every old busy-period
        // solution keeps bounding the new one from below, and tasks above
        // the newcomer are untouched entirely.
        let mut candidate = self.rebuilt_for_change(candidate_set, cut, true);
        let report = candidate.report().map_err(AdmissionError::Analysis)?;
        if report.is_feasible() {
            *self = candidate;
            Ok(Admission::Admitted(report))
        } else {
            Ok(Admission::Rejected(report))
        }
    }

    /// Remove a task from the session. Higher-priority tasks keep their
    /// cached solutions; for the rest, interference only shrank, so
    /// their caches are dropped (warm seeds must bound from below).
    ///
    /// # Errors
    /// [`crate::error::ModelError::UnknownTask`] via
    /// [`AdmissionError::Model`] when absent; removing the last task
    /// yields [`crate::error::ModelError::Empty`].
    pub fn remove(&mut self, id: TaskId) -> Result<(), AdmissionError> {
        let cut = self
            .set
            .by_id(id)
            .map(|t| t.priority)
            .unwrap_or(crate::task::Priority::MAX);
        let new_set = self.set.with_removed(id).map_err(AdmissionError::Model)?;
        // Interference shrank for tasks at or below the departed priority:
        // their seeds no longer bound from below and are dropped.
        *self = self.rebuilt_for_change(new_set, cut, false);
        Ok(())
    }

    /// Rebuild the session over `new_set` after a change confined to
    /// priority level `cut`: tasks *strictly above* `cut` keep their full
    /// caches (the change is invisible to them). For the rest, `grew`
    /// says whether interference only increased (admission) — then the
    /// old busy-period solutions survive as warm seeds — or may have
    /// decreased (removal), dropping them. Per-task options and
    /// effective-cost overrides carry over by id either way.
    fn rebuilt_for_change(
        &self,
        new_set: TaskSet,
        cut: crate::task::Priority,
        grew: bool,
    ) -> Analyzer {
        let mut next = AnalyzerBuilder::new(&new_set)
            .slack_policy(self.policy)
            .sched_policy(self.sched)
            .iteration_limit(self.iteration_limit)
            .warm_start(self.warm_start)
            .build();
        let mut jitter_next = self
            .jitter
            .as_ref()
            .map(|_| vec![Duration::ZERO; new_set.len()]);
        for new_rank in 0..new_set.len() {
            let spec = new_set.by_rank(new_rank);
            let Some(old_rank) = self.set.rank_of(spec.id) else {
                continue;
            };
            next.blocking[new_rank] = self.blocking[old_rank];
            next.costs[new_rank] = self.costs[old_rank];
            if let (Some(jn), Some(jo)) = (jitter_next.as_mut(), self.jitter.as_ref()) {
                jn[new_rank] = jo[old_rank];
            }
            // Non-preemptive blocking makes every task's analysis read
            // every cost, so full results never survive a set change
            // there; the seeds still bound from below when the change
            // only grew interference.
            let np = self.sched == PolicyKind::NonPreemptiveFp;
            if spec.priority > cut && !np {
                next.cache[new_rank] = self.cache[old_rank].clone();
            } else if grew && self.warm_start {
                next.cache[new_rank].seeds = self.cache[old_rank].seeds.clone();
            }
        }
        next.jitter = jitter_next;
        next
    }

    /// Rebuild the session over `new_set`, salvaging cached solutions of
    /// every task whose own parameters and whole higher-priority
    /// workload are unchanged. Effective costs reset to declared for
    /// tasks whose cached view changed.
    fn rebuilt_for(&self, new_set: TaskSet) -> Analyzer {
        let mut next = AnalyzerBuilder::new(&new_set)
            .slack_policy(self.policy)
            .sched_policy(self.sched)
            .iteration_limit(self.iteration_limit)
            .warm_start(self.warm_start)
            .build();
        // Carry per-task options and effective costs over by id.
        let mut jitter_next = self
            .jitter
            .as_ref()
            .map(|_| vec![Duration::ZERO; new_set.len()]);
        for new_rank in 0..new_set.len() {
            let id = new_set.by_rank(new_rank).id;
            let Some(old_rank) = self.set.rank_of(id) else {
                continue;
            };
            next.blocking[new_rank] = self.blocking[old_rank];
            if let (Some(jn), Some(jo)) = (jitter_next.as_mut(), self.jitter.as_ref()) {
                jn[new_rank] = jo[old_rank];
            }
            if self.set.by_rank(old_rank).cost == new_set.by_rank(new_rank).cost {
                next.costs[new_rank] = self.costs[old_rank];
            }
        }
        next.jitter = jitter_next;
        // Salvage caches where the analysed view is identical.
        for new_rank in 0..new_set.len() {
            let id = new_set.by_rank(new_rank).id;
            let Some(old_rank) = self.set.rank_of(id) else {
                continue;
            };
            if self.view_key(old_rank) == next.view_key(new_rank) {
                next.cache[new_rank] = self.cache[old_rank].clone();
            }
        }
        next
    }

    /// Everything the response-time analysis of one task reads: its own
    /// parameters plus the interference profile of its hp set (sorted —
    /// the recurrence is order-insensitive).
    fn view_key(&self, rank: usize) -> ViewKey {
        let spec = self.set.by_rank(rank);
        let mut hp: Vec<(Duration, Duration, Duration)> = self.hp[rank]
            .iter()
            .map(|&j| {
                (
                    self.set.by_rank(j).period,
                    self.costs[j],
                    self.jitter.as_ref().map_or(Duration::ZERO, |v| v[j]),
                )
            })
            .collect();
        hp.sort_unstable();
        (
            spec.period,
            self.costs[rank],
            // The *effective* term, so the non-preemptive lp-blocking
            // contribution participates in cache-salvage comparisons.
            self.effective_blocking(&self.costs, rank),
            self.jitter.as_ref().map_or(Duration::ZERO, |v| v[rank]),
            hp,
        )
    }

    /// Invalidate the memoized state of `rank` and of every task that
    /// counts it as interference. On a monotone increase the busy-period
    /// seeds survive (they still bound the new fixed point from below).
    fn invalidate_dependents_of(&mut self, rank: usize, increased: bool) {
        let p = self.set.by_rank(rank).priority;
        // Non-preemptive blocking flows *upward* (a lower-priority cost
        // enters every higher task's B_i), so under that policy every
        // task depends on every cost.
        let np = self.sched == PolicyKind::NonPreemptiveFp;
        for j in 0..self.set.len() {
            let affected = np || j == rank || self.set.by_rank(j).priority <= p;
            if !affected {
                continue;
            }
            let cache = &mut self.cache[j];
            cache.result = None;
            cache.jitter_wcrt = None;
            if !increased {
                cache.seeds.clear();
            }
        }
        self.eq_cache = None;
        self.sys_cache = None;
    }

    // ------------------------------------------------------------------
    // Delegation into the one shared fixed-point engine
    // (`crate::response::engine`) — warm seeds are the only addition.
    // ------------------------------------------------------------------

    /// Blocking term entering `rank`'s recurrence under `costs`: the
    /// configured `B_i`, plus — for the non-preemptive policy — the
    /// largest lower-priority cost (a lower-priority job holding the
    /// CPU at the critical instant runs to completion).
    fn effective_blocking(&self, costs: &[Duration], rank: usize) -> Duration {
        let mut b = self.blocking[rank];
        if self.sched == PolicyKind::NonPreemptiveFp {
            b += self.lp[rank]
                .iter()
                .map(|&j| costs[j])
                .fold(Duration::ZERO, Duration::max);
        }
        b
    }

    /// Busy-period analysis of `rank` under `costs`, warm-started from
    /// `seeds` (which must bound the solution from below, per job).
    /// Identical to `ResponseAnalysis::analyze` in results — both call
    /// the same engine.
    fn solve(
        &self,
        costs: &[Duration],
        rank: usize,
        seeds: &[Duration],
    ) -> Result<TaskResponse, AnalysisError> {
        self.solve_bounded(costs, rank, seeds, None)
    }

    /// [`Analyzer::solve`] with an early-abort response bound — the
    /// feasibility probes pass the deadline, so an infeasible probe
    /// stops at the first blown job instead of unrolling a busy period
    /// that the boundary inflation (and non-preemptive blocking) can
    /// stretch to millions of jobs.
    fn solve_bounded(
        &self,
        costs: &[Duration],
        rank: usize,
        seeds: &[Duration],
        abort_above: Option<Duration>,
    ) -> Result<TaskResponse, AnalysisError> {
        let seeds = if self.warm_start { seeds } else { &[] };
        crate::response::engine::solve_busy_period_bounded(
            &self.set,
            costs,
            self.effective_blocking(costs, rank),
            &self.hp[rank],
            rank,
            seeds,
            abort_above,
            self.iteration_limit,
        )
    }

    // ------------------------------------------------------------------
    // Memoized queries.
    // ------------------------------------------------------------------

    /// Full per-job analysis of the task at `rank`, memoized.
    ///
    /// # Errors
    /// [`AnalysisError::Divergent`] on a saturated level workload,
    /// [`AnalysisError::IterationLimit`] if the guard trips.
    pub fn analyze(&mut self, rank: usize) -> Result<TaskResponse, AnalysisError> {
        if let Some(r) = &self.cache[rank].result {
            return Ok(r.clone());
        }
        let seeds: Vec<Duration> = self.cache[rank].seeds.clone();
        let result = self.solve(&self.costs, rank, &seeds)?;
        let cache = &mut self.cache[rank];
        cache.seeds = result.jobs.iter().map(|j| j.completion).collect();
        cache.result = Some(result.clone());
        Ok(result)
    }

    /// Memoized WCRT of the task at `rank`. Cache hits read the scalar
    /// directly — no per-job clone on the hot feasibility paths.
    pub fn wcrt(&mut self, rank: usize) -> Result<Duration, AnalysisError> {
        if let Some(r) = &self.cache[rank].result {
            return Ok(r.wcrt);
        }
        self.analyze(rank).map(|r| r.wcrt)
    }

    /// Memoized WCRTs of every task, rank order.
    pub fn wcrt_all(&mut self) -> Result<Vec<Duration>, AnalysisError> {
        (0..self.set.len()).map(|rank| self.wcrt(rank)).collect()
    }

    /// EDF processor-demand feasibility of `costs` (see [`crate::edf`]);
    /// `skip` exempts one task's deadlines from the requirement.
    fn edf_feasible_under(&self, costs: &[Duration], skip: Option<usize>) -> bool {
        crate::edf::feasible(&self.set, costs, skip, self.iteration_limit)
    }

    /// Per-task detection thresholds under the session's scheduling
    /// policy: the memoized WCRTs for the fixed-priority policies
    /// (non-preemptive sessions include the blocking term), the
    /// relative deadlines for EDF — under EDF a feasible system
    /// guarantees nothing tighter than "done by the deadline", so the
    /// deadline *is* the detection threshold (a job past it has
    /// necessarily suffered a fault).
    pub fn policy_thresholds(&mut self) -> Result<Vec<Duration>, AnalysisError> {
        match self.sched {
            PolicyKind::Edf => Ok((0..self.set.len())
                .map(|r| self.set.by_rank(r).deadline)
                .collect()),
            _ => self.wcrt_all(),
        }
    }

    /// `true` iff every task meets its deadline under the current
    /// effective parameters and the session's scheduling policy (a
    /// diverging task counts as a miss).
    pub fn is_feasible(&mut self) -> Result<bool, AnalysisError> {
        if self.sched == PolicyKind::Edf {
            return Ok(self.edf_feasible_under(&self.costs, None));
        }
        for rank in 0..self.set.len() {
            match self.wcrt(rank) {
                Ok(w) => {
                    if w > self.set.by_rank(rank).deadline {
                        return Ok(false);
                    }
                }
                Err(AnalysisError::Divergent { .. }) => return Ok(false),
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Length of the level-`rank` busy period (not memoized — rarely on
    /// a hot path; see [`crate::response::ResponseAnalysis`]).
    pub fn level_busy_period(&self, rank: usize) -> Result<Duration, AnalysisError> {
        crate::response::engine::busy_period_length(
            &self.set,
            &self.costs,
            self.effective_blocking(&self.costs, rank),
            &self.hp[rank],
            rank,
            self.iteration_limit,
        )
    }

    /// The full admission report — load test first (paper §2.1), then
    /// the memoized exact response times (paper §2.2). Equivalent to the
    /// legacy `feasibility::analyze_set`.
    pub fn report(&mut self) -> Result<FeasibilityReport, AnalysisError> {
        let utilization: f64 = (0..self.set.len())
            .map(|r| self.costs[r].as_nanos() as f64 / self.set.by_rank(r).period.as_nanos() as f64)
            .sum();
        if utilization > 1.0 {
            return Ok(FeasibilityReport {
                utilization,
                overloaded: true,
                per_task: Vec::new(),
            });
        }
        if self.sched == PolicyKind::Edf {
            // The demand test is a whole-set verdict: report it on every
            // task (there is no per-task WCRT under EDF).
            let ok = self.edf_feasible_under(&self.costs, None);
            let per_task = self
                .set
                .tasks()
                .iter()
                .map(|t| TaskFeasibility {
                    task: t.id,
                    wcrt: None,
                    deadline: t.deadline,
                    feasible: ok,
                })
                .collect();
            return Ok(FeasibilityReport {
                utilization,
                overloaded: false,
                per_task,
            });
        }
        let mut per_task = Vec::with_capacity(self.set.len());
        for rank in 0..self.set.len() {
            let wcrt = match self.wcrt(rank) {
                Ok(w) => Some(w),
                Err(AnalysisError::Divergent { .. }) => None,
                Err(e) => return Err(e),
            };
            let task = self.set.by_rank(rank);
            per_task.push(TaskFeasibility {
                task: task.id,
                wcrt,
                deadline: task.deadline,
                feasible: wcrt.is_some_and(|w| w <= task.deadline),
            });
        }
        Ok(FeasibilityReport {
            utilization,
            overloaded: false,
            per_task,
        })
    }

    // ------------------------------------------------------------------
    // Jitter-aware queries (Audsley's recurrence, as crate::jitter).
    // ------------------------------------------------------------------

    /// Jitter of the task at `rank` (zero when no model is installed).
    pub fn jitter_of(&self, rank: usize) -> Duration {
        self.jitter.as_ref().map_or(Duration::ZERO, |v| v[rank])
    }

    /// WCRT of `rank` under the installed jitter model (constrained-
    /// deadline single-job analysis), memoized. Identical to
    /// [`crate::jitter::wcrt_with_jitter`] when no blocking is set; with
    /// blocking the term `B_i` is added to the window, an extension the
    /// jitter module never had.
    pub fn wcrt_with_jitter(&mut self, rank: usize) -> Result<Duration, AnalysisError> {
        if let Some(w) = self.cache[rank].jitter_wcrt {
            return Ok(w);
        }
        let zeros;
        let jitter: &[Duration] = match &self.jitter {
            Some(v) => v,
            None => {
                zeros = vec![Duration::ZERO; self.set.len()];
                &zeros
            }
        };
        let r = crate::jitter::engine::jitter_wcrt(
            &self.set,
            &self.costs,
            self.effective_blocking(&self.costs, rank),
            jitter,
            &self.hp[rank],
            rank,
            self.iteration_limit,
        )?;
        self.cache[rank].jitter_wcrt = Some(r);
        Ok(r)
    }

    /// Jitter-aware WCRTs of every task, rank order.
    pub fn wcrt_all_with_jitter(&mut self) -> Result<Vec<Duration>, AnalysisError> {
        (0..self.set.len())
            .map(|r| self.wcrt_with_jitter(r))
            .collect()
    }

    /// Feasibility under the installed jitter model.
    pub fn feasible_with_jitter(&mut self) -> Result<bool, AnalysisError> {
        for rank in 0..self.set.len() {
            match self.wcrt_with_jitter(rank) {
                Ok(r) => {
                    if r > self.set.by_rank(rank).deadline {
                        return Ok(false);
                    }
                }
                Err(AnalysisError::Divergent { .. }) => return Ok(false),
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    // ------------------------------------------------------------------
    // Warm-started searches.
    // ------------------------------------------------------------------

    /// Feasibility of the whole set under an explicit cost vector,
    /// seeded from `seeds` (per rank, per job; must bound from below).
    /// On a feasible outcome, `seeds` is replaced by the new solution so
    /// the next, larger probe starts even closer.
    fn feasible_under(
        &self,
        costs: &[Duration],
        seeds: &mut Vec<Vec<Duration>>,
        skip: Option<usize>,
    ) -> Result<bool, AnalysisError> {
        let mut fresh: Vec<Vec<Duration>> = Vec::with_capacity(self.set.len());
        for rank in 0..self.set.len() {
            if skip == Some(rank) {
                fresh.push(seeds.get(rank).cloned().unwrap_or_default());
                continue;
            }
            let warm: &[Duration] = seeds.get(rank).map_or(&[], |s| s.as_slice());
            let deadline = self.set.by_rank(rank).deadline;
            match self.solve_bounded(costs, rank, warm, Some(deadline)) {
                Ok(r) => {
                    if r.wcrt > deadline {
                        return Ok(false);
                    }
                    fresh.push(r.jobs.iter().map(|j| j.completion).collect());
                }
                Err(AnalysisError::Divergent { .. }) => return Ok(false),
                Err(e) => return Err(e),
            }
        }
        *seeds = fresh;
        Ok(true)
    }

    /// Per-rank warm seeds from the session's memoized solutions —
    /// valid lower bounds for any probe whose costs dominate the
    /// current effective ones.
    fn session_seeds(&self) -> Vec<Vec<Duration>> {
        self.cache.iter().map(|c| c.seeds.clone()).collect()
    }

    /// Monotone binary search for the largest feasible `delta` in
    /// `[0, hi]`, where `costs_at(delta)` materialises the probe's cost
    /// vector. Warm seeds start from `seeds` (the session's memoized
    /// solutions) and follow the feasible frontier `lo`; the frontier's
    /// solution is returned with the delta so callers can finish warm.
    /// Mirrors the probe sequence of `allowance::max_feasible` exactly.
    fn max_feasible_delta(
        &self,
        hi: Duration,
        mut costs_at: impl FnMut(Duration) -> Vec<Duration>,
        skip: Option<usize>,
        mut seeds: Vec<Vec<Duration>>,
    ) -> Result<Option<Frontier>, AnalysisError> {
        if !self.feasible_under(&costs_at(Duration::ZERO), &mut seeds, skip)? {
            return Ok(None);
        }
        let mut hi_seeds = seeds.clone();
        if self.feasible_under(&costs_at(hi), &mut hi_seeds, skip)? {
            return Ok(Some((hi, hi_seeds)));
        }
        let mut lo = Duration::ZERO;
        let mut hi = hi;
        while hi - lo > Duration::NANO {
            let mid = lo + (hi - lo) / 2;
            let mut probe = seeds.clone();
            if self.feasible_under(&costs_at(mid), &mut probe, skip)? {
                lo = mid;
                seeds = probe;
            } else {
                hi = mid;
            }
        }
        Ok(Some((lo, seeds)))
    }

    /// Largest uniform cost increment keeping the set feasible — the
    /// paper's §4.2, memoized per session state. Equivalent to the
    /// legacy `allowance::equitable_allowance`, warm-started.
    pub fn equitable_allowance(&mut self) -> Result<Option<EquitableAllowance>, AnalysisError> {
        if let Some(cached) = &self.eq_cache {
            return Ok(cached.clone());
        }
        if self.sched == PolicyKind::Edf {
            let eq = self.edf_equitable_allowance();
            self.eq_cache = Some(eq.clone());
            return Ok(eq);
        }
        let base_wcrt = match self.wcrt_all() {
            Ok(w) => w,
            Err(AnalysisError::Divergent { .. }) => {
                self.eq_cache = Some(None);
                return Ok(None);
            }
            Err(e) => return Err(e),
        };
        let hi = (0..self.set.len())
            .map(|r| self.set.by_rank(r).deadline - self.costs[r])
            .fold(Duration::MAX, Duration::min)
            .max(Duration::ZERO);
        let base_costs = self.costs.clone();
        let costs_at =
            |delta: Duration| -> Vec<Duration> { base_costs.iter().map(|&c| c + delta).collect() };
        let frontier = self.max_feasible_delta(hi, costs_at, None, self.session_seeds())?;
        let Some((allowance, frontier_seeds)) = frontier else {
            self.eq_cache = Some(None);
            return Ok(None);
        };
        // Final solution at the allowance, seeded from the search
        // frontier — when the last feasible probe *was* the allowance,
        // these seeds are already the exact fixed points.
        let costs = base_costs
            .iter()
            .map(|&c| c + allowance)
            .collect::<Vec<_>>();
        let mut inflated_wcrt = Vec::with_capacity(self.set.len());
        for (rank, rank_seeds) in frontier_seeds.iter().enumerate() {
            inflated_wcrt.push(self.solve(&costs, rank, rank_seeds)?.wcrt);
        }
        let eq = EquitableAllowance {
            allowance,
            inflated_wcrt,
            base_wcrt,
        };
        self.eq_cache = Some(Some(eq.clone()));
        Ok(Some(eq))
    }

    /// Equitable allowance under EDF: the largest uniform cost
    /// increment keeping the set demand-feasible. The thresholds
    /// (`inflated_wcrt`/`base_wcrt`) are the relative deadlines — the
    /// only per-task guarantee EDF feasibility provides (see
    /// [`Analyzer::policy_thresholds`]).
    fn edf_equitable_allowance(&self) -> Option<EquitableAllowance> {
        let base = self.costs.clone();
        if !self.edf_feasible_under(&base, None) {
            return None;
        }
        let hi = (0..self.set.len())
            .map(|r| self.set.by_rank(r).deadline - self.costs[r])
            .fold(Duration::MAX, Duration::min)
            .max(Duration::ZERO);
        let costs_at =
            |delta: Duration| -> Vec<Duration> { base.iter().map(|&c| c + delta).collect() };
        let allowance = self.edf_max_delta(hi, costs_at, None);
        let deadlines: Vec<Duration> = (0..self.set.len())
            .map(|r| self.set.by_rank(r).deadline)
            .collect();
        Some(EquitableAllowance {
            allowance,
            inflated_wcrt: deadlines.clone(),
            base_wcrt: deadlines,
        })
    }

    /// Largest `delta` in `[0, hi]` whose cost vector passes the EDF
    /// demand test (the base, `delta = 0`, must already pass). Same
    /// probe sequence as [`Analyzer::max_feasible_delta`].
    fn edf_max_delta(
        &self,
        hi: Duration,
        mut costs_at: impl FnMut(Duration) -> Vec<Duration>,
        skip: Option<usize>,
    ) -> Duration {
        if self.edf_feasible_under(&costs_at(hi), skip) {
            return hi;
        }
        let mut lo = Duration::ZERO;
        let mut hi = hi;
        while hi - lo > Duration::NANO {
            let mid = lo + (hi - lo) / 2;
            if self.edf_feasible_under(&costs_at(mid), skip) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Largest overrun the task at `rank` can make alone under `policy`
    /// (the paper's §4.3 `M_i`), warm-started. Equivalent to the legacy
    /// `allowance::max_single_overrun`.
    pub fn max_single_overrun_with(
        &mut self,
        rank: usize,
        policy: SlackPolicy,
    ) -> Result<Option<Duration>, AnalysisError> {
        // A memoized system allowance under the same policy already ran
        // this exact search: `M_rank` is its per-task entry. Only a
        // `Some` result can be reused — a `None` system allowance does
        // NOT mean every per-rank search is `None` (under
        // `ProtectOthers` the probed task's own deadline is exempt, so
        // base feasibility is rank-dependent).
        if let Some((p, Some(sa))) = &self.sys_cache {
            if *p == policy {
                return Ok(Some(sa.max_overrun[rank]));
            }
        }
        let task = self.set.by_rank(rank);
        let hi = match policy {
            SlackPolicy::ProtectAll => (task.deadline - self.costs[rank]).max(Duration::ZERO),
            SlackPolicy::ProtectOthers => self.set.max_deadline() + task.period,
        };
        let skip = (policy == SlackPolicy::ProtectOthers).then_some(rank);
        let base_costs = self.costs.clone();
        let costs_at = |delta: Duration| -> Vec<Duration> {
            let mut c = base_costs.clone();
            c[rank] += delta;
            c
        };
        if self.sched == PolicyKind::Edf {
            if !self.edf_feasible_under(&self.costs, skip) {
                return Ok(None);
            }
            return Ok(Some(self.edf_max_delta(hi, costs_at, skip)));
        }
        Ok(self
            .max_feasible_delta(hi, costs_at, skip, self.session_seeds())?
            .map(|(delta, _)| delta))
    }

    /// [`Analyzer::max_single_overrun_with`] under the session's
    /// configured slack policy.
    pub fn max_single_overrun(&mut self, rank: usize) -> Result<Option<Duration>, AnalysisError> {
        self.max_single_overrun_with(rank, self.policy)
    }

    /// `M_i` for every task under `policy` (paper §4.3), memoized.
    /// Equivalent to the legacy `allowance::system_allowance`.
    pub fn system_allowance_with(
        &mut self,
        policy: SlackPolicy,
    ) -> Result<Option<SystemAllowance>, AnalysisError> {
        if let Some((p, cached)) = &self.sys_cache {
            if *p == policy {
                return Ok(cached.clone());
            }
        }
        // Policy thresholds, not raw FP WCRTs: an EDF session must not
        // run (or fail on) the fixed-priority fixed point here — its
        // baseline is the deadline vector, consistent with
        // `equitable_allowance` and `policy_thresholds`.
        let base_wcrt = match self.policy_thresholds() {
            Ok(w) => w,
            Err(AnalysisError::Divergent { .. }) => {
                self.sys_cache = Some((policy, None));
                return Ok(None);
            }
            Err(e) => return Err(e),
        };
        if self.sched == PolicyKind::Edf && !self.edf_feasible_under(&self.costs, None) {
            self.sys_cache = Some((policy, None));
            return Ok(None);
        }
        let mut max_overrun = Vec::with_capacity(self.set.len());
        for rank in 0..self.set.len() {
            match self.max_single_overrun_with(rank, policy)? {
                Some(m) => max_overrun.push(m),
                None => {
                    self.sys_cache = Some((policy, None));
                    return Ok(None);
                }
            }
        }
        let sa = SystemAllowance {
            max_overrun,
            base_wcrt,
            policy,
        };
        self.sys_cache = Some((policy, Some(sa.clone())));
        Ok(Some(sa))
    }

    /// [`Analyzer::system_allowance_with`] under the session's policy.
    pub fn system_allowance(&mut self) -> Result<Option<SystemAllowance>, AnalysisError> {
        self.system_allowance_with(self.policy)
    }

    /// WCRT of `victim` when each `(rank, overrun)` pair inflates the
    /// corresponding effective cost; the session state is untouched.
    /// Equivalent to the legacy `allowance::wcrt_under_overruns`.
    pub fn wcrt_under_overruns(
        &self,
        victim: usize,
        overruns: &[(usize, Duration)],
    ) -> Result<Duration, AnalysisError> {
        let mut costs = self.costs.clone();
        let mut grew = true;
        for &(rank, delta) in overruns {
            costs[rank] = self.set.by_rank(rank).cost + delta;
            grew &= costs[rank] >= self.costs[rank];
        }
        let seeds: &[Duration] = if grew { &self.cache[victim].seeds } else { &[] };
        self.solve(&costs, victim, seeds).map(|r| r.wcrt)
    }

    /// Largest factor `f ≥ 1` (within `1e-9`) keeping the set feasible
    /// when every cost scales by `f`; `None` for an infeasible base.
    /// Equivalent to the legacy `sensitivity::cost_scaling_margin`,
    /// warm-started along the growing feasible frontier.
    pub fn cost_scaling_margin(&mut self) -> Result<Option<f64>, AnalysisError> {
        let base_costs = self.costs.clone();
        let costs_at = |f: f64| -> Option<Vec<Duration>> {
            let mut out = Vec::with_capacity(base_costs.len());
            for c in &base_costs {
                let scaled = c.as_nanos() as f64 * f;
                if scaled > i64::MAX as f64 {
                    return None;
                }
                out.push(Duration::nanos(scaled.ceil() as i64));
            }
            Some(out)
        };
        // `f = 1` reproduces the current effective costs, so the
        // session's memoized solutions are valid seeds from the start.
        let mut seeds: Vec<Vec<Duration>> = self.session_seeds();
        let edf = self.sched == PolicyKind::Edf;
        let feasible = |s: &mut Vec<Vec<Duration>>, f: f64| -> Result<bool, AnalysisError> {
            match costs_at(f) {
                Some(costs) if edf => Ok(self.edf_feasible_under(&costs, None)),
                Some(costs) => self.feasible_under(&costs, s, None),
                None => Ok(false),
            }
        };
        if !feasible(&mut seeds, 1.0)? {
            return Ok(None);
        }
        let mut hi = 2.0;
        let mut lo = 1.0;
        loop {
            let mut probe = seeds.clone();
            if !feasible(&mut probe, hi)? {
                break;
            }
            seeds = probe;
            lo = hi;
            hi *= 2.0;
            if hi > 1e6 {
                return Ok(Some(lo));
            }
        }
        while hi - lo > SCALE_EPSILON {
            let mid = 0.5 * (lo + hi);
            let mut probe = seeds.clone();
            if feasible(&mut probe, mid)? {
                seeds = probe;
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(Some(lo))
    }

    /// Equitable allowance regained when `measured` observed costs (each
    /// at most the declared one) replace the declared ones — the
    /// paper's §7 under-run reclamation. The session itself is not
    /// modified. Equivalent to the legacy `sensitivity::underrun_reclaim`.
    ///
    /// # Panics
    /// Panics when an observed cost exceeds the declared one or is not
    /// positive.
    pub fn underrun_reclaim(
        &mut self,
        measured: &[(TaskId, Duration)],
    ) -> Result<Option<UnderrunReclaim>, AnalysisError> {
        let Some(declared) = self.equitable_allowance()? else {
            return Ok(None);
        };
        let mut adjusted = self.set.clone();
        for &(id, observed) in measured {
            let Some(spec) = adjusted.by_id(id) else {
                continue;
            };
            assert!(
                observed <= spec.cost,
                "underrun_reclaim expects observed ≤ declared for {id}"
            );
            assert!(observed.is_positive(), "observed cost must be positive");
            let mut spec = spec.clone();
            spec.cost = observed;
            adjusted = adjusted.with_replaced(spec);
        }
        let mut measured_session = self.rebuilt_for(adjusted);
        let Some(measured_eq) = measured_session.equitable_allowance()? else {
            return Ok(None);
        };
        Ok(Some(UnderrunReclaim {
            declared_allowance: declared.allowance,
            measured_allowance: measured_eq.allowance,
            gained: measured_eq.allowance - declared.allowance,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::ResponseAnalysis;
    use crate::task::TaskBuilder;

    fn ms(v: i64) -> Duration {
        Duration::millis(v)
    }

    fn table2() -> TaskSet {
        TaskSet::from_specs(vec![
            TaskBuilder::new(1, 20, ms(200), ms(29))
                .deadline(ms(70))
                .build(),
            TaskBuilder::new(2, 18, ms(250), ms(29))
                .deadline(ms(120))
                .build(),
            TaskBuilder::new(3, 16, ms(1500), ms(29))
                .deadline(ms(120))
                .build(),
        ])
    }

    #[test]
    fn matches_response_analysis_on_the_paper_set() {
        let set = table2();
        let mut a = Analyzer::new(&set);
        assert_eq!(a.wcrt_all().unwrap(), vec![ms(29), ms(58), ms(87)]);
        // Memoized: identical on the second call.
        assert_eq!(a.wcrt_all().unwrap(), vec![ms(29), ms(58), ms(87)]);
        assert!(a.is_feasible().unwrap());
        let report = a.report().unwrap();
        assert!(report.is_feasible());
        assert!((report.utilization - set.utilization()).abs() < 1e-12);
    }

    #[test]
    fn allowances_match_paper_and_are_memoized() {
        let mut a = Analyzer::new(&table2());
        let eq = a.equitable_allowance().unwrap().unwrap();
        assert_eq!(eq.allowance, ms(11));
        assert_eq!(eq.inflated_wcrt, vec![ms(40), ms(80), ms(120)]);
        assert_eq!(eq.base_wcrt, vec![ms(29), ms(58), ms(87)]);
        // Second call hits the memo.
        assert_eq!(a.equitable_allowance().unwrap().unwrap(), eq);
        let sa = a
            .system_allowance_with(SlackPolicy::ProtectAll)
            .unwrap()
            .unwrap();
        assert_eq!(sa.max_overrun, vec![ms(33), ms(33), ms(33)]);
        assert_eq!(
            a.cost_scaling_margin().unwrap().map(|f| (f * 1e6).round()),
            Some((120.0f64 / 87.0 * 1e6).round())
        );
    }

    #[test]
    fn warm_and_cold_sessions_agree() {
        let set = table2();
        let mut warm = AnalyzerBuilder::new(&set).build();
        let mut cold = AnalyzerBuilder::new(&set).warm_start(false).build();
        assert_eq!(
            warm.equitable_allowance().unwrap(),
            cold.equitable_allowance().unwrap()
        );
        assert_eq!(
            warm.system_allowance_with(SlackPolicy::ProtectOthers)
                .unwrap(),
            cold.system_allowance_with(SlackPolicy::ProtectOthers)
                .unwrap()
        );
        assert_eq!(
            warm.cost_scaling_margin().unwrap(),
            cold.cost_scaling_margin().unwrap()
        );
    }

    #[test]
    fn cost_perturbation_revalidates_incrementally() {
        let set = table2();
        let mut a = Analyzer::new(&set);
        a.wcrt_all().unwrap();
        // Inflate τ1 by the paper's 33 ms system slack: τ3 lands exactly
        // on its deadline, matching the from-scratch analysis.
        a.set_cost(0, ms(29 + 33));
        assert_eq!(a.wcrt(2).unwrap(), ms(120));
        assert!(a.is_feasible().unwrap());
        a.set_cost(0, ms(29 + 34));
        assert!(!a.is_feasible().unwrap());
        // Shrinking back clears the seeds and still agrees with scratch.
        a.set_cost(0, ms(29));
        assert_eq!(a.wcrt_all().unwrap(), vec![ms(29), ms(58), ms(87)]);
    }

    #[test]
    fn inflate_all_matches_scratch() {
        let set = table2();
        let mut a = Analyzer::new(&set);
        a.equitable_allowance().unwrap();
        a.inflate_all(ms(11));
        assert_eq!(a.wcrt_all().unwrap(), vec![ms(40), ms(80), ms(120)]);
        assert!(a.is_feasible().unwrap());
        a.inflate_all(ms(12));
        assert!(!a.is_feasible().unwrap());
        a.reset_costs();
        assert_eq!(a.wcrt_all().unwrap(), vec![ms(29), ms(58), ms(87)]);
    }

    #[test]
    fn admit_salvages_higher_priority_caches_and_rolls_back() {
        let mut a = Analyzer::new(&TaskSet::from_specs(vec![
            TaskBuilder::new(1, 20, ms(200), ms(29))
                .deadline(ms(70))
                .build(),
            TaskBuilder::new(2, 18, ms(250), ms(29))
                .deadline(ms(120))
                .build(),
        ]));
        a.wcrt_all().unwrap();
        // Admit a mid-priority task: ranks shift, τ2 recomputes.
        let adm = a
            .admit(
                TaskBuilder::new(9, 19, ms(300), ms(10))
                    .deadline(ms(300))
                    .build(),
            )
            .unwrap();
        assert!(adm.is_admitted());
        assert_eq!(a.wcrt_all().unwrap(), vec![ms(29), ms(39), ms(68)]);
        // A hog is rejected and the session stays as-is.
        let rejected = a
            .admit(TaskBuilder::new(4, 17, ms(100), ms(90)).build())
            .unwrap();
        assert!(!rejected.is_admitted());
        assert_eq!(a.len(), 3);
        assert_eq!(a.wcrt_all().unwrap(), vec![ms(29), ms(39), ms(68)]);
        // Removal returns to the two-task numbers.
        a.remove(TaskId(9)).unwrap();
        assert_eq!(a.wcrt_all().unwrap(), vec![ms(29), ms(58)]);
    }

    #[test]
    fn replace_task_handles_all_parameter_kinds() {
        let set = table2();
        let mut a = Analyzer::new(&set);
        a.wcrt_all().unwrap();
        // Cost-only change.
        let mut spec = set.by_id(TaskId(1)).unwrap().clone();
        spec.cost = ms(40);
        a.replace_task(spec.clone());
        let scratch = ResponseAnalysis::new(a.task_set()).wcrt_all().unwrap();
        assert_eq!(a.wcrt_all().unwrap(), scratch);
        // Deadline-only change flips feasibility without recomputation
        // (R3 = 40 + 29 + 29 = 98 ms > 90 ms).
        let mut spec = a.task_set().by_id(TaskId(3)).unwrap().clone();
        spec.deadline = ms(90);
        a.replace_task(spec);
        assert!(!a.is_feasible().unwrap());
        // Period change triggers a rebuild and still matches scratch.
        let mut spec = a.task_set().by_id(TaskId(2)).unwrap().clone();
        spec.period = ms(300);
        a.replace_task(spec);
        let scratch = ResponseAnalysis::new(a.task_set()).wcrt_all().unwrap();
        assert_eq!(a.wcrt_all().unwrap(), scratch);
    }

    #[test]
    fn jitter_queries_match_the_jitter_module() {
        use crate::jitter::{wcrt_with_jitter, JitterModel};
        let set = table2();
        let jm = JitterModel::per_task(&set, vec![ms(3), ms(0), ms(5)]);
        let mut a = AnalyzerBuilder::new(&set).jitter(&jm).build();
        let cold: Vec<Duration> = (0..set.len())
            .map(|r| wcrt_with_jitter(&set, r, &jm).unwrap())
            .collect();
        assert_eq!(a.wcrt_all_with_jitter().unwrap(), cold);
        assert!(a.feasible_with_jitter().unwrap());
    }

    #[test]
    fn blocking_composes_with_allowance() {
        use crate::blocking::ResourceId;
        let set = table2();
        let mut rm = ResourceModel::new();
        rm.add_section(TaskId(1), ResourceId(1), ms(2));
        rm.add_section(TaskId(3), ResourceId(1), ms(7));
        let mut a = AnalyzerBuilder::new(&set).blocking(&rm).build();
        assert_eq!(a.wcrt_all().unwrap(), vec![ms(36), ms(65), ms(87)]);
        let eq = a.equitable_allowance().unwrap().unwrap();
        assert_eq!(eq.allowance, ms(11));
        assert_eq!(eq.inflated_wcrt, vec![ms(47), ms(87), ms(120)]);
    }

    #[test]
    fn polling_server_composes() {
        let set = table2();
        let a = AnalyzerBuilder::new(&set)
            .polling_server(
                9,
                ServerParams {
                    period: ms(100),
                    budget: ms(10),
                    priority: 25,
                },
            )
            .unwrap()
            .build();
        let mut a = a;
        let rank3 = a.task_set().rank_of(TaskId(3)).unwrap();
        assert_eq!(a.wcrt(rank3).unwrap(), ms(97));
        assert!(a.is_feasible().unwrap());
    }

    #[test]
    fn polling_server_preserves_configured_options() {
        use crate::blocking::ResourceId;
        let set = table2();
        let mut rm = ResourceModel::new();
        rm.add_section(TaskId(1), ResourceId(1), ms(2));
        rm.add_section(TaskId(3), ResourceId(1), ms(7));
        // Order must not matter: blocking configured before the server is
        // added still applies to the original tasks afterwards.
        let mut with_server = AnalyzerBuilder::new(&set)
            .blocking(&rm)
            .polling_server(
                9,
                ServerParams {
                    period: ms(100),
                    budget: ms(10),
                    priority: 25,
                },
            )
            .unwrap()
            .build();
        let rank1 = with_server.task_set().rank_of(TaskId(1)).unwrap();
        // τ1 keeps its 7 ms blocking term under the server's interference:
        // R1 = 29 + 7 + 10 = 46.
        assert_eq!(with_server.wcrt(rank1).unwrap(), ms(46));
        // And a jitter model survives too (server itself gets zero).
        let jm = crate::jitter::JitterModel::per_task(&set, vec![ms(3), ms(0), ms(0)]);
        let jittered = AnalyzerBuilder::new(&set)
            .jitter(&jm)
            .polling_server(
                9,
                ServerParams {
                    period: ms(100),
                    budget: ms(10),
                    priority: 25,
                },
            )
            .unwrap()
            .build();
        let rank1 = jittered.task_set().rank_of(TaskId(1)).unwrap();
        assert_eq!(jittered.jitter_of(rank1), ms(3));
        let server_rank = jittered.task_set().rank_of(TaskId(9)).unwrap();
        assert_eq!(jittered.jitter_of(server_rank), Duration::ZERO);
    }

    #[test]
    fn underrun_reclaim_matches_sensitivity() {
        let mut a = Analyzer::new(&table2());
        let r = a.underrun_reclaim(&[(TaskId(1), ms(9))]).unwrap().unwrap();
        assert_eq!(r.declared_allowance, ms(11));
        assert_eq!(r.measured_allowance.as_nanos(), 17_666_666);
    }

    #[test]
    fn divergent_levels_are_classified_not_fatal() {
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 10, ms(10), ms(6)).build(),
            TaskBuilder::new(2, 5, ms(10), ms(5)).build(),
        ]);
        let mut a = Analyzer::new(&set);
        assert!(matches!(
            a.wcrt(1),
            Err(AnalysisError::Divergent { task: TaskId(2) })
        ));
        assert!(!a.is_feasible().unwrap());
        assert_eq!(a.equitable_allowance().unwrap(), None);
        assert_eq!(
            a.system_allowance_with(SlackPolicy::ProtectAll).unwrap(),
            None
        );
        assert_eq!(a.cost_scaling_margin().unwrap(), None);
    }

    #[test]
    fn iteration_limit_still_guards() {
        let mut a = AnalyzerBuilder::new(&table2()).iteration_limit(1).build();
        assert!(matches!(
            a.analyze(2),
            Err(AnalysisError::IterationLimit { limit: 1, .. })
        ));
    }

    #[test]
    fn edf_session_admits_what_fp_rejects() {
        // U = 1.0, non-harmonic: RM misses (R2 = 7 > 6), EDF is exact.
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 2, ms(4), ms(2)).build(),
            TaskBuilder::new(2, 1, ms(6), ms(3)).build(),
        ]);
        let mut fp = Analyzer::new(&set);
        assert!(!fp.is_feasible().unwrap());
        let mut edf = Analyzer::for_policy(&set, PolicyKind::Edf);
        assert_eq!(edf.sched_policy(), PolicyKind::Edf);
        assert!(edf.is_feasible().unwrap());
        assert!(edf.report().unwrap().is_feasible());
        // Thresholds under EDF are the relative deadlines.
        assert_eq!(edf.policy_thresholds().unwrap(), vec![ms(4), ms(6)]);
        // Zero slack at U = 1: no allowance to hand out.
        assert_eq!(
            edf.equitable_allowance().unwrap().unwrap().allowance,
            Duration::ZERO
        );
    }

    #[test]
    fn edf_allowances_on_the_paper_set() {
        let mut a = Analyzer::for_policy(&table2(), PolicyKind::Edf);
        // h(120) = 3(29 + A) ≤ 120 binds: A = 11 ms, like FP.
        let eq = a.equitable_allowance().unwrap().unwrap();
        assert_eq!(eq.allowance, ms(11));
        assert_eq!(eq.inflated_wcrt, vec![ms(70), ms(120), ms(120)]);
        // Single-task slack: 3·29 + M ≤ 120 → M = 33 ms for every task
        // (τ1 is additionally capped by D1 − C1 = 41, not binding).
        let sa = a
            .system_allowance_with(SlackPolicy::ProtectAll)
            .unwrap()
            .unwrap();
        assert_eq!(sa.max_overrun, vec![ms(33), ms(33), ms(33)]);
        // Perturbation invalidates the memo like the FP paths do.
        a.inflate_all(ms(12));
        assert!(!a.is_feasible().unwrap());
        a.reset_costs();
        assert!(a.is_feasible().unwrap());
        assert_eq!(a.equitable_allowance().unwrap().unwrap().allowance, ms(11));
    }

    #[test]
    fn edf_system_allowance_never_runs_the_fp_fixed_point() {
        // The U = 1.0 set FP rejects: an EDF session's system allowance
        // must report the policy baseline (deadlines), not FP WCRTs —
        // and must not fail just because the FP analysis would.
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 2, ms(4), ms(2)).build(),
            TaskBuilder::new(2, 1, ms(6), ms(3)).build(),
        ]);
        let mut edf = Analyzer::for_policy(&set, PolicyKind::Edf);
        let sa = edf
            .system_allowance_with(SlackPolicy::ProtectAll)
            .unwrap()
            .unwrap();
        assert_eq!(sa.base_wcrt, vec![ms(4), ms(6)], "deadlines, not FP WCRTs");
        assert_eq!(sa.max_overrun, vec![Duration::ZERO, Duration::ZERO]);
    }

    #[test]
    #[should_panic(expected = "EDF analysis does not model blocking")]
    fn edf_rejects_blocking_terms() {
        let _ = AnalyzerBuilder::new(&table2())
            .blocking_terms(vec![ms(1), ms(0), ms(0)])
            .sched_policy(PolicyKind::Edf)
            .build();
    }

    #[test]
    #[should_panic(expected = "EDF analysis does not model release jitter")]
    fn edf_rejects_jitter_models() {
        let set = table2();
        let jm = crate::jitter::JitterModel::per_task(&set, vec![ms(1), ms(0), ms(0)]);
        let _ = AnalyzerBuilder::new(&set)
            .jitter(&jm)
            .sched_policy(PolicyKind::Edf)
            .build();
    }

    #[test]
    fn non_preemptive_session_adds_lp_blocking() {
        let set = table2();
        let mut np = Analyzer::for_policy(&set, PolicyKind::NonPreemptiveFp);
        // Each task is blocked by the longest lower-priority cost
        // (29 ms); τ3 has no lower-priority tasks.
        assert_eq!(np.wcrt_all().unwrap(), vec![ms(58), ms(87), ms(87)]);
        assert!(np.is_feasible().unwrap());
        // R1 = 2(29 + A) ≤ 70 now binds the equitable allowance: A = 6.
        let eq = np.equitable_allowance().unwrap().unwrap();
        assert_eq!(eq.allowance, ms(6));
        // Raising a *lower-priority* cost must invalidate τ1's memo
        // (blocking flows upward under non-preemption).
        np.set_cost(2, ms(41));
        assert_eq!(np.wcrt(0).unwrap(), ms(70));
        np.set_cost(2, ms(42));
        assert!(!np.is_feasible().unwrap());
    }

    #[test]
    fn wcrt_under_overruns_is_scratch_free() {
        let mut a = Analyzer::new(&table2());
        a.wcrt_all().unwrap();
        assert_eq!(a.wcrt_under_overruns(2, &[(0, ms(20))]).unwrap(), ms(107));
        assert_eq!(
            a.wcrt_under_overruns(2, &[(0, ms(20)), (1, ms(20))])
                .unwrap(),
            ms(127)
        );
        // Session state untouched.
        assert_eq!(a.wcrt_all().unwrap(), vec![ms(29), ms(58), ms(87)]);
    }

    #[test]
    fn overrun_search_is_not_poisoned_by_a_none_system_allowance() {
        // τ2 misses its own deadline at base (10 + 50 > 55): the
        // whole-system allowance under ProtectOthers is None (τ1's
        // search must protect τ2's hopeless deadline), but τ2's own
        // search — which exempts its deadline — still has an answer.
        // The system-allowance memo must not conflate the two.
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 2, ms(100), ms(10)).build(),
            TaskBuilder::new(2, 1, ms(100), ms(50))
                .deadline(ms(55))
                .build(),
        ]);
        let direct = Analyzer::new(&set)
            .max_single_overrun_with(1, SlackPolicy::ProtectOthers)
            .unwrap();
        assert!(direct.is_some(), "τ2's own-deadline-exempt search answers");
        let mut session = Analyzer::new(&set);
        assert_eq!(
            session
                .system_allowance_with(SlackPolicy::ProtectOthers)
                .unwrap(),
            None
        );
        assert_eq!(
            session
                .max_single_overrun_with(1, SlackPolicy::ProtectOthers)
                .unwrap(),
            direct,
            "a memoized None system allowance must not shadow the per-task search"
        );
        // A Some system allowance IS reused, bit for bit.
        let mut warm = Analyzer::new(&table2());
        let sa = warm
            .system_allowance_with(SlackPolicy::ProtectAll)
            .unwrap()
            .unwrap();
        for rank in 0..3 {
            assert_eq!(
                warm.max_single_overrun_with(rank, SlackPolicy::ProtectAll)
                    .unwrap(),
                Some(sa.max_overrun[rank])
            );
        }
    }
}
