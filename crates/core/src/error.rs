//! Error types for model construction and analysis.

use crate::task::TaskId;
use std::fmt;

/// Errors raised while constructing or editing a task model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ModelError {
    /// A task set must contain at least one task.
    Empty,
    /// Two tasks share the same [`TaskId`].
    DuplicateId(TaskId),
    /// A parameter violates its domain (non-positive period, …).
    InvalidParameter {
        /// Offending task.
        task: TaskId,
        /// What was wrong.
        what: &'static str,
    },
    /// The referenced task is not part of the set.
    UnknownTask(TaskId),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Empty => write!(f, "task set is empty"),
            ModelError::DuplicateId(id) => write!(f, "duplicate task id {id}"),
            ModelError::InvalidParameter { task, what } => {
                write!(f, "invalid parameter for {task}: {what}")
            }
            ModelError::UnknownTask(id) => write!(f, "unknown task {id}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Errors raised by the feasibility / allowance analyses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AnalysisError {
    /// The response-time recurrence did not converge: the level-i busy
    /// period never closes because the workload saturates the processor.
    Divergent {
        /// Task whose analysis diverged.
        task: TaskId,
    },
    /// An iteration guard tripped before convergence; the result would be
    /// unreliable. Carries the bound that was exceeded.
    IterationLimit {
        /// Task under analysis.
        task: TaskId,
        /// The configured bound.
        limit: u64,
    },
    /// The referenced task is not part of the analysed set.
    UnknownTask(TaskId),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Divergent { task } => {
                write!(f, "response-time analysis diverges for {task} (overload)")
            }
            AnalysisError::IterationLimit { task, limit } => {
                write!(f, "analysis iteration limit {limit} exceeded for {task}")
            }
            AnalysisError::UnknownTask(id) => write!(f, "unknown task {id}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(ModelError::Empty.to_string(), "task set is empty");
        assert!(ModelError::DuplicateId(TaskId(3))
            .to_string()
            .contains("τ3"));
        assert!(AnalysisError::Divergent { task: TaskId(1) }
            .to_string()
            .contains("diverges"));
        assert!(AnalysisError::IterationLimit {
            task: TaskId(1),
            limit: 10
        }
        .to_string()
        .contains("10"));
    }
}
