//! Release-jitter response-time analysis.
//!
//! The paper's platform introduces jitter in two places: the 10 ms timer
//! grid delays detector releases by up to one quantum, and the polled
//! stop adds bounded lag. Classical jitter analysis (Audsley et al.)
//! extends the WCRT recurrence to tasks whose activation may lag their
//! nominal release by up to `J_i`:
//!
//! ```text
//! w_i = C_i + B_i + Σ_{j ∈ hp(i)} ⌈(w_i + J_j) / T_j⌉ · C_j
//! R_i = J_i + w_i
//! ```
//!
//! Interference grows because a jittered high-priority job can land
//! *back-to-back* with its successor; the task's own response is measured
//! from the nominal release, so its own jitter adds directly.
//!
//! This module provides the constrained-deadline (`R ≤ T`) jitter
//! analysis, plus a helper that derives detector-lag bounds from a
//! `TimerModel`-style quantum (see `rtft-sim`).

use crate::error::AnalysisError;
use crate::task::{TaskId, TaskSet};
use crate::time::Duration;

/// Per-task release jitter bounds, rank order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JitterModel {
    jitter: Vec<Duration>,
}

impl JitterModel {
    /// No jitter.
    pub fn zero(set: &TaskSet) -> Self {
        JitterModel {
            jitter: vec![Duration::ZERO; set.len()],
        }
    }

    /// Uniform jitter on every task (e.g. a release-grid quantum).
    pub fn uniform(set: &TaskSet, j: Duration) -> Self {
        assert!(!j.is_negative(), "jitter must be non-negative");
        JitterModel {
            jitter: vec![j; set.len()],
        }
    }

    /// Explicit per-rank bounds.
    ///
    /// # Panics
    /// Panics if the length mismatches or any bound is negative.
    pub fn per_task(set: &TaskSet, jitter: Vec<Duration>) -> Self {
        assert_eq!(jitter.len(), set.len(), "one bound per task");
        assert!(
            jitter.iter().all(|j| !j.is_negative()),
            "jitter must be ≥ 0"
        );
        JitterModel { jitter }
    }

    /// Jitter of the task at `rank`.
    pub fn of(&self, rank: usize) -> Duration {
        self.jitter[rank]
    }
}

/// WCRT of the task at `rank` under release jitter (constrained-deadline
/// analysis; the busy period must close within one period).
///
/// # Errors
/// [`AnalysisError::Divergent`] when the level workload saturates,
/// [`AnalysisError::IterationLimit`] on the guard.
pub fn wcrt_with_jitter(
    set: &TaskSet,
    rank: usize,
    jitter: &JitterModel,
) -> Result<Duration, AnalysisError> {
    let costs: Vec<Duration> = set.tasks().iter().map(|t| t.cost).collect();
    let jitters: Vec<Duration> = (0..set.len()).map(|r| jitter.of(r)).collect();
    engine::jitter_wcrt(
        set,
        &costs,
        Duration::ZERO,
        &jitters,
        &set.hp_ranks(rank),
        rank,
        crate::response::DEFAULT_ITERATION_LIMIT,
    )
}

/// The shared jitter recurrence, used by [`wcrt_with_jitter`] and by the
/// jitter-aware queries of [`crate::analyzer::Analyzer`] (which feed it
/// effective costs and blocking), so the arithmetic exists once.
pub(crate) mod engine {
    use super::{AnalysisError, Duration, TaskSet};
    use crate::response::engine::level_utilization;

    /// Least fixed point of
    /// `w = C_i + B_i + Σ_{j ∈ hp} ⌈(w + J_j)/T_j⌉·C_j`, returned as
    /// `J_i + w` (the constrained-deadline single-job analysis).
    pub(crate) fn jitter_wcrt(
        set: &TaskSet,
        costs: &[Duration],
        blocking_i: Duration,
        jitter: &[Duration],
        hp: &[usize],
        rank: usize,
        limit: u64,
    ) -> Result<Duration, AnalysisError> {
        let task = set.by_rank(rank);
        if level_utilization(set, costs, hp, rank) > 1.0 {
            return Err(AnalysisError::Divergent { task: task.id });
        }
        let mut budget = limit;
        let mut w = costs[rank];
        loop {
            if budget == 0 {
                return Err(AnalysisError::IterationLimit {
                    task: task.id,
                    limit,
                });
            }
            budget -= 1;
            let mut next = costs[rank] + blocking_i;
            for &j in hp {
                let tj = set.by_rank(j);
                next = next
                    .saturating_add(costs[j].saturating_mul((w + jitter[j]).div_ceil(tj.period)));
            }
            if next == w {
                return Ok(jitter[rank] + w);
            }
            w = next;
        }
    }
}

/// Worst-case detector lag for each task when detector first releases are
/// snapped **up** to a grid of `quantum`: the paper's measured 1/2/3 ms
/// delays are instances (`29→30`, `58→60`, `87→90` on the 10 ms grid).
/// Returns `(task, requested offset, quantized offset, lag)` per rank,
/// taking `wcrt[rank]` as the requested offset.
pub fn detector_lags(
    set: &TaskSet,
    wcrt: &[Duration],
    quantum: Duration,
) -> Vec<(TaskId, Duration, Duration, Duration)> {
    assert!(quantum.is_positive(), "quantum must be positive");
    (0..set.len())
        .map(|rank| {
            let spec = set.by_rank(rank);
            let requested = spec.offset + wcrt[rank];
            let quantized = requested.round_up_to(quantum);
            (spec.id, requested, quantized, quantized - requested)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::AnalyzerBuilder;
    use crate::response::wcrt_all;

    /// Session under `set` with the jitter model installed — the
    /// replacement for the removed one-shot wrappers.
    fn jittered(set: &TaskSet, j: &JitterModel) -> crate::analyzer::Analyzer {
        AnalyzerBuilder::new(set).jitter(j).build()
    }
    use crate::task::TaskBuilder;

    fn ms(v: i64) -> Duration {
        Duration::millis(v)
    }

    fn table2() -> TaskSet {
        TaskSet::from_specs(vec![
            TaskBuilder::new(1, 20, ms(200), ms(29))
                .deadline(ms(70))
                .build(),
            TaskBuilder::new(2, 18, ms(250), ms(29))
                .deadline(ms(120))
                .build(),
            TaskBuilder::new(3, 16, ms(1500), ms(29))
                .deadline(ms(120))
                .build(),
        ])
    }

    #[test]
    fn zero_jitter_matches_base_analysis() {
        let set = table2();
        let j = JitterModel::zero(&set);
        assert_eq!(
            jittered(&set, &j).wcrt_all_with_jitter().unwrap(),
            wcrt_all(&set).unwrap()
        );
        assert!(jittered(&set, &j).feasible_with_jitter().unwrap());
    }

    #[test]
    fn own_jitter_adds_directly() {
        let set = table2();
        let j = JitterModel::per_task(&set, vec![ms(3), ms(0), ms(0)]);
        // τ1's own response gains its jitter; its interference on others
        // does not change here because the windows stay within one period.
        assert_eq!(wcrt_with_jitter(&set, 0, &j).unwrap(), ms(32));
        assert_eq!(wcrt_with_jitter(&set, 1, &j).unwrap(), ms(58));
    }

    #[test]
    fn upstream_jitter_can_double_interference() {
        // τ1: T=10, C=2, J=4; τ2: C=5. Window w = 5 + ⌈(w+4)/10⌉·2:
        // w=7 → ⌈11/10⌉=2 → 5+4=9 → ⌈13/10⌉=2 → 9 ✓. Versus 7 without
        // jitter: the jittered τ1 squeezes two jobs into the window.
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 9, ms(10), ms(2)).build(),
            TaskBuilder::new(2, 3, ms(20), ms(5)).build(),
        ]);
        let no_j = JitterModel::zero(&set);
        assert_eq!(wcrt_with_jitter(&set, 1, &no_j).unwrap(), ms(7));
        let j = JitterModel::per_task(&set, vec![ms(4), ms(0)]);
        assert_eq!(wcrt_with_jitter(&set, 1, &j).unwrap(), ms(9));
    }

    #[test]
    fn jitter_monotonicity() {
        let set = table2();
        let mut prev = jittered(&set, &JitterModel::zero(&set))
            .wcrt_all_with_jitter()
            .unwrap();
        for q in [1i64, 5, 10, 20] {
            let cur = jittered(&set, &JitterModel::uniform(&set, ms(q)))
                .wcrt_all_with_jitter()
                .unwrap();
            for (a, b) in prev.iter().zip(&cur) {
                assert!(b >= a, "jitter must not reduce response times");
            }
            prev = cur;
        }
    }

    #[test]
    fn infeasible_under_jitter_detected() {
        // Tight system where jitter breaks feasibility.
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 9, ms(10), ms(4)).build(),
            TaskBuilder::new(2, 3, ms(20), ms(6))
                .deadline(ms(14))
                .build(),
        ]);
        // No jitter: w2 = 6 + ⌈w/10⌉·4 fixes at 10 ≤ 14 ✓.
        assert!(jittered(&set, &JitterModel::zero(&set))
            .feasible_with_jitter()
            .unwrap());
        // τ1 jitter 7 ms: w = 6 + ⌈(w+7)/10⌉·4 fixes at 18 > 14.
        let j = JitterModel::per_task(&set, vec![ms(7), ms(0)]);
        assert!(!jittered(&set, &j).feasible_with_jitter().unwrap());
    }

    #[test]
    fn detector_lags_match_figure4() {
        let set = table2();
        let wcrt = wcrt_all(&set).unwrap();
        let lags = detector_lags(&set, &wcrt, ms(10));
        let lag_ms: Vec<i64> = lags.iter().map(|(_, _, _, l)| l.as_millis()).collect();
        assert_eq!(lag_ms, vec![1, 2, 3], "the paper's 1/2/3 ms delays");
        assert_eq!(lags[0].2, ms(30));
        assert_eq!(lags[2].2, ms(90));
    }

    #[test]
    fn divergence_guard() {
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 9, ms(10), ms(6)).build(),
            TaskBuilder::new(2, 3, ms(10), ms(6)).build(),
        ]);
        let j = JitterModel::zero(&set);
        assert!(matches!(
            wcrt_with_jitter(&set, 1, &j),
            Err(AnalysisError::Divergent { .. })
        ));
    }
}
