//! Shared resources and blocking — the paper's Section 7 lists "the share
//! of resources among the various tasks" and "the influence of tolerance on
//! the determination of the blocking time (b_i)" as future work; this module
//! implements that extension.
//!
//! Resources are accessed under the **immediate priority ceiling protocol**
//! (the RTSJ's `PriorityCeilingEmulation` monitor control policy): each
//! resource has a ceiling equal to the highest priority of any task using
//! it, a task holding the resource runs at the ceiling, and a task can be
//! blocked at most once, by the single longest inner critical section of a
//! lower-priority task whose ceiling reaches its own priority.
//!
//! The derived `B_i` plugs into the response-time recurrence via
//! [`crate::response::ResponseAnalysis::set_blocking`], and
//! [`allowance_with_blocking`] re-runs the equitable-allowance search under
//! those terms — quantifying exactly how resource sharing erodes the
//! tolerance factor.

use crate::allowance::EquitableAllowance;
use crate::error::AnalysisError;
use crate::response::ResponseAnalysis;
use crate::task::{Priority, TaskId, TaskSet};
use crate::time::Duration;
use std::collections::BTreeMap;

/// Identifier of a shared resource.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ResourceId(pub u32);

/// One task's critical section on one resource.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CriticalSection {
    /// The task entering the section.
    pub task: TaskId,
    /// The resource it locks.
    pub resource: ResourceId,
    /// Worst-case duration the lock is held.
    pub duration: Duration,
}

/// The resource-usage map of a system.
#[derive(Clone, Debug, Default)]
pub struct ResourceModel {
    sections: Vec<CriticalSection>,
}

impl ResourceModel {
    /// Empty model (no shared resources — the paper's setting).
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a critical section.
    ///
    /// # Panics
    /// Panics on a non-positive duration.
    pub fn add_section(&mut self, task: TaskId, resource: ResourceId, duration: Duration) {
        assert!(duration.is_positive(), "critical section must take time");
        self.sections.push(CriticalSection {
            task,
            resource,
            duration,
        });
    }

    /// All declared sections.
    pub fn sections(&self) -> &[CriticalSection] {
        &self.sections
    }

    /// Priority ceiling of each resource: the highest priority among the
    /// tasks that use it.
    pub fn ceilings(&self, set: &TaskSet) -> BTreeMap<ResourceId, Priority> {
        let mut ceilings: BTreeMap<ResourceId, Priority> = BTreeMap::new();
        for cs in &self.sections {
            if let Some(task) = set.by_id(cs.task) {
                let e = ceilings.entry(cs.resource).or_insert(task.priority);
                *e = (*e).max(task.priority);
            }
        }
        ceilings
    }

    /// Blocking term `B_i` of the task at `rank` under the immediate
    /// priority ceiling protocol: the longest critical section of any
    /// *lower-priority* task on a resource whose ceiling is at or above
    /// `τ_i`'s priority. A task blocks at most once.
    pub fn blocking_term(&self, set: &TaskSet, rank: usize) -> Duration {
        let me = set.by_rank(rank);
        let ceilings = self.ceilings(set);
        let mut worst = Duration::ZERO;
        for cs in &self.sections {
            let Some(owner) = set.by_id(cs.task) else {
                continue;
            };
            if owner.priority >= me.priority {
                continue; // only lower-priority holders block
            }
            let Some(&ceiling) = ceilings.get(&cs.resource) else {
                continue;
            };
            if ceiling >= me.priority {
                worst = worst.max(cs.duration);
            }
        }
        worst
    }

    /// Blocking terms for every rank.
    pub fn blocking_all(&self, set: &TaskSet) -> Vec<Duration> {
        (0..set.len()).map(|r| self.blocking_term(set, r)).collect()
    }
}

/// Response analysis with the blocking terms of `resources` installed.
pub fn analysis_with_blocking<'a>(
    set: &'a TaskSet,
    resources: &ResourceModel,
) -> ResponseAnalysis<'a> {
    let mut a = ResponseAnalysis::new(set);
    for (rank, b) in resources.blocking_all(set).into_iter().enumerate() {
        a.set_blocking(rank, b);
    }
    a
}

/// WCRTs under blocking, rank order.
pub fn wcrt_with_blocking(
    set: &TaskSet,
    resources: &ResourceModel,
) -> Result<Vec<Duration>, AnalysisError> {
    crate::analyzer::AnalyzerBuilder::new(set)
        .blocking(resources)
        .build()
        .wcrt_all()
}

/// Equitable allowance recomputed with blocking terms — the paper's §7
/// question "the influence of tolerance on the determination of the
/// blocking time". `Ok(None)` when the blocked system is already
/// infeasible.
pub fn allowance_with_blocking(
    set: &TaskSet,
    resources: &ResourceModel,
) -> Result<Option<EquitableAllowance>, AnalysisError> {
    crate::analyzer::AnalyzerBuilder::new(set)
        .blocking(resources)
        .build()
        .equitable_allowance()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskBuilder;

    fn ms(v: i64) -> Duration {
        Duration::millis(v)
    }

    fn table2() -> TaskSet {
        TaskSet::from_specs(vec![
            TaskBuilder::new(1, 20, ms(200), ms(29))
                .deadline(ms(70))
                .build(),
            TaskBuilder::new(2, 18, ms(250), ms(29))
                .deadline(ms(120))
                .build(),
            TaskBuilder::new(3, 16, ms(1500), ms(29))
                .deadline(ms(120))
                .build(),
        ])
    }

    #[test]
    fn no_resources_no_blocking() {
        let set = table2();
        let rm = ResourceModel::new();
        assert_eq!(rm.blocking_all(&set), vec![ms(0), ms(0), ms(0)]);
        assert_eq!(
            wcrt_with_blocking(&set, &rm).unwrap(),
            vec![ms(29), ms(58), ms(87)]
        );
    }

    #[test]
    fn ceiling_blocking_from_lower_task() {
        let set = table2();
        let mut rm = ResourceModel::new();
        // τ1 and τ3 share resource 1: ceiling = P(τ1) = 20.
        rm.add_section(TaskId(1), ResourceId(1), ms(2));
        rm.add_section(TaskId(3), ResourceId(1), ms(7));
        // τ1 can be blocked by τ3's 7 ms section (ceiling ≥ P1, owner lower).
        assert_eq!(rm.blocking_term(&set, 0), ms(7));
        // τ2 does not use the resource but its priority is between the
        // ceiling and τ3: it can still be blocked (ceiling ≥ P2).
        assert_eq!(rm.blocking_term(&set, 1), ms(7));
        // τ3 is the lowest: nobody below it can block it.
        assert_eq!(rm.blocking_term(&set, 2), ms(0));
        // WCRTs shift by the blocking term.
        assert_eq!(
            wcrt_with_blocking(&set, &rm).unwrap(),
            vec![ms(36), ms(65), ms(87)]
        );
    }

    #[test]
    fn blocking_is_single_longest_not_sum() {
        let set = table2();
        let mut rm = ResourceModel::new();
        rm.add_section(TaskId(1), ResourceId(1), ms(1));
        rm.add_section(TaskId(3), ResourceId(1), ms(4));
        rm.add_section(TaskId(1), ResourceId(2), ms(1));
        rm.add_section(TaskId(2), ResourceId(2), ms(6));
        // τ1 blockable by τ3 (4 ms) or τ2 (6 ms) — once, by the longest.
        assert_eq!(rm.blocking_term(&set, 0), ms(6));
    }

    #[test]
    fn low_ceiling_does_not_block_high_task() {
        let set = table2();
        let mut rm = ResourceModel::new();
        // Only τ2 and τ3 share the resource: ceiling = P(τ2) = 18 < P(τ1).
        rm.add_section(TaskId(2), ResourceId(1), ms(3));
        rm.add_section(TaskId(3), ResourceId(1), ms(9));
        assert_eq!(rm.blocking_term(&set, 0), ms(0));
        assert_eq!(rm.blocking_term(&set, 1), ms(9));
    }

    #[test]
    fn allowance_shrinks_under_blocking() {
        let set = table2();
        let mut rm = ResourceModel::new();
        // τ1/τ3 share a 7 ms section: τ1 and τ2 gain B = 7 ms.
        rm.add_section(TaskId(1), ResourceId(1), ms(2));
        rm.add_section(TaskId(3), ResourceId(1), ms(7));
        let eq = allowance_with_blocking(&set, &rm).unwrap().unwrap();
        // τ3's constraint was the binding one and is unchanged (B3 = 0, but
        // τ3's response includes the *inflated* higher costs, not their
        // blocking): A stays 11 iff blocking does not propagate to τ3's
        // recurrence — it does not. The binding moves only if τ1/τ2 get
        // tight. Here A remains 11 and inflated WCRTs shift for τ1/τ2.
        assert_eq!(eq.allowance, ms(11));
        assert_eq!(eq.base_wcrt, vec![ms(36), ms(65), ms(87)]);
        assert_eq!(eq.inflated_wcrt, vec![ms(47), ms(87), ms(120)]);
    }

    #[test]
    fn allowance_binding_can_move_to_blocked_task() {
        // Tighten τ2's deadline so its blocked, inflated response binds.
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 20, ms(200), ms(29))
                .deadline(ms(70))
                .build(),
            TaskBuilder::new(2, 18, ms(250), ms(29))
                .deadline(ms(80))
                .build(),
            TaskBuilder::new(3, 16, ms(1500), ms(29))
                .deadline(ms(120))
                .build(),
        ]);
        let mut rm = ResourceModel::new();
        rm.add_section(TaskId(2), ResourceId(1), ms(1));
        rm.add_section(TaskId(3), ResourceId(1), ms(10));
        // B2 = 10: inflated R2 = 58 + 2A + 10 ≤ 80 → A ≤ 6.
        let eq = allowance_with_blocking(&set, &rm).unwrap().unwrap();
        assert_eq!(eq.allowance, ms(6));
        // Without resources it would have been 11.
        let plain = crate::analyzer::Analyzer::new(&set)
            .equitable_allowance()
            .unwrap()
            .unwrap();
        assert_eq!(plain.allowance, ms(11));
    }

    #[test]
    fn infeasible_under_blocking_yields_none() {
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 20, ms(100), ms(29))
                .deadline(ms(30))
                .build(),
            TaskBuilder::new(2, 18, ms(250), ms(29)).build(),
        ]);
        let mut rm = ResourceModel::new();
        rm.add_section(TaskId(1), ResourceId(1), ms(1));
        rm.add_section(TaskId(2), ResourceId(1), ms(5));
        // B1 = 5: R1 = 34 > 30 → infeasible.
        assert_eq!(allowance_with_blocking(&set, &rm).unwrap(), None);
    }
}
