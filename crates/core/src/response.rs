//! Worst-case response-time (WCRT) analysis for fixed-priority preemptive
//! scheduling — the algorithm of the paper's Figure 2.
//!
//! The computation follows Liu & Layland (1973) generalised by Lehoczky
//! (1990) to *arbitrary deadlines* (`D_i > T_i` allowed): the response time
//! of a task is no longer necessarily maximal for the first job released at
//! the synchronous critical instant, so all jobs inside the **level-i busy
//! period** must be examined (the paper's Table 1 / Figure 1 example).
//!
//! For job `q = 0, 1, 2, …` of task `i`, the completion time measured from
//! the start of the busy period is the least fixed point of
//!
//! ```text
//! W_q(t) = (q + 1)·C_i + B_i + Σ_{j ∈ hp(i)} ⌈t / T_j⌉ · C_j
//! ```
//!
//! where `hp(i)` is the set of tasks with priority higher than or equal to
//! `τ_i`'s (excluding `τ_i` itself) and `B_i` an optional blocking term
//! (zero in the paper; see [`crate::blocking`] for the extension it lists as
//! future work). Job `q`'s response time is `R_q − q·T_i`; iteration stops
//! at the first job with `R_q ≤ (q+1)·T_i`, i.e. the first job that does not
//! push work into the next period, closing the busy period.
//!
//! All arithmetic is exact (integer nanoseconds): the fixed points and the
//! derived allowances of [`crate::allowance`] are bit-precise, unlike
//! floating-point formulations.

use crate::error::AnalysisError;
use crate::task::{TaskId, TaskSet};
use crate::time::Duration;

/// Guard on the total number of recurrence iterations per task analysis.
/// Generously above anything a sane task set needs; tripping it means the
/// set is pathological (utilization extremely close to 1 with huge period
/// spreads) and the result is reported as an error instead of hanging.
pub const DEFAULT_ITERATION_LIMIT: u64 = 4_000_000;

/// Response time of one job inside the level-i busy period.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct JobResponse {
    /// Job index within the busy period (0 = released at the critical
    /// instant).
    pub q: u64,
    /// Completion time `R_q`, measured from the start of the busy period.
    pub completion: Duration,
    /// Response time `R_q − q·T_i` of this job.
    pub response: Duration,
}

/// Full analysis outcome for one task.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TaskResponse {
    /// The analysed task.
    pub task: TaskId,
    /// Worst-case response time over all jobs of the busy period.
    pub wcrt: Duration,
    /// Index of the job attaining the worst case.
    pub worst_job: u64,
    /// Per-job detail (the series plotted in the paper's Figure 1).
    pub jobs: Vec<JobResponse>,
}

/// The one shared fixed-point engine. Both [`ResponseAnalysis`] (cold,
/// borrow-based) and [`crate::analyzer::Analyzer`] (memoized,
/// warm-started) delegate here, so the recurrence arithmetic exists in
/// exactly one place and the two paths cannot drift apart — the
/// bit-identical-results guarantee of the deprecated shims rests on it.
pub(crate) mod engine {
    use super::{AnalysisError, Duration, JobResponse, TaskResponse, TaskSet};

    /// Level-`rank` workload `C_i/T_i + Σ_{j ∈ hp} C_j/T_j`; strictly
    /// above 1 the busy period never closes.
    pub(crate) fn level_utilization(
        set: &TaskSet,
        costs: &[Duration],
        hp: &[usize],
        rank: usize,
    ) -> f64 {
        let own = costs[rank].as_nanos() as f64 / set.by_rank(rank).period.as_nanos() as f64;
        let interference: f64 = hp
            .iter()
            .map(|&j| costs[j].as_nanos() as f64 / set.by_rank(j).period.as_nanos() as f64)
            .sum();
        own + interference
    }

    /// Least fixed point of `W_q` for job `q` of `rank`, iterating from
    /// `seed` (any value at or below the fixed point is a valid start —
    /// `W_q` is monotone). When `abort_above` is set and an iterate
    /// exceeds it, that iterate is returned immediately: it is a lower
    /// bound on the true fixed point, which is all a deadline test
    /// needs.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn fixed_point(
        set: &TaskSet,
        costs: &[Duration],
        blocking_i: Duration,
        hp: &[usize],
        rank: usize,
        q: u64,
        seed: Duration,
        abort_above: Option<Duration>,
        budget: &mut u64,
        limit: u64,
    ) -> Result<Duration, AnalysisError> {
        let task = set.by_rank(rank);
        let base = costs[rank].saturating_mul(q as i64 + 1) + blocking_i;
        let mut r = seed.max(base);
        loop {
            if abort_above.is_some_and(|cap| r > cap) {
                return Ok(r);
            }
            if *budget == 0 {
                return Err(AnalysisError::IterationLimit {
                    task: task.id,
                    limit,
                });
            }
            *budget -= 1;
            let mut next = base;
            for &j in hp {
                let tj = set.by_rank(j);
                next = next.saturating_add(costs[j].saturating_mul(r.div_ceil(tj.period)));
            }
            if next == r {
                return Ok(r);
            }
            debug_assert!(next > r, "W_q must be monotone above the seed");
            r = next;
        }
    }

    /// Busy-period analysis of `rank` under `costs`: the paper's Figure 2
    /// routine. `seeds` warm-starts each job's fixed point from a
    /// previous solution (pass `&[]` for a cold start); seeding changes
    /// iteration counts, never the fixed points.
    pub(crate) fn solve_busy_period(
        set: &TaskSet,
        costs: &[Duration],
        blocking_i: Duration,
        hp: &[usize],
        rank: usize,
        seeds: &[Duration],
        limit: u64,
    ) -> Result<TaskResponse, AnalysisError> {
        solve_busy_period_bounded(set, costs, blocking_i, hp, rank, seeds, None, limit)
    }

    /// [`solve_busy_period`] with an early-abort bound for feasibility
    /// probes: as soon as some job's *response* provably exceeds
    /// `abort_above`, a truncated solution with `wcrt > abort_above` is
    /// returned instead of unrolling the rest of the busy period. Near
    /// the feasibility boundary (the allowance searches probe exactly
    /// there, and non-preemptive blocking inflates busy periods
    /// further) this turns a multi-million-job unroll into a handful of
    /// iterations. Feasible outcomes are never truncated, so any
    /// solution with `wcrt ≤ abort_above` is the exact one.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn solve_busy_period_bounded(
        set: &TaskSet,
        costs: &[Duration],
        blocking_i: Duration,
        hp: &[usize],
        rank: usize,
        seeds: &[Duration],
        abort_above: Option<Duration>,
        limit: u64,
    ) -> Result<TaskResponse, AnalysisError> {
        let task = set.by_rank(rank);
        if level_utilization(set, costs, hp, rank) > 1.0 {
            return Err(AnalysisError::Divergent { task: task.id });
        }
        let mut budget = limit;
        let mut jobs = Vec::new();
        let mut wcrt = Duration::ZERO;
        let mut worst_job = 0u64;
        let mut q: u64 = 0;
        let mut prev_completion = Duration::ZERO;
        loop {
            let warm = seeds.get(q as usize).copied().unwrap_or(Duration::ZERO);
            let seed = prev_completion.max(warm);
            // Translate the response cap into this job's completion cap.
            let abort_completion =
                abort_above.map(|cap| cap.saturating_add(task.period.saturating_mul(q as i64)));
            let completion = fixed_point(
                set,
                costs,
                blocking_i,
                hp,
                rank,
                q,
                seed,
                abort_completion,
                &mut budget,
                limit,
            )?;
            let response = completion - task.period.saturating_mul(q as i64);
            jobs.push(JobResponse {
                q,
                completion,
                response,
            });
            if response > wcrt {
                wcrt = response;
                worst_job = q;
            }
            if abort_above.is_some_and(|cap| response > cap) {
                break; // infeasible for the caller's test: stop unrolling
            }
            // Busy period closes at the first job finishing within its own
            // period window.
            if completion <= task.period.saturating_mul(q as i64 + 1) {
                break;
            }
            prev_completion = completion;
            q += 1;
        }
        Ok(TaskResponse {
            task: task.id,
            wcrt,
            worst_job,
            jobs,
        })
    }

    /// Length of the level-`rank` busy period: least fixed point of
    /// `L = B_i + Σ_{j ∈ hp ∪ {rank}} ⌈L/T_j⌉·C_j`.
    pub(crate) fn busy_period_length(
        set: &TaskSet,
        costs: &[Duration],
        blocking_i: Duration,
        hp: &[usize],
        rank: usize,
        limit: u64,
    ) -> Result<Duration, AnalysisError> {
        let task = set.by_rank(rank);
        if level_utilization(set, costs, hp, rank) > 1.0 {
            return Err(AnalysisError::Divergent { task: task.id });
        }
        let mut ranks = hp.to_vec();
        ranks.push(rank);
        let mut budget = limit;
        let mut l = costs[rank] + blocking_i;
        loop {
            if budget == 0 {
                return Err(AnalysisError::IterationLimit {
                    task: task.id,
                    limit,
                });
            }
            budget -= 1;
            let mut next = blocking_i;
            for &j in &ranks {
                let tj = set.by_rank(j);
                next = next.saturating_add(costs[j].saturating_mul(l.div_ceil(tj.period)));
            }
            if next == l {
                return Ok(l);
            }
            l = next;
        }
    }
}

/// Analysis configuration: effective costs and blocking can be overridden
/// without rebuilding the task set — this is what the allowance search of
/// [`crate::allowance`] exercises thousands of times.
#[derive(Clone, Debug)]
pub struct ResponseAnalysis<'a> {
    set: &'a TaskSet,
    costs: Vec<Duration>,
    blocking: Vec<Duration>,
    iteration_limit: u64,
}

impl<'a> ResponseAnalysis<'a> {
    /// Analysis of `set` with its declared costs and no blocking.
    pub fn new(set: &'a TaskSet) -> Self {
        ResponseAnalysis {
            costs: set.tasks().iter().map(|t| t.cost).collect(),
            blocking: vec![Duration::ZERO; set.len()],
            iteration_limit: DEFAULT_ITERATION_LIMIT,
            set,
        }
    }

    /// The task set under analysis.
    pub fn task_set(&self) -> &TaskSet {
        self.set
    }

    /// Override the effective cost of the task at `rank`.
    ///
    /// # Panics
    /// Panics if the override is not strictly positive.
    pub fn set_cost(&mut self, rank: usize, cost: Duration) {
        assert!(cost.is_positive(), "effective cost must be positive");
        self.costs[rank] = cost;
    }

    /// Add `delta` to the effective cost of every task — the uniform
    /// inflation explored by the equitable-allowance search.
    pub fn inflate_all(&mut self, delta: Duration) {
        for (rank, c) in self.costs.iter_mut().enumerate() {
            *c = self.set.by_rank(rank).cost + delta;
        }
    }

    /// Effective cost of the task at `rank`.
    pub fn cost(&self, rank: usize) -> Duration {
        self.costs[rank]
    }

    /// Set the blocking term `B_i` for the task at `rank` (priority-ceiling
    /// blocking from [`crate::blocking`]).
    pub fn set_blocking(&mut self, rank: usize, b: Duration) {
        assert!(!b.is_negative(), "blocking must be non-negative");
        self.blocking[rank] = b;
    }

    /// Replace the iteration guard (tests use small values to exercise the
    /// error path).
    pub fn set_iteration_limit(&mut self, limit: u64) {
        self.iteration_limit = limit;
    }

    /// Worst-case response time of the task at priority `rank` — the
    /// paper's Figure 2 `WCResponseTime` routine.
    ///
    /// # Errors
    /// [`AnalysisError::Divergent`] when the level-i workload exceeds the
    /// processor, [`AnalysisError::IterationLimit`] if the guard trips.
    pub fn wcrt(&self, rank: usize) -> Result<Duration, AnalysisError> {
        self.analyze(rank).map(|r| r.wcrt)
    }

    /// Full per-job analysis of the task at priority `rank`.
    pub fn analyze(&self, rank: usize) -> Result<TaskResponse, AnalysisError> {
        engine::solve_busy_period(
            self.set,
            &self.costs,
            self.blocking[rank],
            &self.set.hp_ranks(rank),
            rank,
            &[],
            self.iteration_limit,
        )
    }

    /// WCRTs of every task, in priority-rank order.
    pub fn wcrt_all(&self) -> Result<Vec<Duration>, AnalysisError> {
        (0..self.set.len()).map(|rank| self.wcrt(rank)).collect()
    }

    /// `true` iff every task's WCRT is at or below its deadline under the
    /// current effective costs.
    pub fn is_feasible(&self) -> Result<bool, AnalysisError> {
        for rank in 0..self.set.len() {
            match self.wcrt(rank) {
                Ok(w) => {
                    if w > self.set.by_rank(rank).deadline {
                        return Ok(false);
                    }
                }
                // A diverging task certainly misses its deadline.
                Err(AnalysisError::Divergent { .. }) => return Ok(false),
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Length of the level-i busy period: least fixed point of
    /// `L = Σ_{j ∈ hp(i) ∪ {i}} ⌈L/T_j⌉·C_j (+ B_i)`, i.e. how long the
    /// processor stays busy at priority ≥ `P_i` after a synchronous release.
    pub fn level_busy_period(&self, rank: usize) -> Result<Duration, AnalysisError> {
        engine::busy_period_length(
            self.set,
            &self.costs,
            self.blocking[rank],
            &self.set.hp_ranks(rank),
            rank,
            self.iteration_limit,
        )
    }
}

/// Convenience: WCRT of the task at `rank` with declared costs.
pub fn wcrt(set: &TaskSet, rank: usize) -> Result<Duration, AnalysisError> {
    ResponseAnalysis::new(set).wcrt(rank)
}

/// Convenience: WCRTs of all tasks with declared costs, in rank order.
pub fn wcrt_all(set: &TaskSet) -> Result<Vec<Duration>, AnalysisError> {
    ResponseAnalysis::new(set).wcrt_all()
}

/// Convenience: full per-job analysis (paper Figure 1 data).
pub fn analyze(set: &TaskSet, rank: usize) -> Result<TaskResponse, AnalysisError> {
    ResponseAnalysis::new(set).analyze(rank)
}

/// Classic single-job recurrence, valid only when `D_i ≤ T_i` for the task
/// under analysis (Joseph & Pandya / Audsley et al.): the least fixed point
/// of `R = C_i + B_i + Σ ⌈R/T_j⌉·C_j`.
///
/// Exposed separately because it is the textbook special case; the general
/// routine [`ResponseAnalysis::wcrt`] degenerates to it when the first job
/// closes the busy period, which unit tests verify.
pub fn wcrt_constrained(set: &TaskSet, rank: usize) -> Result<Duration, AnalysisError> {
    let task = set.by_rank(rank);
    assert!(
        task.is_constrained(),
        "wcrt_constrained requires D ≤ T for {}",
        task.id
    );
    let costs: Vec<Duration> = set.tasks().iter().map(|t| t.cost).collect();
    let hp = set.hp_ranks(rank);
    if engine::level_utilization(set, &costs, &hp, rank) > 1.0 {
        return Err(AnalysisError::Divergent { task: task.id });
    }
    let mut budget = DEFAULT_ITERATION_LIMIT;
    engine::fixed_point(
        set,
        &costs,
        Duration::ZERO,
        &hp,
        rank,
        0,
        Duration::ZERO,
        None,
        &mut budget,
        DEFAULT_ITERATION_LIMIT,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskBuilder;

    fn ms(v: i64) -> Duration {
        Duration::millis(v)
    }

    /// Paper Table 1: τ1 (P20, D6, T6, C3), τ2 (P15, D2, T4, C2).
    fn table1() -> TaskSet {
        TaskSet::from_specs(vec![
            TaskBuilder::new(1, 20, ms(6), ms(3))
                .deadline(ms(6))
                .build(),
            TaskBuilder::new(2, 15, ms(4), ms(2))
                .deadline(ms(2))
                .build(),
        ])
    }

    /// Paper Table 2: the evaluated 3-task system.
    fn table2() -> TaskSet {
        TaskSet::from_specs(vec![
            TaskBuilder::new(1, 20, ms(200), ms(29))
                .deadline(ms(70))
                .build(),
            TaskBuilder::new(2, 18, ms(250), ms(29))
                .deadline(ms(120))
                .build(),
            TaskBuilder::new(3, 16, ms(1500), ms(29))
                .deadline(ms(120))
                .build(),
        ])
    }

    #[test]
    fn table2_wcrt_matches_paper() {
        // Paper Table 2 column WCRT_i: 29, 58, 87 ms.
        let w = wcrt_all(&table2()).unwrap();
        assert_eq!(w, vec![ms(29), ms(58), ms(87)]);
    }

    #[test]
    fn table1_worst_case_is_not_the_first_job() {
        // The paper's Figure 1 point: for τ2 (D > T) the synchronous first
        // job is NOT the worst. Job responses are 5, 6, 4 ms; WCRT = 6 at
        // job q = 1.
        let set = table1();
        let r = analyze(&set, 1).unwrap();
        let responses: Vec<i64> = r.jobs.iter().map(|j| j.response.as_millis()).collect();
        assert_eq!(responses, vec![5, 6, 4]);
        assert_eq!(r.wcrt, ms(6));
        assert_eq!(r.worst_job, 1);
        // And the high-priority task is trivial.
        assert_eq!(wcrt(&set, 0).unwrap(), ms(3));
    }

    #[test]
    fn busy_period_of_table1_low_task() {
        // Level-2 busy period: fixed point of L = ceil(L/6)*3 + ceil(L/4)*2
        // = 12 ms (three τ2 jobs and two τ1 jobs fill [0,12)).
        let set = table1();
        let l = ResponseAnalysis::new(&set).level_busy_period(1).unwrap();
        assert_eq!(l, ms(12));
    }

    #[test]
    fn constrained_special_case_agrees_with_general() {
        let set = table2();
        for rank in 0..set.len() {
            assert_eq!(
                wcrt_constrained(&set, rank).unwrap(),
                wcrt(&set, rank).unwrap(),
                "rank {rank}"
            );
        }
    }

    #[test]
    fn divergence_detected() {
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 10, ms(10), ms(6)).build(),
            TaskBuilder::new(2, 5, ms(10), ms(5)).build(),
        ]);
        assert!(matches!(
            wcrt(&set, 1),
            Err(AnalysisError::Divergent { task: TaskId(2) })
        ));
        // The high-priority task alone is fine.
        assert_eq!(wcrt(&set, 0).unwrap(), ms(6));
        // And feasibility classifies the diverging set as infeasible
        // rather than erroring.
        assert!(!ResponseAnalysis::new(&set).is_feasible().unwrap());
    }

    #[test]
    fn exactly_full_utilization_converges() {
        // U = 1 exactly: busy period closes at the hyperperiod.
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 10, ms(4), ms(2)).build(),
            TaskBuilder::new(2, 5, ms(8), ms(4)).deadline(ms(8)).build(),
        ]);
        let w = wcrt(&set, 1).unwrap();
        assert_eq!(w, ms(8));
    }

    #[test]
    fn iteration_limit_trips() {
        let set = table2();
        let mut a = ResponseAnalysis::new(&set);
        a.set_iteration_limit(1);
        assert!(matches!(
            a.analyze(2),
            Err(AnalysisError::IterationLimit { limit: 1, .. })
        ));
    }

    #[test]
    fn cost_overrides_feed_through() {
        let set = table2();
        let mut a = ResponseAnalysis::new(&set);
        // Inflate every cost by the paper's equitable allowance (11 ms):
        // Table 3 expects WCRTs of 40 / 80 / 120 ms.
        a.inflate_all(ms(11));
        assert_eq!(a.wcrt_all().unwrap(), vec![ms(40), ms(80), ms(120)]);
        assert!(a.is_feasible().unwrap());
        // One more millisecond and τ3 blows its 120 ms deadline.
        a.inflate_all(ms(12));
        assert!(!a.is_feasible().unwrap());
    }

    #[test]
    fn single_cost_override() {
        let set = table2();
        let mut a = ResponseAnalysis::new(&set);
        // τ1 alone inflated by 33 ms (the paper's system allowance): τ3
        // completes exactly at its 120 ms deadline.
        a.set_cost(0, ms(29 + 33));
        assert_eq!(a.wcrt(2).unwrap(), ms(120));
        assert!(a.is_feasible().unwrap());
        a.set_cost(0, ms(29 + 34));
        assert!(!a.is_feasible().unwrap());
    }

    #[test]
    fn blocking_term_shifts_response() {
        let set = table2();
        let mut a = ResponseAnalysis::new(&set);
        a.set_blocking(0, ms(5));
        assert_eq!(a.wcrt(0).unwrap(), ms(34));
        // Blocking of a low-priority task does not affect higher ones.
        assert_eq!(a.wcrt(1).unwrap(), ms(58));
    }

    #[test]
    fn equal_priorities_interfere_both_ways() {
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 7, ms(10), ms(2)).build(),
            TaskBuilder::new(2, 7, ms(10), ms(3)).build(),
        ]);
        // Each sees the other as interference: R1 = 2+3, R2 = 3+2.
        assert_eq!(wcrt(&set, 0).unwrap(), ms(5));
        assert_eq!(wcrt(&set, 1).unwrap(), ms(5));
    }

    #[test]
    fn highest_priority_wcrt_is_its_cost() {
        let set = table2();
        assert_eq!(wcrt(&set, 0).unwrap(), set.by_rank(0).cost);
    }

    #[test]
    fn deep_busy_period_multi_job() {
        // τ2: T=10, D=30, C=7 under τ1: T=7, C=2. Level-2 utilization
        // 7/10 + 2/7 ≈ 0.986: a long busy period with several τ2 jobs.
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 9, ms(7), ms(2)).build(),
            TaskBuilder::new(2, 3, ms(10), ms(7))
                .deadline(ms(30))
                .build(),
        ]);
        let r = analyze(&set, 1).unwrap();
        // Busy period spans several jobs; every response must be consistent
        // (completion − q·T) and the reported worst must be the max.
        assert!(r.jobs.len() > 1, "expected a multi-job busy period");
        let max = r
            .jobs
            .iter()
            .map(|j| j.response)
            .fold(Duration::ZERO, Duration::max);
        assert_eq!(max, r.wcrt);
        for j in &r.jobs {
            assert_eq!(j.response, j.completion - ms(10) * (j.q as i64));
        }
    }
}
