//! Time representation used throughout the workspace.
//!
//! The paper measures with nanosecond precision (RDTSC through JNI) while
//! all task parameters in its tables are expressed in milliseconds. We keep
//! a single signed 64-bit nanosecond representation for both instants and
//! spans, which covers ±292 years — far beyond any hyperperiod we simulate —
//! while making millisecond-level literals exact.
//!
//! Two newtypes are provided:
//!
//! * [`Duration`] — a relative span (task cost, period, deadline, allowance);
//! * [`Instant`] — an absolute point on the virtual timeline.
//!
//! Arithmetic is checked in debug builds (standard Rust overflow semantics)
//! and the types deliberately do not implement `Mul<Instant>`-style
//! operations that have no physical meaning.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Rem, Sub, SubAssign};

/// Nanoseconds per microsecond.
pub const NANOS_PER_MICRO: i64 = 1_000;
/// Nanoseconds per millisecond.
pub const NANOS_PER_MILLI: i64 = 1_000_000;
/// Nanoseconds per second.
pub const NANOS_PER_SEC: i64 = 1_000_000_000;

/// A relative span of virtual time, in nanoseconds.
///
/// `Duration` is signed: analysis code subtracts spans (e.g. slack =
/// deadline − response time) and negative slack is meaningful ("by how much
/// did we miss").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(i64);

impl Duration {
    /// The zero-length span.
    pub const ZERO: Duration = Duration(0);
    /// One nanosecond, the representation's resolution.
    pub const NANO: Duration = Duration(1);
    /// Largest representable span.
    pub const MAX: Duration = Duration(i64::MAX);

    /// Span from raw nanoseconds.
    #[inline]
    pub const fn nanos(ns: i64) -> Self {
        Duration(ns)
    }

    /// Span from microseconds.
    #[inline]
    pub const fn micros(us: i64) -> Self {
        Duration(us * NANOS_PER_MICRO)
    }

    /// Span from milliseconds (the unit of every table in the paper).
    #[inline]
    pub const fn millis(ms: i64) -> Self {
        Duration(ms * NANOS_PER_MILLI)
    }

    /// Span from whole seconds.
    #[inline]
    pub const fn secs(s: i64) -> Self {
        Duration(s * NANOS_PER_SEC)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> i64 {
        self.0
    }

    /// Whole milliseconds (truncating), convenient when matching the paper's
    /// millisecond tables.
    #[inline]
    pub const fn as_millis(self) -> i64 {
        self.0 / NANOS_PER_MILLI
    }

    /// Span as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Span as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// `true` iff the span is exactly zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `true` iff the span is strictly negative.
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// `true` iff the span is strictly positive.
    #[inline]
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// Checked addition, `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: Duration) -> Option<Duration> {
        self.0.checked_add(rhs.0).map(Duration)
    }

    /// Checked subtraction, `None` on overflow.
    #[inline]
    pub fn checked_sub(self, rhs: Duration) -> Option<Duration> {
        self.0.checked_sub(rhs.0).map(Duration)
    }

    /// Checked multiplication by a scalar, `None` on overflow.
    #[inline]
    pub fn checked_mul(self, k: i64) -> Option<Duration> {
        self.0.checked_mul(k).map(Duration)
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }

    /// Saturating multiplication by a scalar.
    #[inline]
    pub fn saturating_mul(self, k: i64) -> Duration {
        Duration(self.0.saturating_mul(k))
    }

    /// `⌈self / quantum⌉ · quantum` — round **up** to a multiple of
    /// `quantum`. This is how jRate's `PeriodicTimer` treats first-release
    /// values (quantum 10 ms), the artifact behind the 1/2/3 ms detector
    /// delays of the paper's Figure 4.
    ///
    /// # Panics
    /// Panics if `quantum` is not strictly positive or `self` is negative.
    #[must_use]
    pub fn round_up_to(self, quantum: Duration) -> Duration {
        assert!(quantum.0 > 0, "quantum must be positive");
        assert!(self.0 >= 0, "cannot quantize a negative span");
        let q = quantum.0;
        Duration((self.0 + q - 1) / q * q)
    }

    /// Round **down** to a multiple of `quantum`.
    ///
    /// # Panics
    /// Panics if `quantum` is not strictly positive or `self` is negative.
    #[must_use]
    pub fn round_down_to(self, quantum: Duration) -> Duration {
        assert!(quantum.0 > 0, "quantum must be positive");
        assert!(self.0 >= 0, "cannot quantize a negative span");
        Duration(self.0 / quantum.0 * quantum.0)
    }

    /// Number of whole periods of length `period` that fit in `self`,
    /// rounding up: `⌈self / period⌉`. This is the interference term of the
    /// response-time recurrence.
    ///
    /// # Panics
    /// Panics if `period` is not strictly positive or `self` is negative.
    pub fn div_ceil(self, period: Duration) -> i64 {
        assert!(period.0 > 0, "period must be positive");
        assert!(self.0 >= 0, "div_ceil of a negative span");
        (self.0 + period.0 - 1) / period.0
    }

    /// Largest of two spans.
    #[inline]
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }

    /// Smallest of two spans.
    #[inline]
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }

    /// Clamp into `[lo, hi]`.
    #[inline]
    pub fn clamp(self, lo: Duration, hi: Duration) -> Duration {
        Duration(self.0.clamp(lo.0, hi.0))
    }

    /// Absolute value of the span.
    #[inline]
    pub fn abs(self) -> Duration {
        Duration(self.0.abs())
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Neg for Duration {
    type Output = Duration;
    #[inline]
    fn neg(self) -> Duration {
        Duration(-self.0)
    }
}

impl Mul<i64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, k: i64) -> Duration {
        Duration(self.0 * k)
    }
}

impl Mul<Duration> for i64 {
    type Output = Duration;
    #[inline]
    fn mul(self, d: Duration) -> Duration {
        Duration(self * d.0)
    }
}

impl Div<i64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, k: i64) -> Duration {
        Duration(self.0 / k)
    }
}

impl Div<Duration> for Duration {
    type Output = i64;
    /// Truncating ratio of two spans.
    #[inline]
    fn div(self, rhs: Duration) -> i64 {
        self.0 / rhs.0
    }
}

impl Rem<Duration> for Duration {
    type Output = Duration;
    #[inline]
    fn rem(self, rhs: Duration) -> Duration {
        Duration(self.0 % rhs.0)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, Add::add)
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for Duration {
    /// Human-oriented rendering: picks ms when the value is an exact number
    /// of milliseconds (the common case for paper workloads), otherwise
    /// prints fractional milliseconds.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 % NANOS_PER_MILLI == 0 {
            write!(f, "{}ms", self.0 / NANOS_PER_MILLI)
        } else {
            write!(f, "{:.6}ms", self.as_millis_f64())
        }
    }
}

impl std::str::FromStr for Duration {
    type Err = String;

    /// Parse a duration token: an integer with an optional `ns`/`us`/
    /// `ms`/`s` suffix; a bare integer means milliseconds (the unit of
    /// every table in the paper). This is the single duration grammar
    /// shared by task files, campaign specs and query batches
    /// (`rtft_taskgen::parser::parse_duration` delegates here).
    fn from_str(token: &str) -> Result<Self, Self::Err> {
        let (digits, mult) = if let Some(v) = token.strip_suffix("ns") {
            (v, 1i64)
        } else if let Some(v) = token.strip_suffix("us") {
            (v, NANOS_PER_MICRO)
        } else if let Some(v) = token.strip_suffix("ms") {
            (v, NANOS_PER_MILLI)
        } else if let Some(v) = token.strip_suffix('s') {
            (v, NANOS_PER_SEC)
        } else {
            (token, NANOS_PER_MILLI)
        };
        let n: i64 = digits
            .parse()
            .map_err(|e| format!("bad duration `{token}`: {e}"))?;
        n.checked_mul(mult)
            .map(Duration::nanos)
            .ok_or_else(|| format!("duration `{token}` overflows"))
    }
}

/// An absolute instant on the virtual timeline, in nanoseconds since the
/// simulation epoch (system start, the paper's `t = 0`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Instant(i64);

impl Instant {
    /// The simulation epoch.
    pub const EPOCH: Instant = Instant(0);
    /// Largest representable instant (used as "never" sentinel).
    pub const FAR_FUTURE: Instant = Instant(i64::MAX);

    /// Instant from raw nanoseconds since the epoch.
    #[inline]
    pub const fn from_nanos(ns: i64) -> Self {
        Instant(ns)
    }

    /// Instant from milliseconds since the epoch.
    #[inline]
    pub const fn from_millis(ms: i64) -> Self {
        Instant(ms * NANOS_PER_MILLI)
    }

    /// Nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> i64 {
        self.0
    }

    /// Whole milliseconds since the epoch (truncating).
    #[inline]
    pub const fn as_millis(self) -> i64 {
        self.0 / NANOS_PER_MILLI
    }

    /// Fractional milliseconds since the epoch.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Span from the epoch to this instant.
    #[inline]
    pub const fn since_epoch(self) -> Duration {
        Duration(self.0)
    }

    /// Signed span from `earlier` to `self`.
    #[inline]
    pub fn duration_since(self, earlier: Instant) -> Duration {
        Duration(self.0 - earlier.0)
    }

    /// Checked addition of a span.
    #[inline]
    pub fn checked_add(self, d: Duration) -> Option<Instant> {
        self.0.checked_add(d.as_nanos()).map(Instant)
    }

    /// Later of two instants.
    #[inline]
    pub fn max(self, other: Instant) -> Instant {
        Instant(self.0.max(other.0))
    }

    /// Earlier of two instants.
    #[inline]
    pub fn min(self, other: Instant) -> Instant {
        Instant(self.0.min(other.0))
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    #[inline]
    fn add(self, d: Duration) -> Instant {
        Instant(self.0 + d.as_nanos())
    }
}

impl AddAssign<Duration> for Instant {
    #[inline]
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.as_nanos();
    }
}

impl Sub<Duration> for Instant {
    type Output = Instant;
    #[inline]
    fn sub(self, d: Duration) -> Instant {
        Instant(self.0 - d.as_nanos())
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Instant) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl fmt::Debug for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}ns", self.0)
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 % NANOS_PER_MILLI == 0 {
            write!(f, "t={}ms", self.0 / NANOS_PER_MILLI)
        } else {
            write!(f, "t={:.6}ms", self.as_millis_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Duration::millis(1), Duration::nanos(NANOS_PER_MILLI));
        assert_eq!(Duration::micros(1_000), Duration::millis(1));
        assert_eq!(Duration::secs(1), Duration::millis(1_000));
        assert_eq!(Instant::from_millis(3).as_nanos(), 3 * NANOS_PER_MILLI);
    }

    #[test]
    fn arithmetic_basics() {
        let a = Duration::millis(29);
        let b = Duration::millis(11);
        assert_eq!(a + b, Duration::millis(40));
        assert_eq!(a - b, Duration::millis(18));
        assert_eq!(a * 3, Duration::millis(87));
        assert_eq!(3 * a, Duration::millis(87));
        assert_eq!(Duration::millis(90) / Duration::millis(29), 3);
        assert_eq!((b - a).abs(), Duration::millis(18));
        assert!((b - a).is_negative());
    }

    #[test]
    fn instant_duration_interplay() {
        let t0 = Instant::from_millis(1000);
        let t1 = t0 + Duration::millis(29);
        assert_eq!(t1.as_millis(), 1029);
        assert_eq!(t1 - t0, Duration::millis(29));
        assert_eq!(t1.duration_since(t0), Duration::millis(29));
        assert_eq!(t0.duration_since(t1), -Duration::millis(29));
    }

    #[test]
    fn round_up_matches_jrate_quantization() {
        // The paper's Figure 4 artifact: WCRTs of 29/58/87 ms quantized to a
        // 10 ms timer grid give releases at 30/60/90 ms.
        let q = Duration::millis(10);
        assert_eq!(Duration::millis(29).round_up_to(q), Duration::millis(30));
        assert_eq!(Duration::millis(58).round_up_to(q), Duration::millis(60));
        assert_eq!(Duration::millis(87).round_up_to(q), Duration::millis(90));
        // Exact multiples are unchanged: the Figure 6 stop offset of 40 ms.
        assert_eq!(Duration::millis(40).round_up_to(q), Duration::millis(40));
        assert_eq!(Duration::ZERO.round_up_to(q), Duration::ZERO);
    }

    #[test]
    fn round_down() {
        let q = Duration::millis(10);
        assert_eq!(Duration::millis(29).round_down_to(q), Duration::millis(20));
        assert_eq!(Duration::millis(30).round_down_to(q), Duration::millis(30));
    }

    #[test]
    fn div_ceil_interference_term() {
        let t = Duration::millis(29);
        assert_eq!(t.div_ceil(Duration::millis(200)), 1);
        assert_eq!(Duration::millis(200).div_ceil(Duration::millis(200)), 1);
        assert_eq!(Duration::millis(201).div_ceil(Duration::millis(200)), 2);
        assert_eq!(Duration::ZERO.div_ceil(Duration::millis(200)), 0);
    }

    #[test]
    #[should_panic(expected = "quantum must be positive")]
    fn round_up_rejects_zero_quantum() {
        let _ = Duration::millis(1).round_up_to(Duration::ZERO);
    }

    #[test]
    fn checked_ops() {
        assert_eq!(Duration::MAX.checked_add(Duration::NANO), None);
        assert_eq!(
            Duration::millis(1).checked_add(Duration::millis(1)),
            Some(Duration::millis(2))
        );
        assert_eq!(Duration::MAX.checked_mul(2), None);
        assert_eq!(Instant::FAR_FUTURE.checked_add(Duration::NANO), None);
        assert_eq!(
            Duration::MAX.saturating_add(Duration::millis(1)),
            Duration::MAX
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(Duration::millis(29).to_string(), "29ms");
        assert_eq!(Duration::nanos(1_500_000).to_string(), "1.500000ms");
        assert_eq!(Instant::from_millis(1020).to_string(), "t=1020ms");
    }

    #[test]
    fn sum_and_ordering() {
        let total: Duration = [29, 29, 29].iter().map(|&m| Duration::millis(m)).sum();
        assert_eq!(total, Duration::millis(87));
        assert!(Duration::millis(1) < Duration::millis(2));
        assert_eq!(
            Duration::millis(5).clamp(Duration::ZERO, Duration::millis(3)),
            Duration::millis(3)
        );
    }
}
