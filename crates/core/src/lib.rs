//! # rtft-core — feasibility analysis and allowance computation
//!
//! Analytical core of the `rtft` workspace, a Rust reproduction of
//! Masson & Midonnet, *"Fault Tolerance with Real-Time Java"* (WPDRTS 2006).
//!
//! The paper builds fault tolerance for fixed-priority preemptive periodic
//! systems out of the numbers that admission control already computes:
//!
//! 1. admission control ([`feasibility`]) runs the processor-load test
//!    ([`utilization`]) and the exact worst-case response-time analysis
//!    ([`response`], the paper's Figure 2 algorithm, valid for arbitrary
//!    deadlines);
//! 2. a job overrunning its task's WCRT has necessarily overrun its
//!    declared cost — a **temporal fault** — so the WCRTs double as fault
//!    detector thresholds (realized in `rtft-ft`);
//! 3. the slack the analysis proves unused is redistributed as an
//!    **allowance** ([`allowance`]): equitably, or wholly to the first
//!    faulty task.
//!
//! Extensions the paper lists as future work are implemented alongside:
//! blocking terms under priority-ceiling resource sharing ([`blocking`]),
//! parameter sensitivity ([`sensitivity`]), and aperiodic servers
//! ([`server`]).
//!
//! Everything here is pure, deterministic, exact integer-nanosecond
//! computation with no dependency on the simulator; the `rtft-sim` crate
//! provides the executable counterpart used to validate these numbers
//! experimentally.
//!
//! ## Quick example
//!
//! ```
//! use rtft_core::prelude::*;
//!
//! // The paper's Table 2 system.
//! let set = TaskSet::from_specs(vec![
//!     TaskBuilder::new(1, 20, Duration::millis(200), Duration::millis(29))
//!         .deadline(Duration::millis(70)).build(),
//!     TaskBuilder::new(2, 18, Duration::millis(250), Duration::millis(29))
//!         .deadline(Duration::millis(120)).build(),
//!     TaskBuilder::new(3, 16, Duration::millis(1500), Duration::millis(29))
//!         .deadline(Duration::millis(120)).build(),
//! ]);
//!
//! let report = analyze_set(&set).unwrap();
//! assert!(report.is_feasible());
//!
//! let wcrt: Vec<i64> = report.per_task.iter()
//!     .map(|t| t.wcrt.unwrap().as_millis()).collect();
//! assert_eq!(wcrt, vec![29, 58, 87]);           // paper Table 2
//!
//! let eq = equitable_allowance(&set).unwrap().unwrap();
//! assert_eq!(eq.allowance, Duration::millis(11)); // paper Table 2, A_i
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod allowance;
pub mod blocking;
pub mod error;
pub mod feasibility;
pub mod jitter;
pub mod priority;
pub mod response;
pub mod sensitivity;
pub mod server;
pub mod task;
pub mod time;
pub mod utilization;

/// One-stop imports for the common API surface.
pub mod prelude {
    pub use crate::allowance::{
        equitable_allowance, max_single_overrun, system_allowance, EquitableAllowance,
        SlackPolicy, SystemAllowance,
    };
    pub use crate::error::{AnalysisError, ModelError};
    pub use crate::feasibility::{
        analyze_set, Admission, AdmissionController, FeasibilityReport,
    };
    pub use crate::response::{analyze, wcrt, wcrt_all, ResponseAnalysis, TaskResponse};
    pub use crate::task::{Priority, TaskBuilder, TaskId, TaskSet, TaskSpec};
    pub use crate::time::{Duration, Instant};
    pub use crate::utilization::{load_test, LoadVerdict};
}
