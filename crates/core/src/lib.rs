//! # rtft-core — feasibility analysis and allowance computation
//!
//! Analytical core of the `rtft` workspace, a Rust reproduction of
//! Masson & Midonnet, *"Fault Tolerance with Real-Time Java"* (WPDRTS 2006).
//!
//! The paper builds fault tolerance for fixed-priority preemptive periodic
//! systems out of the numbers that admission control already computes:
//!
//! 1. admission control ([`feasibility`]) runs the processor-load test
//!    ([`utilization`]) and the exact worst-case response-time analysis
//!    ([`response`], the paper's Figure 2 algorithm, valid for arbitrary
//!    deadlines);
//! 2. a job overrunning its task's WCRT has necessarily overrun its
//!    declared cost — a **temporal fault** — so the WCRTs double as fault
//!    detector thresholds (realized in `rtft-ft`);
//! 3. the slack the analysis proves unused is redistributed as an
//!    **allowance** ([`allowance`]): equitably, or wholly to the first
//!    faulty task.
//!
//! Extensions the paper lists as future work are implemented alongside:
//! blocking terms under priority-ceiling resource sharing ([`blocking`]),
//! parameter sensitivity ([`sensitivity`]), and aperiodic servers
//! ([`server`]).
//!
//! Everything here is pure, deterministic, exact integer-nanosecond
//! computation with no dependency on the simulator; the `rtft-sim` crate
//! provides the executable counterpart used to validate these numbers
//! experimentally.
//!
//! ## Quick example — the `Analyzer` session
//!
//! All of the above is served by **one incremental session**,
//! [`analyzer::Analyzer`]: WCRTs, busy periods and the load test are
//! computed once and memoized, single-task perturbations revalidate only
//! the affected tasks, and the allowance/sensitivity binary searches
//! warm-start the response-time fixed point instead of re-running it
//! from scratch per probe.
//!
//! ```
//! use rtft_core::prelude::*;
//!
//! // The paper's Table 2 system.
//! let set = TaskSet::from_specs(vec![
//!     TaskBuilder::new(1, 20, Duration::millis(200), Duration::millis(29))
//!         .deadline(Duration::millis(70)).build(),
//!     TaskBuilder::new(2, 18, Duration::millis(250), Duration::millis(29))
//!         .deadline(Duration::millis(120)).build(),
//!     TaskBuilder::new(3, 16, Duration::millis(1500), Duration::millis(29))
//!         .deadline(Duration::millis(120)).build(),
//! ]);
//!
//! let mut session = Analyzer::new(&set);
//!
//! // Admission control: the load test plus exact WCRTs (paper Table 2).
//! let report = session.report().unwrap();
//! assert!(report.is_feasible());
//! let wcrt: Vec<i64> = report.per_task.iter()
//!     .map(|t| t.wcrt.unwrap().as_millis()).collect();
//! assert_eq!(wcrt, vec![29, 58, 87]);
//!
//! // The allowance searches reuse the session's cached analysis.
//! let eq = session.equitable_allowance().unwrap().unwrap();
//! assert_eq!(eq.allowance, Duration::millis(11)); // paper Table 2, A_i
//! let sa = session.system_allowance().unwrap().unwrap();
//! assert_eq!(sa.max_overrun[0], Duration::millis(33)); // paper §6.5
//!
//! // Online perturbation: inflate τ1 and revalidate incrementally —
//! // only τ1's dependants are recomputed, warm-started.
//! session.set_cost(0, Duration::millis(29 + 33));
//! assert!(session.is_feasible().unwrap());
//! session.set_cost(0, Duration::millis(29 + 34));
//! assert!(!session.is_feasible().unwrap());
//! ```
//!
//! Composed options (release jitter, priority-ceiling blocking, polling
//! servers, slack policy) go through [`analyzer::AnalyzerBuilder`]. The
//! deprecated one-shot free functions of [`feasibility`], [`allowance`],
//! [`jitter`] and [`sensitivity`] have completed their deprecation cycle
//! and are gone; every caller holds a session.
//!
//! ## The query plane
//!
//! [`query`] serializes "which system, which question" once for every
//! layer: a [`query::SystemSpec`] (task set + policy + cores/alloc +
//! fault plan + platform) plus [`query::Query`] values answered by
//! typed [`query::Response`]s. `rtft-part`'s `Workbench` executes them,
//! dispatching to a uniprocessor or partitioned session automatically;
//! `rtft query` serves a batch from a file or stdin.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod allowance;
pub mod analyzer;
pub mod blocking;
pub mod diag;
pub mod edf;
pub mod error;
pub mod feasibility;
pub mod jitter;
pub mod policy;
pub mod priority;
pub mod query;
pub mod response;
pub mod sensitivity;
pub mod server;
pub mod task;
pub mod time;
pub mod utilization;

/// One-stop imports for the common API surface.
pub mod prelude {
    pub use crate::allowance::{EquitableAllowance, SlackPolicy, SystemAllowance};
    pub use crate::analyzer::{Analyzer, AnalyzerBuilder};
    pub use crate::diag::{lint_batch, lint_system, Diagnostic, Severity};
    pub use crate::error::{AnalysisError, ModelError};
    pub use crate::feasibility::{Admission, AdmissionController, FeasibilityReport};
    pub use crate::policy::PolicyKind;
    pub use crate::query::{Query, Response, SystemSpec};
    pub use crate::response::{analyze, wcrt, wcrt_all, ResponseAnalysis, TaskResponse};
    pub use crate::task::{Priority, TaskBuilder, TaskId, TaskSet, TaskSpec};
    pub use crate::time::{Duration, Instant};
    pub use crate::utilization::{load_test, LoadVerdict};
}
