//! Periodic task model.
//!
//! A task `τ_i` carries the four parameters of the paper's Section 2 —
//! cost `C_i`, relative deadline `D_i`, period `T_i`, priority `P_i` —
//! plus a release offset (phase) used to reproduce the evaluation scenarios
//! (the paper's figures show τ3 activating inside the observation window,
//! which requires a non-zero phase; see DESIGN.md §2).

use crate::error::ModelError;
use crate::time::Duration;
use std::fmt;

/// Stable identifier of a task inside a [`TaskSet`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TaskId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

/// Fixed scheduling priority. **Higher value = more urgent**, matching the
/// paper's tables (τ1 has `P = 20`, the strongest priority) and the RTSJ
/// `PriorityParameters` convention.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Priority(pub i32);

impl Priority {
    /// Smallest priority usable by application tasks.
    pub const MIN: Priority = Priority(i32::MIN);
    /// Largest priority.
    pub const MAX: Priority = Priority(i32::MAX);
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Static description of one periodic task.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TaskSpec {
    /// Identifier, unique within a [`TaskSet`].
    pub id: TaskId,
    /// Human-readable name (defaults to `τ<id>`).
    pub name: String,
    /// Fixed priority, higher = more urgent.
    pub priority: Priority,
    /// Period `T_i` between successive activations. Must be positive.
    pub period: Duration,
    /// Relative deadline `D_i`, measured from each activation. May exceed
    /// the period (the general case analysed by Lehoczky and by the paper's
    /// Figure 2 algorithm).
    pub deadline: Duration,
    /// Worst-case execution cost `C_i` declared at admission. Must be
    /// positive and is the value the task may *violate* at run time —
    /// that violation is precisely the paper's notion of a fault.
    pub cost: Duration,
    /// Release offset (phase) of the first activation.
    pub offset: Duration,
}

impl TaskSpec {
    /// Utilization `C_i / T_i` of this task alone.
    pub fn utilization(&self) -> f64 {
        self.cost.as_nanos() as f64 / self.period.as_nanos() as f64
    }

    /// `true` iff the deadline does not exceed the period (the "constrained
    /// deadline" special case where the synchronous release is the critical
    /// instant and the single-job recurrence suffices).
    pub fn is_constrained(&self) -> bool {
        self.deadline <= self.period
    }
}

impl fmt::Display for TaskSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, T={}, D={}, C={}, O={})",
            self.name, self.priority, self.period, self.deadline, self.cost, self.offset
        )
    }
}

/// Builder for a [`TaskSpec`]; only the periodic parameters are mandatory.
#[derive(Clone, Debug)]
pub struct TaskBuilder {
    id: TaskId,
    name: Option<String>,
    priority: Priority,
    period: Duration,
    deadline: Option<Duration>,
    cost: Duration,
    offset: Duration,
}

impl TaskBuilder {
    /// Start building a task with the mandatory parameters. The deadline
    /// defaults to the period (implicit deadline) and the offset to zero.
    pub fn new(id: u32, priority: i32, period: Duration, cost: Duration) -> Self {
        TaskBuilder {
            id: TaskId(id),
            name: None,
            priority: Priority(priority),
            period,
            deadline: None,
            cost,
            offset: Duration::ZERO,
        }
    }

    /// Set a human-readable name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Set a relative deadline different from the period.
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Set the release offset of the first activation.
    pub fn offset(mut self, o: Duration) -> Self {
        self.offset = o;
        self
    }

    /// Finish building.
    pub fn build(self) -> TaskSpec {
        TaskSpec {
            name: self.name.unwrap_or_else(|| format!("τ{}", self.id.0)),
            id: self.id,
            priority: self.priority,
            period: self.period,
            deadline: self.deadline.unwrap_or(self.period),
            cost: self.cost,
            offset: self.offset,
        }
    }
}

/// An immutable, validated set of periodic tasks.
///
/// Internally tasks are stored **sorted by decreasing priority** (ties
/// broken by ascending id, a deterministic FIFO-among-equals convention
/// shared with the simulator), so analysis code can index tasks by *rank*:
/// rank 0 is the most urgent task and `hp(i)` is simply `0..i` plus any
/// equal-priority peers.
#[derive(Clone, PartialEq, Debug)]
pub struct TaskSet {
    tasks: Vec<TaskSpec>,
}

impl TaskSet {
    /// Validate and build a task set. Tasks are re-sorted by decreasing
    /// priority internally.
    ///
    /// # Errors
    /// * [`ModelError::Empty`] for an empty set;
    /// * [`ModelError::DuplicateId`] if two tasks share an id;
    /// * [`ModelError::InvalidParameter`] for non-positive periods/costs or
    ///   negative deadlines/offsets.
    pub fn new(mut tasks: Vec<TaskSpec>) -> Result<Self, ModelError> {
        if tasks.is_empty() {
            return Err(ModelError::Empty);
        }
        for t in &tasks {
            if !t.period.is_positive() {
                return Err(ModelError::InvalidParameter {
                    task: t.id,
                    what: "period must be positive",
                });
            }
            if !t.cost.is_positive() {
                return Err(ModelError::InvalidParameter {
                    task: t.id,
                    what: "cost must be positive",
                });
            }
            if !t.deadline.is_positive() {
                return Err(ModelError::InvalidParameter {
                    task: t.id,
                    what: "deadline must be positive",
                });
            }
            if t.offset.is_negative() {
                return Err(ModelError::InvalidParameter {
                    task: t.id,
                    what: "offset must be non-negative",
                });
            }
        }
        let mut ids: Vec<TaskId> = tasks.iter().map(|t| t.id).collect();
        ids.sort_unstable();
        if let Some(w) = ids.windows(2).find(|w| w[0] == w[1]) {
            return Err(ModelError::DuplicateId(w[0]));
        }
        tasks.sort_by(|a, b| b.priority.cmp(&a.priority).then(a.id.cmp(&b.id)));
        Ok(TaskSet { tasks })
    }

    /// Convenience constructor that panics on invalid input; intended for
    /// tests and fixed example systems.
    pub fn from_specs(tasks: Vec<TaskSpec>) -> Self {
        TaskSet::new(tasks).expect("invalid task set")
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` iff the set has no tasks (never true for a validated set).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Tasks in decreasing-priority order.
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// Task at a given priority rank (0 = most urgent).
    pub fn by_rank(&self, rank: usize) -> &TaskSpec {
        &self.tasks[rank]
    }

    /// Find a task by id.
    pub fn by_id(&self, id: TaskId) -> Option<&TaskSpec> {
        self.tasks.iter().find(|t| t.id == id)
    }

    /// Priority rank of a task id (0 = most urgent).
    pub fn rank_of(&self, id: TaskId) -> Option<usize> {
        self.tasks.iter().position(|t| t.id == id)
    }

    /// Ranks of the tasks with priority **higher than or equal to** the
    /// task at `rank` (excluding itself) — the `HP(S)` set of the paper's
    /// Figure 2 algorithm.
    pub fn hp_ranks(&self, rank: usize) -> Vec<usize> {
        let p = self.tasks[rank].priority;
        (0..self.tasks.len())
            .filter(|&j| j != rank && self.tasks[j].priority >= p)
            .collect()
    }

    /// Ranks of tasks with priority strictly lower than the task at `rank`.
    pub fn lp_ranks(&self, rank: usize) -> Vec<usize> {
        let p = self.tasks[rank].priority;
        (0..self.tasks.len())
            .filter(|&j| self.tasks[j].priority < p)
            .collect()
    }

    /// Total utilization `U = Σ C_i/T_i`.
    pub fn utilization(&self) -> f64 {
        self.tasks.iter().map(TaskSpec::utilization).sum()
    }

    /// Hyperperiod (LCM of the periods). Saturates at `Duration::MAX` if the
    /// LCM overflows, which analysis callers treat as "too long to unroll".
    pub fn hyperperiod(&self) -> Duration {
        fn gcd(a: i64, b: i64) -> i64 {
            if b == 0 {
                a
            } else {
                gcd(b, a % b)
            }
        }
        let mut l: i64 = 1;
        for t in &self.tasks {
            let p = t.period.as_nanos();
            let g = gcd(l, p);
            match (l / g).checked_mul(p) {
                Some(v) => l = v,
                None => return Duration::MAX,
            }
        }
        Duration::nanos(l)
    }

    /// Largest relative deadline in the set.
    pub fn max_deadline(&self) -> Duration {
        self.tasks
            .iter()
            .map(|t| t.deadline)
            .fold(Duration::ZERO, Duration::max)
    }

    /// Latest first release among the tasks.
    pub fn max_offset(&self) -> Duration {
        self.tasks
            .iter()
            .map(|t| t.offset)
            .fold(Duration::ZERO, Duration::max)
    }

    /// `true` iff every task has `D_i ≤ T_i`.
    pub fn all_constrained(&self) -> bool {
        self.tasks.iter().all(TaskSpec::is_constrained)
    }

    /// `true` iff every first release is at the epoch (synchronous set).
    pub fn is_synchronous(&self) -> bool {
        self.tasks.iter().all(|t| t.offset.is_zero())
    }

    /// A copy of this set with one task replaced (matched by id).
    ///
    /// # Panics
    /// Panics if the id is not present.
    pub fn with_replaced(&self, spec: TaskSpec) -> TaskSet {
        let mut tasks = self.tasks.clone();
        let rank = self
            .rank_of(spec.id)
            .expect("with_replaced: unknown task id");
        tasks[rank] = spec;
        TaskSet::from_specs(tasks)
    }

    /// A copy of this set with an extra task. Fails like [`TaskSet::new`].
    pub fn with_added(&self, spec: TaskSpec) -> Result<TaskSet, ModelError> {
        let mut tasks = self.tasks.clone();
        tasks.push(spec);
        TaskSet::new(tasks)
    }

    /// A copy of this set without the given task.
    ///
    /// # Errors
    /// [`ModelError::Empty`] if it was the last task, or
    /// [`ModelError::UnknownTask`] if the id is absent.
    pub fn with_removed(&self, id: TaskId) -> Result<TaskSet, ModelError> {
        if self.by_id(id).is_none() {
            return Err(ModelError::UnknownTask(id));
        }
        let tasks: Vec<TaskSpec> = self.tasks.iter().filter(|t| t.id != id).cloned().collect();
        TaskSet::new(tasks)
    }
}

impl fmt::Display for TaskSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<8} {:>6} {:>10} {:>10} {:>10}",
            "task", "P", "T", "D", "C"
        )?;
        for t in &self.tasks {
            writeln!(
                f,
                "{:<8} {:>6} {:>10} {:>10} {:>10}",
                t.name,
                t.priority.0,
                t.period.to_string(),
                t.deadline.to_string(),
                t.cost.to_string()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: i64) -> Duration {
        Duration::millis(v)
    }

    fn three_tasks() -> TaskSet {
        TaskSet::from_specs(vec![
            TaskBuilder::new(1, 20, ms(200), ms(29))
                .deadline(ms(70))
                .build(),
            TaskBuilder::new(2, 18, ms(250), ms(29))
                .deadline(ms(120))
                .build(),
            TaskBuilder::new(3, 16, ms(1500), ms(29))
                .deadline(ms(120))
                .build(),
        ])
    }

    #[test]
    fn sorted_by_decreasing_priority() {
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(3, 16, ms(1500), ms(29)).build(),
            TaskBuilder::new(1, 20, ms(200), ms(29)).build(),
            TaskBuilder::new(2, 18, ms(250), ms(29)).build(),
        ]);
        let prios: Vec<i32> = set.tasks().iter().map(|t| t.priority.0).collect();
        assert_eq!(prios, vec![20, 18, 16]);
        assert_eq!(set.rank_of(TaskId(1)), Some(0));
        assert_eq!(set.rank_of(TaskId(3)), Some(2));
    }

    #[test]
    fn equal_priorities_tie_break_by_id() {
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(9, 5, ms(10), ms(1)).build(),
            TaskBuilder::new(4, 5, ms(10), ms(1)).build(),
        ]);
        assert_eq!(set.by_rank(0).id, TaskId(4));
        // Equal-priority peers interfere with each other.
        assert_eq!(set.hp_ranks(0), vec![1]);
        assert_eq!(set.hp_ranks(1), vec![0]);
    }

    #[test]
    fn hp_and_lp_ranks() {
        let set = three_tasks();
        assert_eq!(set.hp_ranks(0), Vec::<usize>::new());
        assert_eq!(set.hp_ranks(1), vec![0]);
        assert_eq!(set.hp_ranks(2), vec![0, 1]);
        assert_eq!(set.lp_ranks(0), vec![1, 2]);
        assert_eq!(set.lp_ranks(2), Vec::<usize>::new());
    }

    #[test]
    fn utilization_of_paper_system() {
        // 29/200 + 29/250 + 29/1500 ≈ 0.2804
        let u = three_tasks().utilization();
        assert!((u - (29.0 / 200.0 + 29.0 / 250.0 + 29.0 / 1500.0)).abs() < 1e-12);
    }

    #[test]
    fn hyperperiod_of_paper_system() {
        // lcm(200, 250, 1500) = 3000 ms
        assert_eq!(three_tasks().hyperperiod(), ms(3000));
    }

    #[test]
    fn validation_rejects_bad_input() {
        assert!(matches!(TaskSet::new(vec![]), Err(ModelError::Empty)));
        let dup = TaskSet::new(vec![
            TaskBuilder::new(1, 1, ms(10), ms(1)).build(),
            TaskBuilder::new(1, 2, ms(10), ms(1)).build(),
        ]);
        assert!(matches!(dup, Err(ModelError::DuplicateId(TaskId(1)))));
        let zero_cost = TaskSet::new(vec![TaskBuilder::new(1, 1, ms(10), ms(0)).build()]);
        assert!(matches!(
            zero_cost,
            Err(ModelError::InvalidParameter { .. })
        ));
        let neg_offset = TaskSet::new(vec![TaskBuilder::new(1, 1, ms(10), ms(1))
            .offset(ms(-1))
            .build()]);
        assert!(matches!(
            neg_offset,
            Err(ModelError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn builder_defaults() {
        let t = TaskBuilder::new(7, 3, ms(100), ms(10)).build();
        assert_eq!(t.deadline, t.period, "implicit deadline by default");
        assert_eq!(t.name, "τ7");
        assert!(t.is_constrained());
        let t2 = TaskBuilder::new(8, 3, ms(4), ms(2)).deadline(ms(6)).build();
        assert!(!t2.is_constrained());
    }

    #[test]
    fn add_remove_replace() {
        let set = three_tasks();
        let bigger = set
            .with_added(TaskBuilder::new(4, 10, ms(500), ms(5)).build())
            .unwrap();
        assert_eq!(bigger.len(), 4);
        assert_eq!(bigger.by_rank(3).id, TaskId(4));
        let smaller = bigger.with_removed(TaskId(4)).unwrap();
        assert_eq!(smaller, set);
        assert!(matches!(
            set.with_removed(TaskId(99)),
            Err(ModelError::UnknownTask(TaskId(99)))
        ));
        let mut spec = set.by_id(TaskId(1)).unwrap().clone();
        spec.cost = ms(40);
        let replaced = set.with_replaced(spec);
        assert_eq!(replaced.by_id(TaskId(1)).unwrap().cost, ms(40));
    }

    #[test]
    fn display_renders_table() {
        let s = three_tasks().to_string();
        assert!(s.contains("τ1"));
        assert!(s.contains("200ms"));
    }

    #[test]
    fn synchronous_and_offsets() {
        let set = three_tasks();
        assert!(set.is_synchronous());
        let mut spec = set.by_id(TaskId(3)).unwrap().clone();
        spec.offset = ms(1000);
        let shifted = set.with_replaced(spec);
        assert!(!shifted.is_synchronous());
        assert_eq!(shifted.max_offset(), ms(1000));
    }
}
