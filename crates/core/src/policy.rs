//! The scheduling-policy axis shared by every layer of the workspace.
//!
//! The paper states its fault-tolerance mechanisms on top of a
//! fixed-priority preemptive scheduler, but nothing in the
//! detector/treatment layer requires FP: the dispatch rule is just
//! another axis of a scenario, like the task source or the fault plan.
//! [`PolicyKind`] names that axis once, here in the analysis crate, so
//! the analyzer (`rtft_core::analyzer`), the simulator
//! (`rtft_sim::policy`), the harness, the campaign grid and the CLI all
//! speak the same vocabulary:
//!
//! * [`PolicyKind::FixedPriority`] — preemptive fixed priority, the
//!   paper's platform; certified by exact response-time analysis;
//! * [`PolicyKind::Edf`] — preemptive earliest-deadline-first (absolute
//!   deadlines, ties by task id); certified by the processor-demand
//!   test of [`crate::edf`];
//! * [`PolicyKind::NonPreemptiveFp`] — fixed priority without
//!   preemption; certified by response-time analysis with a
//!   lower-priority blocking term.
//!
//! ## Interaction with partitioned multiprocessor scheduling
//!
//! Under `rtft-part`'s partitioned subsystem, one `PolicyKind` governs
//! *every core*: the allocator's per-core feasibility probes, each
//! core's `Analyzer` session, and each core's engine all run the same
//! kind. The policy therefore composes with partitioning per core, with
//! no cross-core terms:
//!
//! * **fp** — each core is certified by its own exact response-time
//!   analysis; a task's WCRT depends only on its core-mates (backed by
//!   `rtft-part`'s twin-paper-system test, where each half reproduces
//!   the uniprocessor Table 2 numbers exactly);
//! * **edf** — the processor-demand test applies per core, so a
//!   partition is feasible iff every core's local demand fits; per-task
//!   thresholds remain the deadlines (backed by the per-core EDF
//!   threshold test);
//! * **npfp** — the blocking term is *local*: only lower-priority tasks
//!   on the same core can block, so partitioning can shrink blocking
//!   and a set infeasible on one core under npfp may become feasible
//!   split (backed by the per-core npfp blocking test).
//!
//! Allocation itself is policy-sensitive — a placement that passes the
//! fp probe can fail the npfp probe on the same core — which is why the
//! campaign grid treats `(policy, cores, alloc)` as one placement key.

use std::fmt;
use std::str::FromStr;

/// Which dispatch rule a scenario runs (and is analysed) under.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum PolicyKind {
    /// Preemptive fixed priority — the paper's scheduler and the
    /// default everywhere.
    #[default]
    FixedPriority,
    /// Preemptive earliest-deadline-first: the job with the earliest
    /// absolute deadline runs; ties broken by task id; equal deadlines
    /// never preempt each other (FIFO among equals).
    Edf,
    /// Non-preemptive fixed priority: dispatch picks the
    /// highest-priority ready task, but a dispatched job runs to
    /// completion.
    NonPreemptiveFp,
}

impl PolicyKind {
    /// Every policy, in the stable grid-expansion order used by
    /// campaign specs (`policy all`).
    pub const ALL: [PolicyKind; 3] = [
        PolicyKind::FixedPriority,
        PolicyKind::Edf,
        PolicyKind::NonPreemptiveFp,
    ];

    /// Short stable label (spec files, report columns, bench ids).
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::FixedPriority => "fp",
            PolicyKind::Edf => "edf",
            PolicyKind::NonPreemptiveFp => "npfp",
        }
    }

    /// `true` iff a release can take the CPU from a running job.
    pub fn is_preemptive(self) -> bool {
        !matches!(self, PolicyKind::NonPreemptiveFp)
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for PolicyKind {
    type Err = String;

    /// Parse a policy keyword: `fp` (aliases `fixed`, `fixed-priority`),
    /// `edf`, `npfp` (alias `non-preemptive`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "fp" | "fixed" | "fixed-priority" => PolicyKind::FixedPriority,
            "edf" => PolicyKind::Edf,
            "npfp" | "non-preemptive" => PolicyKind::NonPreemptiveFp,
            other => return Err(format!("unknown policy `{other}` (expected fp|edf|npfp)")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for kind in PolicyKind::ALL {
            assert_eq!(kind.label().parse::<PolicyKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.label());
        }
        assert!("sideways".parse::<PolicyKind>().is_err());
    }

    #[test]
    fn default_is_the_paper_scheduler() {
        assert_eq!(PolicyKind::default(), PolicyKind::FixedPriority);
        assert!(PolicyKind::FixedPriority.is_preemptive());
        assert!(!PolicyKind::NonPreemptiveFp.is_preemptive());
    }
}
