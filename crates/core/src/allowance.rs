//! Allowance (tolerance-factor) computation — the paper's Section 4.2/4.3.
//!
//! A *fault* is a job exceeding its declared cost. The paper's key idea is
//! that the admission-control analysis already quantifies how much extra
//! execution the system can absorb before any deadline is endangered, and
//! that this **allowance** can parameterize the fault treatment:
//!
//! * **Equitable allowance** (§4.2): the largest uniform increment `A` that
//!   can be added to *every* task's cost with the system staying feasible,
//!   found by binary search over the exact response-time analysis. Each
//!   faulty task is then stopped `A` past its *inflated* WCRT.
//! * **System allowance** (§4.3): "the higher the task priority, the more
//!   right it has to make a fault" — the first faulty task receives the
//!   whole slack `M_i`, the largest overrun it can make *alone* while the
//!   system stays feasible. Remainder redistribution at run time is
//!   implemented by `rtft-ft::manager` on top of these static numbers.
//!
//! All searches are exact (integer nanoseconds): feasibility is monotone in
//! the inflation, so binary search returns the true maximum, not an
//! approximation.

use crate::error::AnalysisError;
use crate::task::{TaskId, TaskSet};
use crate::time::Duration;

/// Whose deadlines the single-task overrun search must protect.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SlackPolicy {
    /// Every task — including the faulty one — must stay feasible. This is
    /// the paper's formulation ("the maximum value which can be added …
    /// so that the system remains feasible").
    #[default]
    ProtectAll,
    /// Only the *other* tasks must stay feasible: the faulty task is
    /// already compromised, the goal (paper §4) is to stop it before it
    /// fails non-faulty lower-priority tasks. With this policy the faulty
    /// task's own deadline does not cap its grant.
    ProtectOthers,
}

/// Result of the equitable-allowance computation (paper §4.2 + Table 3).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EquitableAllowance {
    /// The uniform allowance `A` granted to every task.
    pub allowance: Duration,
    /// WCRT of each task (rank order) when **all** costs are inflated by
    /// `A` — the stop thresholds of treatment §4.2, the paper's Table 3
    /// (`WCRT_i + Σ_{j: rank ≤ i} A`).
    pub inflated_wcrt: Vec<Duration>,
    /// Baseline WCRTs (rank order) for reference.
    pub base_wcrt: Vec<Duration>,
}

impl EquitableAllowance {
    /// Slack left to task at `rank` between inflated WCRT and deadline.
    pub fn residual_slack(&self, set: &TaskSet, rank: usize) -> Duration {
        set.by_rank(rank).deadline - self.inflated_wcrt[rank]
    }
}

/// Static per-task system-allowance numbers (paper §4.3).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SystemAllowance {
    /// `M_i` per rank: the largest overrun task `i` may make alone.
    pub max_overrun: Vec<Duration>,
    /// Baseline WCRTs (rank order).
    pub base_wcrt: Vec<Duration>,
    /// Policy used for the search.
    pub policy: SlackPolicy,
}

/// Largest uniform cost increment keeping the whole set feasible
/// (paper §4.2). Returns [`AnalysisError::Divergent`]-style errors from the
/// underlying analysis; an infeasible *base* system yields `Ok(None)`.
#[deprecated(
    since = "0.2.0",
    note = "one-shot wrapper that rebuilds the analysis from scratch; hold an \
            `analyzer::Analyzer` session and call `.equitable_allowance()` to \
            share and warm-start the fixed-point state"
)]
pub fn equitable_allowance(set: &TaskSet) -> Result<Option<EquitableAllowance>, AnalysisError> {
    crate::analyzer::Analyzer::new(set).equitable_allowance()
}

/// Largest overrun the task at `rank` can make **alone** with the rest of
/// the system staying feasible (paper §4.3's `M_i`). `Ok(None)` when the
/// base system is already infeasible.
#[deprecated(
    since = "0.2.0",
    note = "one-shot wrapper; use `analyzer::Analyzer::max_single_overrun_with` \
            on a session to warm-start the search"
)]
pub fn max_single_overrun(
    set: &TaskSet,
    rank: usize,
    policy: SlackPolicy,
) -> Result<Option<Duration>, AnalysisError> {
    crate::analyzer::Analyzer::new(set).max_single_overrun_with(rank, policy)
}

/// `M_i` for every task (paper §4.3). `Ok(None)` when the base system is
/// infeasible.
#[deprecated(
    since = "0.2.0",
    note = "one-shot wrapper; use `analyzer::Analyzer::system_allowance_with` \
            on a session — the per-task searches then share one analysis state"
)]
pub fn system_allowance(
    set: &TaskSet,
    policy: SlackPolicy,
) -> Result<Option<SystemAllowance>, AnalysisError> {
    crate::analyzer::Analyzer::new(set).system_allowance_with(policy)
}

/// How much of a lower-priority task's slack a set of simultaneous
/// higher-priority overruns consumes: the WCRT of `victim` when each
/// `(rank, overrun)` pair inflates the corresponding cost.
///
/// Used by the run-time allowance manager to subtract "the more priority
/// tasks overrun" (paper §4.3) when granting a later faulty task.
#[deprecated(
    since = "0.2.0",
    note = "one-shot wrapper; use `analyzer::Analyzer::wcrt_under_overruns` on \
            a session to reuse its cached busy-period solutions"
)]
pub fn wcrt_under_overruns(
    set: &TaskSet,
    victim: usize,
    overruns: &[(usize, Duration)],
) -> Result<Duration, AnalysisError> {
    let mut session = crate::analyzer::Analyzer::new(set);
    let _ = session.wcrt(victim);
    session.wcrt_under_overruns(victim, overruns)
}

/// Identify which task's deadline is the *binding constraint* for the
/// equitable allowance: the task whose inflated WCRT sits closest to its
/// deadline. Returns `(TaskId, residual slack)`.
pub fn binding_task(set: &TaskSet, eq: &EquitableAllowance) -> (TaskId, Duration) {
    let mut best = (set.by_rank(0).id, Duration::MAX);
    for rank in 0..set.len() {
        let slack = eq.residual_slack(set, rank);
        if slack < best.1 {
            best = (set.by_rank(rank).id, slack);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    // The free functions under test are the deprecated compatibility
    // shims; these tests pin their behaviour to the Analyzer's.
    #![allow(deprecated)]

    use super::*;
    use crate::response::ResponseAnalysis;
    use crate::task::TaskBuilder;

    fn ms(v: i64) -> Duration {
        Duration::millis(v)
    }

    fn table2() -> TaskSet {
        TaskSet::from_specs(vec![
            TaskBuilder::new(1, 20, ms(200), ms(29))
                .deadline(ms(70))
                .build(),
            TaskBuilder::new(2, 18, ms(250), ms(29))
                .deadline(ms(120))
                .build(),
            TaskBuilder::new(3, 16, ms(1500), ms(29))
                .deadline(ms(120))
                .build(),
        ])
    }

    #[test]
    fn equitable_allowance_matches_paper_table2() {
        // Paper Table 2, column A_i: eleven milliseconds for every task.
        let eq = equitable_allowance(&table2()).unwrap().unwrap();
        assert_eq!(eq.allowance, ms(11));
        // Paper Table 3: inflated WCRTs 40 / 80 / 120 ms.
        assert_eq!(eq.inflated_wcrt, vec![ms(40), ms(80), ms(120)]);
        assert_eq!(eq.base_wcrt, vec![ms(29), ms(58), ms(87)]);
    }

    #[test]
    fn equitable_allowance_is_exactly_maximal() {
        // With A the system is feasible; with A + 1 ns it is not (exactness
        // of the integer binary search).
        let set = table2();
        let eq = equitable_allowance(&set).unwrap().unwrap();
        let mut r = ResponseAnalysis::new(&set);
        r.inflate_all(eq.allowance);
        assert!(r.is_feasible().unwrap());
        r.inflate_all(eq.allowance + Duration::NANO);
        assert!(!r.is_feasible().unwrap());
    }

    #[test]
    fn binding_constraint_is_tau3() {
        // For the paper's system the equitable allowance is capped by τ3:
        // its inflated WCRT lands exactly on its deadline.
        let set = table2();
        let eq = equitable_allowance(&set).unwrap().unwrap();
        let (id, slack) = binding_task(&set, &eq);
        assert_eq!(id, TaskId(3));
        assert_eq!(slack, Duration::ZERO);
    }

    #[test]
    fn system_allowance_matches_paper_33ms() {
        // Paper §6.5: "all the system time available in the worst execution
        // case, that is to say thirty three milliseconds" for τ1.
        let sa = system_allowance(&table2(), SlackPolicy::ProtectAll)
            .unwrap()
            .unwrap();
        assert_eq!(sa.max_overrun[0], ms(33));
        // τ2 alone can also overrun 33 ms (τ3's deadline binds it too);
        // τ3's own slack is 120 − 87 = 33.
        assert_eq!(sa.max_overrun[1], ms(33));
        assert_eq!(sa.max_overrun[2], ms(33));
    }

    #[test]
    fn protect_others_relaxes_own_deadline() {
        // Make τ1's own deadline the binding constraint under ProtectAll.
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 20, ms(200), ms(29))
                .deadline(ms(40))
                .build(),
            TaskBuilder::new(2, 18, ms(250), ms(29))
                .deadline(ms(200))
                .build(),
        ]);
        let all = max_single_overrun(&set, 0, SlackPolicy::ProtectAll)
            .unwrap()
            .unwrap();
        let others = max_single_overrun(&set, 0, SlackPolicy::ProtectOthers)
            .unwrap()
            .unwrap();
        assert_eq!(all, ms(11), "capped by own 40 ms deadline");
        // τ2's deadline allows 200 − 58 = 142 ms of τ1 overrun.
        assert_eq!(others, ms(142));
        assert!(others > all);
    }

    #[test]
    fn infeasible_base_yields_none() {
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 10, ms(10), ms(8)).build(),
            TaskBuilder::new(2, 5, ms(10), ms(8)).build(),
        ]);
        assert_eq!(equitable_allowance(&set).unwrap(), None);
        assert_eq!(
            system_allowance(&set, SlackPolicy::ProtectAll).unwrap(),
            None
        );
    }

    #[test]
    fn zero_allowance_when_exactly_tight() {
        // τ2's WCRT equals its deadline: no slack at all, allowance 0 —
        // still Some (the system itself is feasible).
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 10, ms(10), ms(5)).build(),
            TaskBuilder::new(2, 5, ms(20), ms(5))
                .deadline(ms(10))
                .build(),
        ]);
        let eq = equitable_allowance(&set).unwrap().unwrap();
        assert_eq!(eq.allowance, Duration::ZERO);
    }

    #[test]
    fn wcrt_under_overruns_accumulates() {
        let set = table2();
        // τ1 overruns 20 ms: τ3 sees 87 + 20 = 107.
        assert_eq!(
            wcrt_under_overruns(&set, 2, &[(0, ms(20))]).unwrap(),
            ms(107)
        );
        // τ1 and τ2 overrun 20 ms each: τ3 sees 127 (> deadline).
        assert_eq!(
            wcrt_under_overruns(&set, 2, &[(0, ms(20)), (1, ms(20))]).unwrap(),
            ms(127)
        );
    }
}
