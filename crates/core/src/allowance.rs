//! Allowance (tolerance-factor) computation — the paper's Section 4.2/4.3.
//!
//! A *fault* is a job exceeding its declared cost. The paper's key idea is
//! that the admission-control analysis already quantifies how much extra
//! execution the system can absorb before any deadline is endangered, and
//! that this **allowance** can parameterize the fault treatment:
//!
//! * **Equitable allowance** (§4.2): the largest uniform increment `A` that
//!   can be added to *every* task's cost with the system staying feasible,
//!   found by binary search over the exact response-time analysis. Each
//!   faulty task is then stopped `A` past its *inflated* WCRT.
//! * **System allowance** (§4.3): "the higher the task priority, the more
//!   right it has to make a fault" — the first faulty task receives the
//!   whole slack `M_i`, the largest overrun it can make *alone* while the
//!   system stays feasible. Remainder redistribution at run time is
//!   implemented by `rtft-ft::manager` on top of these static numbers.
//!
//! All searches are exact (integer nanoseconds): feasibility is monotone in
//! the inflation, so binary search returns the true maximum, not an
//! approximation.

use crate::task::{TaskId, TaskSet};
use crate::time::Duration;

/// Whose deadlines the single-task overrun search must protect.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SlackPolicy {
    /// Every task — including the faulty one — must stay feasible. This is
    /// the paper's formulation ("the maximum value which can be added …
    /// so that the system remains feasible").
    #[default]
    ProtectAll,
    /// Only the *other* tasks must stay feasible: the faulty task is
    /// already compromised, the goal (paper §4) is to stop it before it
    /// fails non-faulty lower-priority tasks. With this policy the faulty
    /// task's own deadline does not cap its grant.
    ProtectOthers,
}

impl SlackPolicy {
    /// Short stable label (query batches, report columns).
    pub fn label(self) -> &'static str {
        match self {
            SlackPolicy::ProtectAll => "protect-all",
            SlackPolicy::ProtectOthers => "protect-others",
        }
    }
}

impl std::fmt::Display for SlackPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for SlackPolicy {
    type Err = String;

    /// Parse a slack-policy keyword: `protect-all` | `protect-others`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "protect-all" => SlackPolicy::ProtectAll,
            "protect-others" => SlackPolicy::ProtectOthers,
            other => {
                return Err(format!(
                    "unknown slack policy `{other}` (expected protect-all|protect-others)"
                ))
            }
        })
    }
}

/// Result of the equitable-allowance computation (paper §4.2 + Table 3).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EquitableAllowance {
    /// The uniform allowance `A` granted to every task.
    pub allowance: Duration,
    /// WCRT of each task (rank order) when **all** costs are inflated by
    /// `A` — the stop thresholds of treatment §4.2, the paper's Table 3
    /// (`WCRT_i + Σ_{j: rank ≤ i} A`).
    pub inflated_wcrt: Vec<Duration>,
    /// Baseline WCRTs (rank order) for reference.
    pub base_wcrt: Vec<Duration>,
}

impl EquitableAllowance {
    /// Slack left to task at `rank` between inflated WCRT and deadline.
    pub fn residual_slack(&self, set: &TaskSet, rank: usize) -> Duration {
        set.by_rank(rank).deadline - self.inflated_wcrt[rank]
    }
}

/// Static per-task system-allowance numbers (paper §4.3).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SystemAllowance {
    /// `M_i` per rank: the largest overrun task `i` may make alone.
    pub max_overrun: Vec<Duration>,
    /// Baseline WCRTs (rank order).
    pub base_wcrt: Vec<Duration>,
    /// Policy used for the search.
    pub policy: SlackPolicy,
}

/// Identify which task's deadline is the *binding constraint* for the
/// equitable allowance: the task whose inflated WCRT sits closest to its
/// deadline. Returns `(TaskId, residual slack)`.
pub fn binding_task(set: &TaskSet, eq: &EquitableAllowance) -> (TaskId, Duration) {
    let mut best = (set.by_rank(0).id, Duration::MAX);
    for rank in 0..set.len() {
        let slack = eq.residual_slack(set, rank);
        if slack < best.1 {
            best = (set.by_rank(rank).id, slack);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::Analyzer;
    use crate::response::ResponseAnalysis;
    use crate::task::TaskBuilder;

    fn ms(v: i64) -> Duration {
        Duration::millis(v)
    }

    fn table2() -> TaskSet {
        TaskSet::from_specs(vec![
            TaskBuilder::new(1, 20, ms(200), ms(29))
                .deadline(ms(70))
                .build(),
            TaskBuilder::new(2, 18, ms(250), ms(29))
                .deadline(ms(120))
                .build(),
            TaskBuilder::new(3, 16, ms(1500), ms(29))
                .deadline(ms(120))
                .build(),
        ])
    }

    #[test]
    fn equitable_allowance_matches_paper_table2() {
        // Paper Table 2, column A_i: eleven milliseconds for every task.
        let eq = Analyzer::new(&table2())
            .equitable_allowance()
            .unwrap()
            .unwrap();
        assert_eq!(eq.allowance, ms(11));
        // Paper Table 3: inflated WCRTs 40 / 80 / 120 ms.
        assert_eq!(eq.inflated_wcrt, vec![ms(40), ms(80), ms(120)]);
        assert_eq!(eq.base_wcrt, vec![ms(29), ms(58), ms(87)]);
    }

    #[test]
    fn equitable_allowance_is_exactly_maximal() {
        // With A the system is feasible; with A + 1 ns it is not (exactness
        // of the integer binary search).
        let set = table2();
        let eq = Analyzer::new(&set).equitable_allowance().unwrap().unwrap();
        let mut r = ResponseAnalysis::new(&set);
        r.inflate_all(eq.allowance);
        assert!(r.is_feasible().unwrap());
        r.inflate_all(eq.allowance + Duration::NANO);
        assert!(!r.is_feasible().unwrap());
    }

    #[test]
    fn binding_constraint_is_tau3() {
        // For the paper's system the equitable allowance is capped by τ3:
        // its inflated WCRT lands exactly on its deadline.
        let set = table2();
        let eq = Analyzer::new(&set).equitable_allowance().unwrap().unwrap();
        let (id, slack) = binding_task(&set, &eq);
        assert_eq!(id, TaskId(3));
        assert_eq!(slack, Duration::ZERO);
    }

    #[test]
    fn system_allowance_matches_paper_33ms() {
        // Paper §6.5: "all the system time available in the worst execution
        // case, that is to say thirty three milliseconds" for τ1.
        let sa = Analyzer::new(&table2())
            .system_allowance_with(SlackPolicy::ProtectAll)
            .unwrap()
            .unwrap();
        assert_eq!(sa.max_overrun[0], ms(33));
        // τ2 alone can also overrun 33 ms (τ3's deadline binds it too);
        // τ3's own slack is 120 − 87 = 33.
        assert_eq!(sa.max_overrun[1], ms(33));
        assert_eq!(sa.max_overrun[2], ms(33));
    }

    #[test]
    fn protect_others_relaxes_own_deadline() {
        // Make τ1's own deadline the binding constraint under ProtectAll.
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 20, ms(200), ms(29))
                .deadline(ms(40))
                .build(),
            TaskBuilder::new(2, 18, ms(250), ms(29))
                .deadline(ms(200))
                .build(),
        ]);
        let mut session = Analyzer::new(&set);
        let all = session
            .max_single_overrun_with(0, SlackPolicy::ProtectAll)
            .unwrap()
            .unwrap();
        let others = session
            .max_single_overrun_with(0, SlackPolicy::ProtectOthers)
            .unwrap()
            .unwrap();
        assert_eq!(all, ms(11), "capped by own 40 ms deadline");
        // τ2's deadline allows 200 − 58 = 142 ms of τ1 overrun.
        assert_eq!(others, ms(142));
        assert!(others > all);
    }

    #[test]
    fn infeasible_base_yields_none() {
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 10, ms(10), ms(8)).build(),
            TaskBuilder::new(2, 5, ms(10), ms(8)).build(),
        ]);
        let mut session = Analyzer::new(&set);
        assert_eq!(session.equitable_allowance().unwrap(), None);
        assert_eq!(
            session
                .system_allowance_with(SlackPolicy::ProtectAll)
                .unwrap(),
            None
        );
    }

    #[test]
    fn zero_allowance_when_exactly_tight() {
        // τ2's WCRT equals its deadline: no slack at all, allowance 0 —
        // still Some (the system itself is feasible).
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 10, ms(10), ms(5)).build(),
            TaskBuilder::new(2, 5, ms(20), ms(5))
                .deadline(ms(10))
                .build(),
        ]);
        let eq = Analyzer::new(&set).equitable_allowance().unwrap().unwrap();
        assert_eq!(eq.allowance, Duration::ZERO);
    }

    #[test]
    fn wcrt_under_overruns_accumulates() {
        let set = table2();
        let mut session = Analyzer::new(&set);
        let _ = session.wcrt(2);
        // τ1 overruns 20 ms: τ3 sees 87 + 20 = 107.
        assert_eq!(
            session.wcrt_under_overruns(2, &[(0, ms(20))]).unwrap(),
            ms(107)
        );
        // τ1 and τ2 overrun 20 ms each: τ3 sees 127 (> deadline).
        assert_eq!(
            session
                .wcrt_under_overruns(2, &[(0, ms(20)), (1, ms(20))])
                .unwrap(),
            ms(127)
        );
    }
}
