//! Processor-load tests (the paper's Section 2.1 plus the classic
//! sufficient bounds it cites).
//!
//! The load test is the first gate of admission control:
//!
//! * `U > 1` — the system is **not** feasible (necessary condition);
//! * `U ≤ 1` — "the load condition is not enough to conclude" (paper §2.1);
//!   the exact response-time analysis of [`crate::response`] decides.
//!
//! For implicit-deadline sets scheduled rate-monotonically two *sufficient*
//! tests are also provided: the Liu & Layland bound `n(2^{1/n} − 1)` and the
//! hyperbolic bound of Bini & Buttazzo (`Π (U_i + 1) ≤ 2`), reference \[2\] of
//! the paper. The hyperbolic test dominates the LL bound: everything the LL
//! bound accepts, the hyperbolic bound accepts too (property-tested below).

use crate::task::TaskSet;

/// Verdict of the necessary utilization test.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum LoadVerdict {
    /// `U > 1`: definitely infeasible on one processor.
    Overloaded {
        /// The measured utilization.
        utilization: f64,
    },
    /// `U ≤ 1`: inconclusive — exact analysis required.
    Inconclusive {
        /// The measured utilization.
        utilization: f64,
    },
}

impl LoadVerdict {
    /// `true` iff the verdict proves infeasibility.
    pub fn is_overloaded(&self) -> bool {
        matches!(self, LoadVerdict::Overloaded { .. })
    }

    /// The utilization that was measured.
    pub fn utilization(&self) -> f64 {
        match *self {
            LoadVerdict::Overloaded { utilization } | LoadVerdict::Inconclusive { utilization } => {
                utilization
            }
        }
    }
}

/// The necessary load test of the paper's Section 2.1: computes
/// `U = Σ C_i/T_i` and classifies the set.
pub fn load_test(set: &TaskSet) -> LoadVerdict {
    let u = set.utilization();
    if u > 1.0 {
        LoadVerdict::Overloaded { utilization: u }
    } else {
        LoadVerdict::Inconclusive { utilization: u }
    }
}

/// The Liu & Layland utilization bound for `n` tasks: `n(2^{1/n} − 1)`.
///
/// A rate-monotonic, implicit-deadline, synchronous set with `U` at or below
/// this bound is schedulable. The bound tends to `ln 2 ≈ 0.693` as `n → ∞`.
pub fn liu_layland_bound(n: usize) -> f64 {
    assert!(n > 0, "bound undefined for zero tasks");
    let n = n as f64;
    n * (2f64.powf(1.0 / n) - 1.0)
}

/// Sufficient Liu & Layland test: `U ≤ n(2^{1/n} − 1)`.
///
/// Only meaningful for implicit-deadline sets under rate-monotonic
/// priorities; callers should verify those preconditions (the exact analysis
/// does not need them).
pub fn liu_layland_test(set: &TaskSet) -> bool {
    set.utilization() <= liu_layland_bound(set.len()) + f64::EPSILON
}

/// Sufficient hyperbolic test of Bini & Buttazzo: `Π (U_i + 1) ≤ 2`.
///
/// Same preconditions as [`liu_layland_test`], strictly less pessimistic.
pub fn hyperbolic_test(set: &TaskSet) -> bool {
    let p: f64 = set.tasks().iter().map(|t| t.utilization() + 1.0).product();
    p <= 2.0 + f64::EPSILON
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskBuilder;
    use crate::time::Duration;

    fn ms(v: i64) -> Duration {
        Duration::millis(v)
    }

    fn set(params: &[(i64, i64)]) -> TaskSet {
        // (period, cost) pairs, RM priorities.
        TaskSet::from_specs(
            params
                .iter()
                .enumerate()
                .map(|(i, &(t, c))| TaskBuilder::new(i as u32, -(t as i32), ms(t), ms(c)).build())
                .collect(),
        )
    }

    #[test]
    fn paper_system_is_inconclusive_not_overloaded() {
        let s = set(&[(200, 29), (250, 29), (1500, 29)]);
        let v = load_test(&s);
        assert!(!v.is_overloaded());
        assert!((v.utilization() - 0.280_333_333).abs() < 1e-6);
    }

    #[test]
    fn overload_is_detected() {
        let s = set(&[(10, 6), (10, 5)]);
        let v = load_test(&s);
        assert!(v.is_overloaded());
        assert!((v.utilization() - 1.1).abs() < 1e-12);
    }

    #[test]
    fn full_utilization_is_inconclusive() {
        let s = set(&[(10, 5), (10, 5)]);
        assert!(!load_test(&s).is_overloaded());
    }

    #[test]
    fn ll_bound_values() {
        assert!((liu_layland_bound(1) - 1.0).abs() < 1e-12);
        assert!((liu_layland_bound(2) - 0.828_427).abs() < 1e-5);
        assert!((liu_layland_bound(3) - 0.779_763).abs() < 1e-5);
        // Monotonically decreasing towards ln 2.
        assert!(liu_layland_bound(100) > std::f64::consts::LN_2);
        assert!(liu_layland_bound(100) < liu_layland_bound(3));
    }

    #[test]
    fn hyperbolic_accepts_what_ll_accepts() {
        // A set right at the 2-task LL bound.
        let s = set(&[(10, 4), (14, 4)]); // U = 0.4 + 0.2857 = 0.6857 < 0.8284
        assert!(liu_layland_test(&s));
        assert!(hyperbolic_test(&s));
    }

    #[test]
    fn hyperbolic_is_less_pessimistic() {
        // Two tasks with U1 = U2 = 0.45: U = 0.9 > LL bound 0.828, but
        // (1.45)^2 = 2.1025 > 2 — rejected by both here; instead use
        // U1 = 0.5, U2 = 0.33: product = 1.5 * 1.33 ≈ 1.995 ≤ 2 while
        // U = 0.8333 > 0.8284.
        let s = set(&[(100, 50), (100, 33)]);
        assert!(!liu_layland_test(&s));
        assert!(hyperbolic_test(&s));
    }

    #[test]
    #[should_panic(expected = "bound undefined")]
    fn ll_bound_rejects_zero() {
        let _ = liu_layland_bound(0);
    }
}
