//! The unified query plane: one serializable request/response vocabulary
//! for every analytical question the workspace answers.
//!
//! Historically "which system, which question" was re-encoded by hand at
//! four surfaces — [`crate::analyzer::Analyzer`] methods, the per-core
//! duplicates of `rtft-part`'s `PartitionedAnalyzer`, campaign job
//! plumbing, and `rtft` CLI flags. This module names both halves once:
//!
//! * [`SystemSpec`] — the one value every layer consumes: a task set
//!   plus scheduling policy, core count and allocator, fault plan, and
//!   platform overheads;
//! * [`Query`] / [`Response`] — the questions of the paper
//!   (feasibility, WCRTs, detection thresholds, equitable and system
//!   allowances, single-task overrun, sensitivity) and their typed
//!   answers, per core where the platform is partitioned.
//!
//! The schedulability vocabulary follows the canonical formulations
//! already in-tree: Joseph & Pandya response-time analysis for the
//! fixed-priority policies, the Baruah–Rosier–Howell processor-demand
//! test with Zhang & Burns' QPA walk for EDF.
//!
//! `rtft-part`'s `Workbench` answers these queries, dispatching to a
//! uniprocessor session (1 core) or per-core sessions (N cores) so
//! callers never branch on platform. This module owns only the data
//! plane: the types and their line/JSON serialization.
//!
//! ## Line format
//!
//! A *query batch* is a system description plus query lines, in the
//! same line grammar campaign specs use for their system axes (`#`
//! starts a comment, blank lines are ignored):
//!
//! ```text
//! system paper
//! task tau1 20 200ms 70ms 29ms
//! task tau2 18 250ms 120ms 29ms
//! task tau3 16 1500ms 120ms 29ms
//! policy fp
//! cores 1
//! alloc ffd
//! platform exact
//! query feasibility
//! query equitable
//! ```
//!
//! [`parse_batch`] and [`render_batch`] round-trip: parsing a rendered
//! batch yields the identical [`SystemSpec`] and [`Query`] list.
//!
//! ```
//! use rtft_core::query::{parse_batch, render_batch, Query};
//!
//! let text = "\
//! system demo
//! task a 2 100ms 100ms 10ms
//! task b 1 200ms 200ms 20ms
//! policy fp
//! cores 1
//! alloc ffd
//! platform exact
//! query feasibility
//! query wcrt
//! ";
//! let (spec, queries) = parse_batch(text).unwrap();
//! assert_eq!(spec.name, "demo");
//! assert_eq!(queries, vec![Query::Feasibility, Query::WcrtAll]);
//! // Round trip: rendering re-parses to the identical batch.
//! let rendered = render_batch(&spec, &queries);
//! assert_eq!(parse_batch(&rendered).unwrap(), (spec, queries));
//! ```

use crate::allowance::SlackPolicy;
use crate::policy::PolicyKind;
use crate::task::{TaskBuilder, TaskId, TaskSet, TaskSpec};
use crate::time::Duration;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::str::FromStr;

/// Which bin-packing allocator places tasks onto cores when a
/// [`SystemSpec`] names more than one core. The allocators themselves
/// live in `rtft-part`; the *vocabulary* lives here so a serialized
/// spec can name its placement without depending on the implementation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum AllocPolicy {
    /// First-fit decreasing — the default everywhere.
    #[default]
    FirstFitDecreasing,
    /// Best-fit decreasing (tightest fitting core).
    BestFitDecreasing,
    /// Worst-fit decreasing (emptiest fitting core).
    WorstFitDecreasing,
    /// Exhaustive backtracking search (small sets only; test oracle).
    Exhaustive,
}

impl AllocPolicy {
    /// The three production heuristics, in the stable grid-expansion
    /// order used by campaign specs (`alloc all`). The exhaustive
    /// search is deliberately excluded — it is a test oracle.
    pub const HEURISTICS: [AllocPolicy; 3] = [
        AllocPolicy::FirstFitDecreasing,
        AllocPolicy::BestFitDecreasing,
        AllocPolicy::WorstFitDecreasing,
    ];

    /// Short stable label (spec files, report columns, bench ids).
    pub fn label(self) -> &'static str {
        match self {
            AllocPolicy::FirstFitDecreasing => "ffd",
            AllocPolicy::BestFitDecreasing => "bfd",
            AllocPolicy::WorstFitDecreasing => "wfd",
            AllocPolicy::Exhaustive => "exhaustive",
        }
    }
}

impl fmt::Display for AllocPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for AllocPolicy {
    type Err = String;

    /// Parse an allocator keyword: `ffd` (aliases `first-fit`), `bfd`
    /// (`best-fit`), `wfd` (`worst-fit`), `exhaustive`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "ffd" | "first-fit" => AllocPolicy::FirstFitDecreasing,
            "bfd" | "best-fit" => AllocPolicy::BestFitDecreasing,
            "wfd" | "worst-fit" => AllocPolicy::WorstFitDecreasing,
            "exhaustive" => AllocPolicy::Exhaustive,
            other => {
                return Err(format!(
                    "unknown allocator `{other}` (expected ffd|bfd|wfd|exhaustive)"
                ))
            }
        })
    }
}

/// How tasks are mapped onto cores when a [`SystemSpec`] names more
/// than one: partitioned (each task pinned to one core by the
/// [`AllocPolicy`]) or global (one shared ready queue, free migration).
/// On a single core the two coincide. The default is partitioned, so
/// specs that never mention placement keep their historical meaning.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum Placement {
    /// Tasks are statically allocated onto cores (the default).
    #[default]
    Partitioned,
    /// One shared ready queue; jobs migrate freely between cores.
    Global,
}

impl Placement {
    /// Both placement kinds, in the stable grid-expansion order used by
    /// campaign specs (`placement all`).
    pub const ALL: [Placement; 2] = [Placement::Partitioned, Placement::Global];

    /// Short stable label (spec files, report columns, bench ids).
    pub fn label(self) -> &'static str {
        match self {
            Placement::Partitioned => "partitioned",
            Placement::Global => "global",
        }
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Placement {
    type Err = String;

    /// Parse a placement keyword: `partitioned` (alias `part`) or
    /// `global`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "partitioned" | "part" => Placement::Partitioned,
            "global" => Placement::Global,
            other => {
                return Err(format!(
                    "unknown placement `{other}` (expected partitioned|global)"
                ))
            }
        })
    }
}

/// One injected fault: a signed cost delta on one job of one task
/// (positive = overrun, negative = underrun). The executable
/// counterpart is `rtft_sim::fault::FaultPlan`; this is its
/// serializable, simulator-independent projection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultEntry {
    /// The faulty task.
    pub task: TaskId,
    /// Zero-based job index within the run.
    pub job: u64,
    /// Cost delta of that job (positive overrun, negative underrun).
    pub delta: Duration,
}

/// Platform model of a [`SystemSpec`]: timer grid plus the overhead
/// charges the simulator levies. All analysis queries ignore these (the
/// paper's analysis assumes free overheads); they ride along so one
/// spec value describes the *whole* system a campaign job runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PlatformModel {
    /// Timer release grid (`None` = exact timers). 10 ms is the
    /// paper's jRate platform and renders as `jrate`.
    pub quantum: Option<Duration>,
    /// Stop-flag poll period (zero = immediate stops).
    pub poll: Duration,
    /// Charge per stop-flag poll.
    pub poll_overhead: Duration,
    /// Charge per dispatch (context switch).
    pub dispatch: Duration,
    /// Charge per detector firing.
    pub detector_fire: Duration,
}

impl Default for PlatformModel {
    fn default() -> Self {
        PlatformModel::EXACT
    }
}

impl PlatformModel {
    /// Exact timers, immediate stops, free overheads.
    pub const EXACT: PlatformModel = PlatformModel {
        quantum: None,
        poll: Duration::ZERO,
        poll_overhead: Duration::ZERO,
        dispatch: Duration::ZERO,
        detector_fire: Duration::ZERO,
    };

    /// The paper's platform: jRate's 10 ms timer grid.
    pub fn jrate() -> Self {
        PlatformModel {
            quantum: Some(Duration::millis(10)),
            ..PlatformModel::EXACT
        }
    }

    /// Stable label for reports (`exact`, `jrate`, `quantum=5ms+…`).
    pub fn label(&self) -> String {
        self.render("+", |d| d.to_string())
    }

    /// The `platform` spec-line tail (`exact`, `jrate`,
    /// `quantum=<ns>ns poll=<ns>ns …`) — the same field walk as
    /// [`PlatformModel::label`], so the two can never drift.
    pub fn spec_line(&self) -> String {
        self.render(" ", |d| format!("{}ns", d.as_nanos()))
    }

    fn render(&self, sep: &str, fmt: impl Fn(Duration) -> String) -> String {
        let mut s = match self.quantum {
            None => "exact".to_string(),
            Some(q) if q == Duration::millis(10) => "jrate".to_string(),
            Some(q) => format!("quantum={}", fmt(q)),
        };
        for (key, value) in [
            ("poll", self.poll),
            ("pollovh", self.poll_overhead),
            ("dispatch", self.dispatch),
            ("detfire", self.detector_fire),
        ] {
            if value.is_positive() {
                let _ = write!(s, "{sep}{key}={}", fmt(value));
            }
        }
        s
    }

    /// Parse the tokens after the `platform` keyword (shared between
    /// query batches and campaign specs).
    ///
    /// # Errors
    /// A message naming the offending token.
    pub fn parse_tokens(tokens: &[&str]) -> Result<PlatformModel, String> {
        let mut platform = PlatformModel::EXACT;
        for (i, token) in tokens.iter().enumerate() {
            match (i, *token) {
                (0, "exact") => {}
                (0, "jrate") => platform.quantum = Some(Duration::millis(10)),
                _ => {
                    let (k, v) = token
                        .split_once('=')
                        .ok_or_else(|| format!("expected key=value, got `{token}`"))?;
                    let d: Duration = v.parse()?;
                    if !d.is_positive() {
                        return Err(format!("{k} must be positive"));
                    }
                    match k {
                        "quantum" => platform.quantum = Some(d),
                        "poll" => platform.poll = d,
                        "pollovh" => platform.poll_overhead = d,
                        "dispatch" => platform.dispatch = d,
                        "detfire" => platform.detector_fire = d,
                        other => return Err(format!("unknown platform key `{other}`")),
                    }
                }
            }
        }
        Ok(platform)
    }
}

/// The one value every layer consumes: a complete, serializable system
/// description. Analysis (the `Workbench` in `rtft-part`) reads the
/// set, policy and placement; the simulator additionally reads the
/// fault plan and platform; campaign jobs lower to exactly this value.
#[derive(Clone, PartialEq, Debug)]
pub struct SystemSpec {
    /// Label used in reports and artifacts.
    pub name: String,
    /// The tasks under analysis.
    pub set: TaskSet,
    /// Dispatch rule on every core.
    pub policy: PolicyKind,
    /// Core count (1 = uniprocessor, the paper's platform).
    pub cores: usize,
    /// Allocator placing tasks onto cores when `cores > 1` (dead axis
    /// under [`Placement::Global`]).
    pub alloc: AllocPolicy,
    /// Partitioned or global multiprocessor placement (moot at 1 core).
    pub placement: Placement,
    /// Injected faults (ignored by analysis queries).
    pub faults: Vec<FaultEntry>,
    /// Timer grid and overhead charges (ignored by analysis queries).
    pub platform: PlatformModel,
}

impl SystemSpec {
    /// A uniprocessor fixed-priority spec with no faults and an exact
    /// platform — the paper's baseline system shape.
    pub fn uniprocessor(name: impl Into<String>, set: TaskSet) -> Self {
        SystemSpec {
            name: name.into(),
            set,
            policy: PolicyKind::FixedPriority,
            cores: 1,
            alloc: AllocPolicy::FirstFitDecreasing,
            placement: Placement::Partitioned,
            faults: Vec::new(),
            platform: PlatformModel::EXACT,
        }
    }

    /// Replace the scheduling policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Replace the platform shape (`cores` ≥ 1).
    pub fn with_cores(mut self, cores: usize, alloc: AllocPolicy) -> Self {
        assert!(cores >= 1, "a system needs at least one core");
        self.cores = cores;
        self.alloc = alloc;
        self
    }

    /// Replace the multiprocessor placement kind.
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Display name of a task (its spec name; falls back to `t<id>` for
    /// ids not in the set).
    pub fn task_name(&self, id: TaskId) -> String {
        self.set
            .by_id(id)
            .map_or_else(|| format!("t{}", id.0), |t| t.name.clone())
    }

    /// Append the system's body lines — `task`, `fault`, `policy`,
    /// `cores`, `alloc`, `placement` (only when global, so legacy
    /// renderings stay byte-identical), `platform` — in the shared line
    /// grammar. This is the single rendering behind both query batches
    /// ([`render_batch`]) and campaign repro artifacts, which wrap the
    /// same body in their own header/trailer lines.
    pub fn render_lines(&self, out: &mut String) {
        for t in self.set.tasks() {
            let _ = write!(
                out,
                "task {} {} {}ns {}ns {}ns",
                t.name,
                t.priority.0,
                t.period.as_nanos(),
                t.deadline.as_nanos(),
                t.cost.as_nanos()
            );
            if !t.offset.is_zero() {
                let _ = write!(out, " {}ns", t.offset.as_nanos());
            }
            out.push('\n');
        }
        for f in &self.faults {
            let (kind, amount) = if f.delta.is_negative() {
                ("underrun", -f.delta)
            } else {
                ("overrun", f.delta)
            };
            let _ = writeln!(
                out,
                "fault {} job {} {kind} {}ns",
                self.task_name(f.task),
                f.job,
                amount.as_nanos()
            );
        }
        let _ = writeln!(out, "policy {}", self.policy.label());
        let _ = writeln!(out, "cores {}", self.cores);
        let _ = writeln!(out, "alloc {}", self.alloc.label());
        if self.placement != Placement::Partitioned {
            let _ = writeln!(out, "placement {}", self.placement.label());
        }
        let _ = writeln!(out, "platform {}", self.platform.spec_line());
    }
}

/// A stable content hash of a [`SystemSpec`]: FNV-1a over the system
/// name plus the canonical [`SystemSpec::render_lines`] serialization.
/// The name is deliberately part of the hash (two otherwise identical
/// systems with different names are different specs); the separator
/// byte after it is one no rendering contains, so `("ab", "c")` and
/// `("a", "bc")` never collide.
///
/// This is the hash the serve cache keys warm sessions by and the hash
/// a trace capture header pins its originating spec with — byte-equal
/// specs share a key, any edit gets a fresh one.
pub fn spec_hash(spec: &SystemSpec) -> u64 {
    let mut text = spec.name.clone();
    text.push('\0');
    spec.render_lines(&mut text);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// An analytical question about a [`SystemSpec`]. Every variant maps to
/// a memoized `Analyzer` computation; on a partitioned spec the answer
/// is assembled core by core.
///
/// ```
/// use rtft_core::query::Query;
///
/// let q: Query = "equitable".parse().unwrap();
/// assert_eq!(q, Query::EquitableAllowance);
/// assert_eq!(q.to_line(|_| unreachable!()), "query equitable");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Query {
    /// Is the system schedulable under its policy? (Paper §2: load test
    /// plus exact response-time analysis; processor-demand test under
    /// EDF.)
    Feasibility,
    /// Worst-case response time of every task (`None` per task under
    /// EDF, where the demand test yields no per-task bound).
    WcrtAll,
    /// Per-task detection thresholds: WCRTs under the fixed-priority
    /// policies, relative deadlines under EDF.
    Thresholds,
    /// The paper's §4.2 equitable allowance `A`, per core, with the
    /// inflated-WCRT stop thresholds.
    EquitableAllowance,
    /// The paper's §4.3 system allowance `M_i` for every task, under a
    /// slack policy.
    SystemAllowance(SlackPolicy),
    /// Largest overrun one task can make alone (`M_i` of a single
    /// task), under [`SlackPolicy::ProtectAll`].
    MaxSingleOverrun(TaskId),
    /// Critical cost-scaling factor per core (sensitivity analysis).
    Sensitivity,
}

impl Query {
    /// Stable keyword of this query kind (the token after `query`).
    pub fn keyword(&self) -> &'static str {
        match self {
            Query::Feasibility => "feasibility",
            Query::WcrtAll => "wcrt",
            Query::Thresholds => "thresholds",
            Query::EquitableAllowance => "equitable",
            Query::SystemAllowance(_) => "system-allowance",
            Query::MaxSingleOverrun(_) => "overrun",
            Query::Sensitivity => "sensitivity",
        }
    }

    /// The `query …` spec line. `task_name` resolves ids for the
    /// [`Query::MaxSingleOverrun`] operand (use
    /// [`SystemSpec::task_name`]).
    pub fn to_line(&self, task_name: impl Fn(TaskId) -> String) -> String {
        match self {
            Query::SystemAllowance(policy) => format!("query system-allowance {}", policy.label()),
            Query::MaxSingleOverrun(id) => format!("query overrun {}", task_name(*id)),
            q => format!("query {}", q.keyword()),
        }
    }
}

impl FromStr for Query {
    type Err = String;

    /// Parse an operand-free query keyword. `overrun` (which needs a
    /// task operand) is only reachable through [`parse_batch`], where
    /// task names are in scope.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "feasibility" => Query::Feasibility,
            "wcrt" => Query::WcrtAll,
            "thresholds" => Query::Thresholds,
            "equitable" => Query::EquitableAllowance,
            "system-allowance" => Query::SystemAllowance(SlackPolicy::ProtectAll),
            "sensitivity" => Query::Sensitivity,
            other => {
                return Err(format!(
                    "unknown query `{other}` (expected feasibility|wcrt|thresholds|\
                     equitable|system-allowance|overrun <task>|sensitivity)"
                ))
            }
        })
    }
}

/// One task's answer within a [`Response`]: the owning core and an
/// optional duration (`None` = divergent analysis, or no per-task bound
/// under EDF).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TaskValue {
    /// The task.
    pub task: TaskId,
    /// Display name carried from the spec.
    pub name: String,
    /// Core the task is placed on (0 on a uniprocessor).
    pub core: usize,
    /// The duration answer, when defined.
    pub value: Option<Duration>,
}

/// One core's equitable-allowance answer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CoreAllowance {
    /// The core.
    pub core: usize,
    /// The uniform allowance `A` (`None` = core empty or infeasible).
    pub allowance: Option<Duration>,
    /// Stop thresholds at the allowance: each task's WCRT with every
    /// cost inflated by `A` (deadlines under EDF).
    pub stop_thresholds: Vec<TaskValue>,
}

/// One core's critical cost-scaling factor.
#[derive(Clone, PartialEq, Debug)]
pub struct CoreScale {
    /// The core.
    pub core: usize,
    /// Largest feasible multiplicative factor (`None` = core empty or
    /// infeasible as-is).
    pub factor: Option<f64>,
}

/// The typed answer to a [`Query`]. Produced by `rtft-part`'s
/// `Workbench`; rendered as text or JSON here.
///
/// ```
/// use rtft_core::query::Response;
/// use rtft_core::time::Duration;
///
/// let r = Response::Feasibility {
///     feasible: true,
///     overloaded: false,
///     utilization: 0.5,
/// };
/// assert!(r.render_text(false).contains("feasible"));
/// assert!(r.to_json().starts_with("{\"query\":\"feasibility\""));
/// # let _ = Duration::ZERO;
/// ```
#[derive(Clone, PartialEq, Debug)]
pub enum Response {
    /// Answer to [`Query::Feasibility`].
    Feasibility {
        /// Every core passes its policy's schedulability test.
        feasible: bool,
        /// The load test already fails (`U > 1` on a core).
        overloaded: bool,
        /// Total utilization of the whole set.
        utilization: f64,
    },
    /// Answer to [`Query::WcrtAll`], cores ascending, rank order within
    /// a core.
    WcrtAll(Vec<TaskValue>),
    /// Answer to [`Query::Thresholds`], same order.
    Thresholds(Vec<TaskValue>),
    /// Answer to [`Query::EquitableAllowance`], one entry per occupied
    /// core.
    EquitableAllowance(Vec<CoreAllowance>),
    /// Answer to [`Query::SystemAllowance`].
    SystemAllowance {
        /// Slack policy the search protected.
        policy: SlackPolicy,
        /// `M_i` per task (`None` = the owning core has no allowance).
        per_task: Vec<TaskValue>,
    },
    /// Answer to [`Query::MaxSingleOverrun`].
    MaxSingleOverrun(TaskValue),
    /// Answer to [`Query::Sensitivity`], one entry per occupied core.
    Sensitivity(Vec<CoreScale>),
    /// The allocator found no placement; carries its diagnostics. Every
    /// query on an unplaceable spec yields this.
    Unplaceable(String),
    /// The static pre-flight lint ([`crate::diag::lint_system`]) found
    /// Error-severity findings, so the analyzer never ran. Every query
    /// on a rejected spec yields this.
    Rejected(Vec<crate::diag::Diagnostic>),
}

fn fmt_task_value(out: &mut String, v: &TaskValue, what: &str, none: &str, multicore: bool) {
    if multicore {
        let _ = write!(out, "  [core {}] ", v.core);
    } else {
        out.push_str("  ");
    }
    match v.value {
        Some(d) => {
            let _ = writeln!(out, "{}: {what} = {d}", v.name);
        }
        None => {
            let _ = writeln!(out, "{}: {what} {none}", v.name);
        }
    }
}

/// `None` wording for the response-time queries, where an undefined
/// value means the analysis diverged or the policy is EDF.
const NONE_NO_BOUND: &str = "undefined (divergent or EDF)";
/// `None` wording for the allowance queries, where an undefined value
/// means the owning core's base system is infeasible.
const NONE_INFEASIBLE: &str = "none (infeasible base)";

impl Response {
    /// Human-oriented rendering (the `rtft query` text output).
    /// `multicore` switches on the `[core N]` tags — pass
    /// `spec.cores > 1` so the protocol is stable even when an
    /// allocator happens to pack every task onto core 0.
    pub fn render_text(&self, multicore: bool) -> String {
        let mc = multicore;
        let mut out = String::new();
        match self {
            Response::Feasibility {
                feasible,
                overloaded,
                utilization,
            } => {
                if *overloaded {
                    let _ = writeln!(out, "NOT FEASIBLE: U = {utilization:.4} > 1");
                } else if *feasible {
                    let _ = writeln!(out, "feasible (U = {utilization:.4})");
                } else {
                    let _ = writeln!(out, "NOT FEASIBLE (U = {utilization:.4})");
                }
            }
            Response::WcrtAll(tasks) => {
                for v in tasks {
                    fmt_task_value(&mut out, v, "WCRT", NONE_NO_BOUND, mc);
                }
            }
            Response::Thresholds(tasks) => {
                for v in tasks {
                    fmt_task_value(&mut out, v, "threshold", NONE_NO_BOUND, mc);
                }
            }
            Response::EquitableAllowance(cores) => {
                for c in cores {
                    let prefix = if mc {
                        format!("  [core {}] ", c.core)
                    } else {
                        "  ".to_string()
                    };
                    match c.allowance {
                        Some(a) => {
                            let _ = writeln!(out, "{prefix}equitable allowance A = {a}");
                        }
                        None => {
                            let _ = writeln!(out, "{prefix}no equitable allowance (infeasible)");
                        }
                    }
                    for v in &c.stop_thresholds {
                        fmt_task_value(&mut out, v, "stop threshold", NONE_NO_BOUND, mc);
                    }
                }
            }
            Response::SystemAllowance { policy, per_task } => {
                let _ = writeln!(out, "  slack policy: {}", policy.label());
                for v in per_task {
                    fmt_task_value(&mut out, v, "M", NONE_INFEASIBLE, mc);
                }
            }
            Response::MaxSingleOverrun(v) => {
                fmt_task_value(&mut out, v, "max single overrun", NONE_INFEASIBLE, mc);
            }
            Response::Sensitivity(cores) => {
                for c in cores {
                    let prefix = if mc {
                        format!("  [core {}] ", c.core)
                    } else {
                        "  ".to_string()
                    };
                    match c.factor {
                        Some(f) => {
                            let _ = writeln!(out, "{prefix}cost scaling margin f = {f:.9}");
                        }
                        None => {
                            let _ = writeln!(out, "{prefix}no scaling margin (infeasible)");
                        }
                    }
                }
            }
            Response::Unplaceable(diag) => {
                let _ = writeln!(out, "  UNPLACEABLE: {diag}");
            }
            Response::Rejected(diags) => {
                let (errors, _, _) = crate::diag::counts(diags);
                let _ = writeln!(
                    out,
                    "  REJECTED ({errors} lint error{})",
                    if errors == 1 { "" } else { "s" }
                );
                for d in diags {
                    let _ = writeln!(out, "    {}", d.to_line());
                }
            }
        }
        out
    }

    /// One JSON object for this response (hand-rolled, like the
    /// campaign report's JSON — the workspace has no serde).
    pub fn to_json(&self) -> String {
        fn opt_ns(v: Option<Duration>) -> String {
            v.map_or("null".to_string(), |d| d.as_nanos().to_string())
        }
        fn tasks_json(tasks: &[TaskValue]) -> String {
            let items: Vec<String> = tasks
                .iter()
                .map(|t| {
                    format!(
                        "{{\"task\":{},\"name\":{},\"core\":{},\"ns\":{}}}",
                        t.task.0,
                        json_string(&t.name),
                        t.core,
                        opt_ns(t.value)
                    )
                })
                .collect();
            format!("[{}]", items.join(","))
        }
        match self {
            Response::Feasibility {
                feasible,
                overloaded,
                utilization,
            } => format!(
                "{{\"query\":\"feasibility\",\"feasible\":{feasible},\
                 \"overloaded\":{overloaded},\"utilization\":{utilization:.6}}}"
            ),
            Response::WcrtAll(tasks) => {
                format!("{{\"query\":\"wcrt\",\"tasks\":{}}}", tasks_json(tasks))
            }
            Response::Thresholds(tasks) => {
                format!(
                    "{{\"query\":\"thresholds\",\"tasks\":{}}}",
                    tasks_json(tasks)
                )
            }
            Response::EquitableAllowance(cores) => {
                let items: Vec<String> = cores
                    .iter()
                    .map(|c| {
                        format!(
                            "{{\"core\":{},\"allowance_ns\":{},\"stop_thresholds\":{}}}",
                            c.core,
                            opt_ns(c.allowance),
                            tasks_json(&c.stop_thresholds)
                        )
                    })
                    .collect();
                format!(
                    "{{\"query\":\"equitable\",\"cores\":[{}]}}",
                    items.join(",")
                )
            }
            Response::SystemAllowance { policy, per_task } => format!(
                "{{\"query\":\"system-allowance\",\"policy\":\"{}\",\"tasks\":{}}}",
                policy.label(),
                tasks_json(per_task)
            ),
            Response::MaxSingleOverrun(v) => format!(
                "{{\"query\":\"overrun\",\"task\":{},\"name\":{},\"core\":{},\"ns\":{}}}",
                v.task.0,
                json_string(&v.name),
                v.core,
                opt_ns(v.value)
            ),
            Response::Sensitivity(cores) => {
                let items: Vec<String> = cores
                    .iter()
                    .map(|c| {
                        format!(
                            "{{\"core\":{},\"factor\":{}}}",
                            c.core,
                            c.factor.map_or("null".to_string(), |f| format!("{f:.9}"))
                        )
                    })
                    .collect();
                format!(
                    "{{\"query\":\"sensitivity\",\"cores\":[{}]}}",
                    items.join(",")
                )
            }
            Response::Unplaceable(diag) => format!(
                "{{\"query\":\"unplaceable\",\"diagnostics\":{}}}",
                json_string(diag)
            ),
            Response::Rejected(diags) => {
                let items: Vec<String> =
                    diags.iter().map(crate::diag::Diagnostic::to_json).collect();
                format!(
                    "{{\"query\":\"rejected\",\"diagnostics\":[{}]}}",
                    items.join(",")
                )
            }
        }
    }
}

/// Escape a string's content for JSON embedding (no surrounding
/// quotes) — the one escape table every hand-rolled JSON emission in
/// the workspace uses (the campaign report delegates here).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A quoted JSON string literal.
fn json_string(s: &str) -> String {
    format!("\"{}\"", json_escape(s))
}

/// Render a whole batch of responses as one text document — the
/// `rtft query` output and the `rtft-serve` `POST /query` body, byte
/// for byte: a `system` header line, then each query line followed by
/// its response rendering.
pub fn render_responses_text(
    spec: &SystemSpec,
    queries: &[Query],
    responses: &[Response],
) -> String {
    let mut out = String::new();
    // Global placement is called out explicitly; the partitioned header
    // stays byte-identical to the pinned pre-placement golden.
    let placement_tag = match spec.placement {
        Placement::Partitioned => String::new(),
        Placement::Global => format!(", placement {}", spec.placement),
    };
    let _ = writeln!(
        out,
        "system {} ({} tasks, policy {}, {} cores, alloc {}{placement_tag})",
        spec.name,
        spec.set.len(),
        spec.policy,
        spec.cores,
        spec.alloc
    );
    for (q, r) in queries.iter().zip(responses) {
        let _ = writeln!(out, "{}", q.to_line(|id| spec.task_name(id)));
        out.push_str(&r.render_text(spec.cores > 1));
    }
    out
}

/// Render a whole batch of responses as one JSON document (the
/// `rtft query --json` output).
pub fn render_responses_json(spec: &SystemSpec, responses: &[Response]) -> String {
    let items: Vec<String> = responses.iter().map(Response::to_json).collect();
    // As in the text header, the placement field appears only on global
    // specs so the pinned partitioned golden stays byte-identical.
    let placement_field = match spec.placement {
        Placement::Partitioned => String::new(),
        Placement::Global => format!("\n  \"placement\": \"{}\",", spec.placement.label()),
    };
    format!(
        "{{\n  \"system\": {},\n  \"policy\": \"{}\",\n  \"cores\": {},\n  \"alloc\": \"{}\",\
         {placement_field}\n  \"responses\": [\n    {}\n  ]\n}}\n",
        json_string(&spec.name),
        spec.policy.label(),
        spec.cores,
        spec.alloc.label(),
        items.join(",\n    ")
    )
}

/// A query-batch parse failure with its 1-based line number (0 for
/// whole-batch problems).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QueryParseError {
    /// Offending line (0 when not tied to a line).
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "query batch error: {}", self.message)
        } else {
            write!(
                f,
                "query batch error at line {}: {}",
                self.line, self.message
            )
        }
    }
}

impl std::error::Error for QueryParseError {}

/// Render a [`SystemSpec`] plus its queries as a batch file.
/// Round-trips through [`parse_batch`].
pub fn render_batch(spec: &SystemSpec, queries: &[Query]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "system {}", spec.name);
    spec.render_lines(&mut out);
    for q in queries {
        let _ = writeln!(out, "{}", q.to_line(|id| spec.task_name(id)));
    }
    out
}

/// Parse a query batch: `system` + `task`/`fault`/`policy`/`cores`/
/// `alloc`/`placement`/`platform` lines followed by `query` lines (see the
/// [module docs](self) for the grammar). Task ids are assigned in file
/// order starting at 1, exactly as campaign inline sets do.
///
/// # Errors
/// [`QueryParseError`] with the offending line number.
pub fn parse_batch(text: &str) -> Result<(SystemSpec, Vec<Query>), QueryParseError> {
    let mut name = "system".to_string();
    let mut tasks: Vec<TaskSpec> = Vec::new();
    let mut names: BTreeMap<String, TaskId> = BTreeMap::new();
    let mut faults: Vec<FaultEntry> = Vec::new();
    let mut policy = PolicyKind::FixedPriority;
    let mut cores = 1usize;
    let mut alloc = AllocPolicy::FirstFitDecreasing;
    let mut placement = Placement::Partitioned;
    let mut platform = PlatformModel::EXACT;
    let mut queries: Vec<Query> = Vec::new();
    let mut next_id: u32 = 1;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let words: Vec<&str> = line.split_ascii_whitespace().collect();
        let err = |message: String| QueryParseError {
            line: line_no,
            message,
        };

        match words[0] {
            "system" => {
                name = words[1..].join(" ");
                if name.is_empty() {
                    return Err(err("system: missing name".into()));
                }
            }
            "task" => {
                if !(6..=7).contains(&words.len()) {
                    return Err(err(
                        "expected: task <name> <priority> <period> <deadline> <cost> [offset]"
                            .into(),
                    ));
                }
                let task_name = words[1].to_string();
                if names.contains_key(&task_name) {
                    return Err(err(format!("duplicate task name `{task_name}`")));
                }
                let priority: i32 = words[2]
                    .parse()
                    .map_err(|e| err(format!("bad priority `{}`: {e}", words[2])))?;
                let period: Duration = words[3].parse().map_err(&err)?;
                let deadline: Duration = words[4].parse().map_err(&err)?;
                let cost: Duration = words[5].parse().map_err(&err)?;
                let mut b = TaskBuilder::new(next_id, priority, period, cost)
                    .name(task_name.clone())
                    .deadline(deadline);
                if words.len() == 7 {
                    b = b.offset(words[6].parse().map_err(&err)?);
                }
                names.insert(task_name, TaskId(next_id));
                next_id += 1;
                tasks.push(b.build());
            }
            "fault" => {
                if words.len() != 6 || words[2] != "job" {
                    return Err(err(
                        "expected: fault <task> job <n> overrun|underrun <duration>".into(),
                    ));
                }
                let id = *names
                    .get(words[1])
                    .ok_or_else(|| err(format!("unknown task `{}`", words[1])))?;
                let job: u64 = words[3]
                    .parse()
                    .map_err(|e| err(format!("bad job index `{}`: {e}", words[3])))?;
                let amount: Duration = words[5].parse().map_err(&err)?;
                let delta = match words[4] {
                    "overrun" => amount,
                    "underrun" => -amount,
                    other => return Err(err(format!("unknown fault kind `{other}`"))),
                };
                faults.push(FaultEntry {
                    task: id,
                    job,
                    delta,
                });
            }
            "policy" => {
                let word = words
                    .get(1)
                    .ok_or_else(|| err("policy: expected fp|edf|npfp".into()))?;
                policy = word.parse().map_err(&err)?;
            }
            "cores" => {
                let n: usize = words
                    .get(1)
                    .ok_or_else(|| err("cores: missing count".into()))
                    .and_then(|w| {
                        w.parse()
                            .map_err(|e| err(format!("bad core count `{w}`: {e}")))
                    })?;
                if n == 0 {
                    return Err(err("cores: count must be ≥ 1".into()));
                }
                cores = n;
            }
            "alloc" => {
                let word = words
                    .get(1)
                    .ok_or_else(|| err("alloc: expected ffd|bfd|wfd|exhaustive".into()))?;
                alloc = word.parse().map_err(&err)?;
            }
            "placement" => {
                let word = words
                    .get(1)
                    .ok_or_else(|| err("placement: expected partitioned|global".into()))?;
                placement = word.parse().map_err(&err)?;
            }
            "platform" => platform = PlatformModel::parse_tokens(&words[1..]).map_err(&err)?,
            "query" => {
                let word = words
                    .get(1)
                    .copied()
                    .ok_or_else(|| err("query: missing keyword".into()))?;
                let q = match word {
                    "overrun" => {
                        let target = words
                            .get(2)
                            .ok_or_else(|| err("overrun: missing task name".into()))?;
                        let id = *names
                            .get(*target)
                            .ok_or_else(|| err(format!("unknown task `{target}`")))?;
                        Query::MaxSingleOverrun(id)
                    }
                    "system-allowance" => {
                        let policy = match words.get(2) {
                            None => SlackPolicy::ProtectAll,
                            Some(w) => w.parse().map_err(&err)?,
                        };
                        Query::SystemAllowance(policy)
                    }
                    other => other.parse().map_err(&err)?,
                };
                queries.push(q);
            }
            other => return Err(err(format!("unknown directive `{other}`"))),
        }
    }

    // Fault targets need no post-validation: every entry's id was
    // resolved through the `names` map, so it is necessarily in `set`.
    let set = TaskSet::new(tasks).map_err(|e| QueryParseError {
        line: 0,
        message: format!("task set invalid: {e}"),
    })?;
    Ok((
        SystemSpec {
            name,
            set,
            policy,
            cores,
            alloc,
            placement,
            faults,
            platform,
        },
        queries,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: i64) -> Duration {
        Duration::millis(v)
    }

    fn paper_spec() -> SystemSpec {
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 20, ms(200), ms(29))
                .name("tau1")
                .deadline(ms(70))
                .build(),
            TaskBuilder::new(2, 18, ms(250), ms(29))
                .name("tau2")
                .deadline(ms(120))
                .build(),
            TaskBuilder::new(3, 16, ms(1500), ms(29))
                .name("tau3")
                .deadline(ms(120))
                .build(),
        ]);
        SystemSpec::uniprocessor("paper", set)
    }

    #[test]
    fn batch_round_trips() {
        let mut spec = paper_spec();
        spec.faults.push(FaultEntry {
            task: TaskId(1),
            job: 5,
            delta: ms(40),
        });
        spec.faults.push(FaultEntry {
            task: TaskId(2),
            job: 3,
            delta: -ms(5),
        });
        let queries = vec![
            Query::Feasibility,
            Query::WcrtAll,
            Query::Thresholds,
            Query::EquitableAllowance,
            Query::SystemAllowance(SlackPolicy::ProtectOthers),
            Query::MaxSingleOverrun(TaskId(2)),
            Query::Sensitivity,
        ];
        let text = render_batch(&spec, &queries);
        let (back_spec, back_queries) = parse_batch(&text).unwrap();
        assert_eq!(back_spec, spec);
        assert_eq!(back_queries, queries);
        // Idempotent: a second round trip renders the same bytes.
        assert_eq!(render_batch(&back_spec, &back_queries), text);
    }

    #[test]
    fn multicore_platform_options_round_trip() {
        let mut spec = paper_spec().with_cores(4, AllocPolicy::WorstFitDecreasing);
        spec.policy = PolicyKind::NonPreemptiveFp;
        spec.platform = PlatformModel {
            quantum: Some(ms(10)),
            poll: ms(1),
            poll_overhead: Duration::micros(20),
            dispatch: Duration::micros(5),
            detector_fire: Duration::micros(7),
        };
        let text = render_batch(&spec, &[Query::Feasibility]);
        assert!(text.contains("platform jrate poll=1000000ns"), "{text}");
        let (back, _) = parse_batch(&text).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        for (text, needle) in [
            ("bogus\n", "unknown directive"),
            ("task a 1 10ms 10ms\n", "expected: task"),
            ("task a x 10ms 10ms 5ms\n", "bad priority"),
            ("fault a job 0 overrun 5ms\n", "unknown task"),
            ("query sideways\n", "unknown query"),
            ("query overrun ghost\n", "unknown task"),
            ("cores 0\n", "must be ≥ 1"),
            ("policy sideways\n", "unknown policy"),
            ("alloc sideways\n", "unknown allocator"),
            ("platform quantum=abc\n", "bad duration"),
        ] {
            let e = parse_batch(&format!("task ok 1 10ms 10ms 1ms\n{text}")).unwrap_err();
            assert!(e.message.contains(needle), "{text}: {e}");
            assert_eq!(e.line, 2, "{text}");
        }
    }

    #[test]
    fn empty_task_set_is_rejected() {
        let e = parse_batch("system empty\nquery feasibility\n").unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.message.contains("task set invalid"), "{e}");
    }

    #[test]
    fn responses_render_as_json_objects() {
        let r = Response::WcrtAll(vec![TaskValue {
            task: TaskId(1),
            name: "tau1".into(),
            core: 0,
            value: Some(ms(29)),
        }]);
        assert_eq!(
            r.to_json(),
            "{\"query\":\"wcrt\",\"tasks\":[{\"task\":1,\"name\":\"tau1\",\
             \"core\":0,\"ns\":29000000}]}"
        );
        let u = Response::Unplaceable("no \"fit\"".into());
        assert!(u.to_json().contains("\\\"fit\\\""));
        let doc = render_responses_json(&paper_spec(), &[r]);
        assert!(doc.starts_with("{\n  \"system\": \"paper\""), "{doc}");
        assert!(doc.ends_with("]\n}\n"), "{doc}");
    }

    #[test]
    fn placement_round_trips_and_defaults_render_nothing() {
        // Default placement emits no line, so legacy renderings are
        // byte-identical to the pre-placement grammar.
        let spec = paper_spec();
        let text = render_batch(&spec, &[Query::Feasibility]);
        assert!(!text.contains("placement"), "{text}");
        assert_eq!(
            parse_batch(&text).unwrap().0.placement,
            Placement::Partitioned
        );

        let spec = paper_spec()
            .with_cores(2, AllocPolicy::FirstFitDecreasing)
            .with_placement(Placement::Global);
        let text = render_batch(&spec, &[Query::Feasibility]);
        assert!(text.contains("placement global"), "{text}");
        let (back, _) = parse_batch(&text).unwrap();
        assert_eq!(back, spec);

        // The alias and the error path.
        assert_eq!("part".parse::<Placement>().unwrap(), Placement::Partitioned);
        assert!("sideways".parse::<Placement>().is_err());
        let e = parse_batch("task a 1 10ms 10ms 1ms\nplacement sideways\n").unwrap_err();
        assert!(e.message.contains("unknown placement"), "{e}");

        // Global headers are tagged; partitioned headers stay pinned.
        let doc = render_responses_text(&spec, &[], &[]);
        assert!(doc.contains(", placement global)"), "{doc}");
        let json = render_responses_json(&spec, &[]);
        assert!(json.contains("\"placement\": \"global\""), "{json}");
        let json = render_responses_json(&paper_spec(), &[]);
        assert!(!json.contains("placement"), "{json}");
    }

    #[test]
    fn alloc_policy_labels_round_trip() {
        for a in [
            AllocPolicy::FirstFitDecreasing,
            AllocPolicy::BestFitDecreasing,
            AllocPolicy::WorstFitDecreasing,
            AllocPolicy::Exhaustive,
        ] {
            assert_eq!(a.label().parse::<AllocPolicy>().unwrap(), a);
            assert_eq!(a.to_string(), a.label());
        }
        assert!("sideways".parse::<AllocPolicy>().is_err());
    }
}
