//! Admission control — the paper's Section 2.3.
//!
//! The RTSJ exposes `addToFeasibility()` / `removeFromFeasibility()` on
//! schedulables, but the reference implementation returned wrong answers
//! and jRate left the methods unimplemented. This module is the "deficient
//! methods of RI and missing ones in jRate" that the authors wrote: an
//! [`AdmissionController`] maintaining the currently admitted set and
//! answering feasibility queries with the exact analysis of
//! [`crate::response`], preceded by the cheap load test of
//! [`crate::utilization`].

use crate::allowance::SlackPolicy;
use crate::error::{AnalysisError, ModelError};
use crate::task::{TaskId, TaskSet, TaskSpec};
use crate::time::Duration;

/// Per-task line of a feasibility report.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TaskFeasibility {
    /// The task.
    pub task: TaskId,
    /// Its worst-case response time, `None` when the analysis diverges.
    pub wcrt: Option<Duration>,
    /// Relative deadline, for reference.
    pub deadline: Duration,
    /// `wcrt ≤ deadline`.
    pub feasible: bool,
}

impl TaskFeasibility {
    /// Slack `D − WCRT` (negative = miss), `None` when divergent.
    pub fn slack(&self) -> Option<Duration> {
        self.wcrt.map(|w| self.deadline - w)
    }
}

/// Full admission-control report for a task set.
#[derive(Clone, PartialEq, Debug)]
pub struct FeasibilityReport {
    /// Total utilization.
    pub utilization: f64,
    /// `true` iff the load test alone already proves infeasibility.
    pub overloaded: bool,
    /// Per-task verdicts, priority-rank order. Empty when `overloaded`.
    pub per_task: Vec<TaskFeasibility>,
}

impl FeasibilityReport {
    /// Overall verdict.
    pub fn is_feasible(&self) -> bool {
        !self.overloaded && self.per_task.iter().all(|t| t.feasible)
    }

    /// Tasks that would miss deadlines.
    pub fn violations(&self) -> Vec<TaskId> {
        self.per_task
            .iter()
            .filter(|t| !t.feasible)
            .map(|t| t.task)
            .collect()
    }
}

/// Outcome of an admission request.
#[derive(Clone, PartialEq, Debug)]
pub enum Admission {
    /// The task joined the set; the report covers the *new* system.
    Admitted(FeasibilityReport),
    /// Admission would break feasibility; the set is unchanged and the
    /// report shows what would have gone wrong.
    Rejected(FeasibilityReport),
}

impl Admission {
    /// `true` for [`Admission::Admitted`].
    pub fn is_admitted(&self) -> bool {
        matches!(self, Admission::Admitted(_))
    }

    /// The report either way.
    pub fn report(&self) -> &FeasibilityReport {
        match self {
            Admission::Admitted(r) | Admission::Rejected(r) => r,
        }
    }
}

/// Stateful admission controller: the working implementation of the RTSJ
/// `addToFeasibility` / `removeFromFeasibility` contract, also used by the
/// dynamic-system extension (paper §7) to re-admit at run time.
///
/// The feasibility gate follows the controller's scheduling policy
/// (fixed-priority preemptive by default; see
/// [`crate::policy::PolicyKind`]).
#[derive(Clone, Debug, Default)]
pub struct AdmissionController {
    tasks: Vec<TaskSpec>,
    policy: crate::policy::PolicyKind,
}

impl AdmissionController {
    /// Empty controller under fixed-priority dispatch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty controller whose gate analyses for `policy`.
    pub fn with_policy(policy: crate::policy::PolicyKind) -> Self {
        AdmissionController {
            tasks: Vec::new(),
            policy,
        }
    }

    /// Controller pre-loaded with an existing set.
    pub fn with_set(set: &TaskSet) -> Self {
        AdmissionController {
            tasks: set.tasks().to_vec(),
            policy: crate::policy::PolicyKind::FixedPriority,
        }
    }

    /// The scheduling policy the gate analyses for.
    pub fn policy(&self) -> crate::policy::PolicyKind {
        self.policy
    }

    /// Number of admitted tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when no task is admitted.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Currently admitted set, if non-empty.
    pub fn current_set(&self) -> Option<TaskSet> {
        TaskSet::new(self.tasks.clone()).ok()
    }

    /// RTSJ `addToFeasibility`: admit `spec` iff the resulting system is
    /// feasible. On rejection the controller is left unchanged.
    ///
    /// # Errors
    /// Model errors (duplicate id, bad parameters) and analysis errors
    /// (iteration guard) are reported as-is.
    pub fn add_to_feasibility(&mut self, spec: TaskSpec) -> Result<Admission, AdmissionError> {
        let mut candidate = self.tasks.clone();
        candidate.push(spec);
        let set = TaskSet::new(candidate).map_err(AdmissionError::Model)?;
        let report = crate::analyzer::Analyzer::for_policy(&set, self.policy)
            .report()
            .map_err(AdmissionError::Analysis)?;
        if report.is_feasible() {
            self.tasks = set.tasks().to_vec();
            Ok(Admission::Admitted(report))
        } else {
            Ok(Admission::Rejected(report))
        }
    }

    /// Force a task in without the feasibility gate (RTSJ allows starting
    /// non-admitted schedulables; detectors also bypass admission since
    /// their cost is accounted as scheduling overhead, paper §6.2).
    pub fn add_unchecked(&mut self, spec: TaskSpec) -> Result<(), AdmissionError> {
        let mut candidate = self.tasks.clone();
        candidate.push(spec);
        let set = TaskSet::new(candidate).map_err(AdmissionError::Model)?;
        self.tasks = set.tasks().to_vec();
        Ok(())
    }

    /// RTSJ `removeFromFeasibility`.
    pub fn remove_from_feasibility(&mut self, id: TaskId) -> Result<(), AdmissionError> {
        let before = self.tasks.len();
        self.tasks.retain(|t| t.id != id);
        if self.tasks.len() == before {
            Err(AdmissionError::Model(ModelError::UnknownTask(id)))
        } else {
            Ok(())
        }
    }

    /// Feasibility report of the current set.
    pub fn report(&self) -> Result<FeasibilityReport, AdmissionError> {
        let mut session = self.session()?;
        session.report().map_err(AdmissionError::Analysis)
    }

    /// Equitable allowance of the current set (`None` if infeasible).
    pub fn equitable_allowance(
        &self,
    ) -> Result<Option<crate::allowance::EquitableAllowance>, AdmissionError> {
        let mut session = self.session()?;
        session
            .equitable_allowance()
            .map_err(AdmissionError::Analysis)
    }

    /// System allowance of the current set (`None` if infeasible).
    pub fn system_allowance(
        &self,
        policy: SlackPolicy,
    ) -> Result<Option<crate::allowance::SystemAllowance>, AdmissionError> {
        let mut session = self.session()?;
        session
            .system_allowance_with(policy)
            .map_err(AdmissionError::Analysis)
    }

    /// A fresh [`crate::analyzer::Analyzer`] session over the admitted
    /// set — the handle long-lived callers should keep (and feed back
    /// through [`crate::analyzer::Analyzer::admit`]) instead of
    /// re-querying this controller per change.
    pub fn session(&self) -> Result<crate::analyzer::Analyzer, AdmissionError> {
        let set = TaskSet::new(self.tasks.clone()).map_err(AdmissionError::Model)?;
        Ok(crate::analyzer::Analyzer::for_policy(&set, self.policy))
    }
}

/// Errors from the admission controller.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AdmissionError {
    /// Task-model violation.
    Model(ModelError),
    /// Analysis failure.
    Analysis(AnalysisError),
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::Model(e) => write!(f, "admission model error: {e}"),
            AdmissionError::Analysis(e) => write!(f, "admission analysis error: {e}"),
        }
    }
}

impl std::error::Error for AdmissionError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::Analyzer;
    use crate::task::TaskBuilder;

    fn ms(v: i64) -> Duration {
        Duration::millis(v)
    }

    fn table2_specs() -> Vec<TaskSpec> {
        vec![
            TaskBuilder::new(1, 20, ms(200), ms(29))
                .deadline(ms(70))
                .build(),
            TaskBuilder::new(2, 18, ms(250), ms(29))
                .deadline(ms(120))
                .build(),
            TaskBuilder::new(3, 16, ms(1500), ms(29))
                .deadline(ms(120))
                .build(),
        ]
    }

    #[test]
    fn paper_system_is_admitted_task_by_task() {
        let mut ac = AdmissionController::new();
        for spec in table2_specs() {
            let adm = ac.add_to_feasibility(spec).unwrap();
            assert!(adm.is_admitted());
        }
        let report = ac.report().unwrap();
        assert!(report.is_feasible());
        let wcrts: Vec<i64> = report
            .per_task
            .iter()
            .map(|t| t.wcrt.unwrap().as_millis())
            .collect();
        assert_eq!(wcrts, vec![29, 58, 87]);
    }

    #[test]
    fn infeasible_addition_is_rejected_and_rolled_back() {
        let mut ac = AdmissionController::new();
        for spec in table2_specs() {
            ac.add_to_feasibility(spec).unwrap();
        }
        // A hog that would push τ3 over its deadline: priority above τ3,
        // cost 40 ms, period 300 ms → R3 = 87 + 40 > 120.
        let hog = TaskBuilder::new(4, 17, ms(300), ms(40))
            .deadline(ms(300))
            .build();
        let adm = ac.add_to_feasibility(hog).unwrap();
        assert!(!adm.is_admitted());
        assert_eq!(adm.report().violations(), vec![TaskId(3)]);
        // Controller unchanged.
        assert_eq!(ac.len(), 3);
        assert!(ac.report().unwrap().is_feasible());
    }

    #[test]
    fn removal_restores_feasibility() {
        let mut ac = AdmissionController::new();
        for spec in table2_specs() {
            ac.add_to_feasibility(spec).unwrap();
        }
        ac.add_unchecked(TaskBuilder::new(4, 17, ms(300), ms(40)).build())
            .unwrap();
        assert!(!ac.report().unwrap().is_feasible());
        ac.remove_from_feasibility(TaskId(4)).unwrap();
        assert!(ac.report().unwrap().is_feasible());
        assert!(matches!(
            ac.remove_from_feasibility(TaskId(4)),
            Err(AdmissionError::Model(ModelError::UnknownTask(TaskId(4))))
        ));
    }

    #[test]
    fn overload_short_circuits() {
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 2, ms(10), ms(8)).build(),
            TaskBuilder::new(2, 1, ms(10), ms(8)).build(),
        ]);
        let report = Analyzer::new(&set).report().unwrap();
        assert!(report.overloaded);
        assert!(!report.is_feasible());
        assert!(report.per_task.is_empty());
        assert!((report.utilization - 1.6).abs() < 1e-12);
    }

    #[test]
    fn exactly_full_load_is_analysed_not_short_circuited() {
        // U = 1 exactly: the load test is inconclusive and the exact
        // analysis must run. Here the set is feasible right at the limit.
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 2, ms(4), ms(2)).build(),
            TaskBuilder::new(2, 1, ms(8), ms(4)).build(),
        ]);
        let report = Analyzer::new(&set).report().unwrap();
        assert!(!report.overloaded);
        assert!((report.utilization - 1.0).abs() < 1e-12);
        assert!(report.is_feasible());
        assert_eq!(report.per_task[1].wcrt, Some(ms(8)));
        assert_eq!(report.per_task[1].slack(), Some(ms(0)));
    }

    #[test]
    fn slack_is_reported() {
        let mut ac = AdmissionController::new();
        for spec in table2_specs() {
            ac.add_to_feasibility(spec).unwrap();
        }
        let report = ac.report().unwrap();
        let slacks: Vec<i64> = report
            .per_task
            .iter()
            .map(|t| t.slack().unwrap().as_millis())
            .collect();
        // 70−29, 120−58, 120−87
        assert_eq!(slacks, vec![41, 62, 33]);
    }

    #[test]
    fn allowances_via_controller() {
        let mut ac = AdmissionController::new();
        for spec in table2_specs() {
            ac.add_to_feasibility(spec).unwrap();
        }
        let eq = ac.equitable_allowance().unwrap().unwrap();
        assert_eq!(eq.allowance, ms(11));
        let sa = ac
            .system_allowance(SlackPolicy::ProtectAll)
            .unwrap()
            .unwrap();
        assert_eq!(sa.max_overrun[0], ms(33));
    }

    #[test]
    fn duplicate_id_is_a_model_error() {
        let mut ac = AdmissionController::new();
        ac.add_to_feasibility(TaskBuilder::new(1, 2, ms(10), ms(1)).build())
            .unwrap();
        let dup = ac.add_to_feasibility(TaskBuilder::new(1, 3, ms(20), ms(1)).build());
        assert!(matches!(
            dup,
            Err(AdmissionError::Model(ModelError::DuplicateId(TaskId(1))))
        ));
    }
}
