//! Serialization contract of the query plane, property-tested:
//! `parse_batch ∘ render_batch` is the identity on normalized
//! `(SystemSpec, Vec<Query>)` values, and `render_batch` is a fixed
//! point of the round trip (printing a re-parsed batch reproduces the
//! bytes). Random batches span every axis the line grammar names —
//! task shapes with ns-granular parameters and offsets, fault
//! overruns/underruns, all three policies, multicore placements, every
//! allocator, quantized platforms with overhead charges, and every
//! query kind.

use proptest::prelude::*;
use rtft_core::allowance::SlackPolicy;
use rtft_core::policy::PolicyKind;
use rtft_core::query::{
    parse_batch, render_batch, AllocPolicy, FaultEntry, Placement, PlatformModel, Query, SystemSpec,
};
use rtft_core::task::{TaskBuilder, TaskId, TaskSet};
use rtft_core::time::Duration;

/// SplitMix64 — one seed fans out into all task/fault parameters, which
/// keeps the strategy tuple small for the vendored proptest.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

const ALLOCS: [AllocPolicy; 4] = [
    AllocPolicy::FirstFitDecreasing,
    AllocPolicy::BestFitDecreasing,
    AllocPolicy::WorstFitDecreasing,
    AllocPolicy::Exhaustive,
];

/// A random spec + queries from one seed. Tasks get ns-granular
/// parameters (exercising the `<n>ns` serialization, not just the ms
/// sugar) and ids in file order, like the parser assigns them.
fn batch_from_seed(
    seed: u64,
    n: usize,
    policy: PolicyKind,
    cores: usize,
    alloc: AllocPolicy,
    placement: Placement,
) -> (SystemSpec, Vec<Query>) {
    let mut rng = Rng(seed);
    let mut specs = Vec::with_capacity(n);
    for i in 0..n {
        let period = Duration::nanos(1_000_000 + rng.below(500_000_000) as i64);
        let cost = Duration::nanos(1 + rng.below(period.as_nanos() as u64 / 2) as i64);
        let deadline =
            cost + Duration::nanos(rng.below((period - cost).as_nanos() as u64 + 1) as i64);
        let mut b = TaskBuilder::new(i as u32 + 1, -(i as i32), period, cost)
            .name(format!("t{}", i + 1))
            .deadline(deadline.max(Duration::NANO));
        if rng.below(2) == 0 {
            b = b.offset(Duration::nanos(rng.below(1_000_000_000) as i64));
        }
        specs.push(b.build());
    }
    let set = TaskSet::from_specs(specs);
    let mut faults = Vec::new();
    for _ in 0..rng.below(4) {
        let task = TaskId(rng.below(n as u64) as u32 + 1);
        let magnitude = Duration::nanos(1 + rng.below(50_000_000) as i64);
        faults.push(FaultEntry {
            task,
            job: rng.below(16),
            delta: if rng.below(3) == 0 {
                -magnitude
            } else {
                magnitude
            },
        });
    }
    let platform = match rng.below(4) {
        0 => PlatformModel::EXACT,
        1 => PlatformModel::jrate(),
        _ => PlatformModel {
            quantum: (rng.below(2) == 0).then(|| Duration::nanos(1 + rng.below(20_000_000) as i64)),
            poll: Duration::nanos(rng.below(2) as i64 * 1_000_000),
            poll_overhead: Duration::nanos(rng.below(20_000) as i64),
            dispatch: Duration::nanos(rng.below(20_000) as i64),
            detector_fire: Duration::nanos(rng.below(20_000) as i64),
        },
    };
    let spec = SystemSpec {
        name: format!("batch-{seed}"),
        set,
        policy,
        cores,
        alloc,
        placement,
        faults,
        platform,
    };
    let pool = [
        Query::Feasibility,
        Query::WcrtAll,
        Query::Thresholds,
        Query::EquitableAllowance,
        Query::SystemAllowance(SlackPolicy::ProtectAll),
        Query::SystemAllowance(SlackPolicy::ProtectOthers),
        Query::MaxSingleOverrun(TaskId(rng.below(n as u64) as u32 + 1)),
        Query::Sensitivity,
    ];
    let queries = (0..1 + rng.below(8))
        .map(|_| pool[rng.below(pool.len() as u64) as usize])
        .collect();
    (spec, queries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// parse ∘ print == id on normalized batches, and printing is a
    /// fixed point of the round trip.
    #[test]
    fn parse_print_is_identity(
        seed in 0u64..1_000_000,
        n in 1usize..=6,
        policy_idx in 0usize..3,
        cores in 1usize..=4,
        alloc_idx in 0usize..4,
        placement_idx in 0usize..2,
    ) {
        let (raw_spec, queries) = batch_from_seed(
            seed,
            n,
            PolicyKind::ALL[policy_idx],
            cores,
            ALLOCS[alloc_idx],
            Placement::ALL[placement_idx],
        );
        // Normalize once: rendering emits tasks in rank order and the
        // parser assigns ids in file order, so one round trip settles
        // id numbering (exactly as a user-authored file would have it).
        let text = render_batch(&raw_spec, &queries);
        let (spec, parsed_queries) = parse_batch(&text).expect("rendered batches parse");
        prop_assert_eq!(&parsed_queries, &queries);
        prop_assert_eq!(spec.set.len(), raw_spec.set.len());
        prop_assert_eq!(spec.policy, raw_spec.policy);
        prop_assert_eq!(spec.cores, raw_spec.cores);
        prop_assert_eq!(spec.alloc, raw_spec.alloc);
        prop_assert_eq!(spec.placement, raw_spec.placement);
        prop_assert_eq!(spec.platform, raw_spec.platform);
        prop_assert_eq!(spec.faults.len(), raw_spec.faults.len());

        // The normalized value is a true fixed point: parse ∘ print == id…
        let printed = render_batch(&spec, &parsed_queries);
        let (again_spec, again_queries) = parse_batch(&printed).expect("round trip parses");
        prop_assert_eq!(&again_spec, &spec);
        prop_assert_eq!(&again_queries, &parsed_queries);
        // …and so is the rendering itself, byte for byte.
        prop_assert_eq!(render_batch(&again_spec, &again_queries), printed);
    }

    /// Every per-task parameter survives the round trip exactly
    /// (matched by name — ids are positional).
    #[test]
    fn task_parameters_survive_exactly(
        seed in 0u64..1_000_000,
        n in 1usize..=6,
    ) {
        let (raw_spec, queries) = batch_from_seed(
            seed,
            n,
            PolicyKind::FixedPriority,
            1,
            AllocPolicy::FirstFitDecreasing,
            Placement::Partitioned,
        );
        let text = render_batch(&raw_spec, &queries);
        let (spec, _) = parse_batch(&text).expect("rendered batches parse");
        for t in raw_spec.set.tasks() {
            let back = spec
                .set
                .tasks()
                .iter()
                .find(|b| b.name == t.name)
                .expect("task survives by name");
            prop_assert_eq!(back.priority, t.priority);
            prop_assert_eq!(back.period, t.period);
            prop_assert_eq!(back.deadline, t.deadline);
            prop_assert_eq!(back.cost, t.cost);
            prop_assert_eq!(back.offset, t.offset);
        }
        for (a, b) in raw_spec.faults.iter().zip(&spec.faults) {
            prop_assert_eq!(a.job, b.job);
            prop_assert_eq!(a.delta, b.delta);
            prop_assert_eq!(
                raw_spec.task_name(a.task),
                spec.task_name(b.task),
                "fault targets survive by name"
            );
        }
    }
}
