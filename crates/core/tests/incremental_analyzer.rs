//! The session API's core contract, property-tested: an [`Analyzer`]
//! driven through an arbitrary sequence of incremental perturbations
//! returns **exactly** the numbers a from-scratch analysis of the same
//! final parameters returns — memoization, warm starting and cache
//! salvage are pure accelerations, never approximations.
//!
//! Random workloads are UUniFast task sets (Bini & Buttazzo's unbiased
//! utilization split, re-implemented here to keep this test
//! self-contained); perturbations are random single-parameter changes:
//! cost overrides up and down, uniform inflation, blocking terms, task
//! admission and removal.

use rtft_core::analyzer::{Analyzer, AnalyzerBuilder};
use rtft_core::prelude::*;

/// SplitMix64 — deterministic, seed-stable stream for the generator.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Classic UUniFast: `n` utilizations summing to `total`.
fn uunifast(rng: &mut Rng, n: usize, total: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    let mut sum = total;
    for i in 1..n {
        let next = sum * rng.f64().powf(1.0 / (n - i) as f64);
        out.push(sum - next);
        sum = next;
    }
    out.push(sum);
    out
}

/// Random task set: UUniFast utilizations over millisecond-grid periods,
/// rate-monotonic priorities, a mix of implicit and constrained deadlines.
fn random_set(rng: &mut Rng, n: usize, total_u: f64) -> TaskSet {
    let us = uunifast(rng, n, total_u);
    let specs: Vec<TaskSpec> = us
        .iter()
        .enumerate()
        .map(|(i, &u)| {
            let period_ms = 10 + rng.below(490) as i64;
            let period = Duration::millis(period_ms);
            let cost = Duration::nanos(((period.as_nanos() as f64 * u).round() as i64).max(1));
            let deadline = if rng.below(2) == 0 {
                period
            } else {
                // Constrained: uniform in [cost, period].
                let span = (period - cost).as_nanos().max(0);
                cost + Duration::nanos((span as f64 * rng.f64()).round() as i64)
            };
            TaskBuilder::new(i as u32 + 1, -(period_ms as i32), period, cost)
                .deadline(deadline.max(Duration::NANO))
                .build()
        })
        .collect();
    TaskSet::from_specs(specs)
}

/// A from-scratch reference analysis with the session's current
/// effective parameters: fresh `ResponseAnalysis`, no caches, no warm
/// starts — the legacy ground truth.
fn scratch_wcrt_all(session: &Analyzer) -> Result<Vec<Duration>, AnalysisError> {
    let set = session.task_set();
    let mut reference = ResponseAnalysis::new(set);
    for rank in 0..set.len() {
        reference.set_cost(rank, session.cost(rank));
    }
    reference.wcrt_all()
}

fn assert_session_matches_scratch(session: &mut Analyzer, context: &str) {
    let scratch = scratch_wcrt_all(session);
    let live = session.wcrt_all();
    match (&live, &scratch) {
        (Ok(a), Ok(b)) => assert_eq!(a, b, "wcrt_all diverged {context}"),
        (Err(AnalysisError::Divergent { .. }), Err(AnalysisError::Divergent { .. })) => {}
        _ => panic!("error-shape mismatch {context}: {live:?} vs {scratch:?}"),
    }
}

#[test]
fn incremental_cost_perturbations_equal_from_scratch() {
    for seed in 0..40u64 {
        let mut rng = Rng(seed.wrapping_mul(0x9E37_79B9) + 1);
        let n = 2 + rng.below(8) as usize;
        let u = 0.5 + 0.4 * rng.f64();
        let set = random_set(&mut rng, n, u);
        let mut session = Analyzer::new(&set);
        let _ = session.wcrt_all();

        for step in 0..12 {
            let rank = rng.below(n as u64) as usize;
            match rng.below(3) {
                0 => {
                    // Cost override, up or down, around the declared one.
                    let declared = set.by_rank(rank).cost;
                    let factor = 0.5 + rng.f64() * 1.5;
                    let cost =
                        Duration::nanos(((declared.as_nanos() as f64 * factor) as i64).max(1));
                    session.set_cost(rank, cost);
                }
                1 => {
                    let delta = Duration::millis(rng.below(8) as i64);
                    session.inflate_all(delta);
                }
                _ => {
                    session.reset_costs();
                }
            }
            assert_session_matches_scratch(&mut session, &format!("(seed {seed}, step {step})"));
        }
    }
}

#[test]
fn admission_churn_equals_from_scratch() {
    for seed in 0..25u64 {
        let mut rng = Rng(seed.wrapping_mul(0x51_7CC1) + 3);
        let n = 2 + rng.below(6) as usize;
        let u = 0.45 + 0.3 * rng.f64();
        let set = random_set(&mut rng, n, u);
        let mut session = Analyzer::new(&set);
        let _ = session.wcrt_all();
        let mut next_id = n as u32 + 1;

        for step in 0..10 {
            if rng.below(2) == 0 {
                let period = Duration::millis(20 + rng.below(300) as i64);
                let cost =
                    Duration::nanos(((period.as_nanos() as f64) * (0.01 + 0.1 * rng.f64())) as i64)
                        .max(Duration::NANO);
                let prio = rng.below(2 * n as u64) as i32 - n as i32;
                let spec = TaskBuilder::new(next_id, prio, period, cost).build();
                next_id += 1;
                let _ = session.admit(spec);
            } else if session.len() > 1 {
                let victims = session.task_set().tasks().to_vec();
                let victim = victims[rng.below(victims.len() as u64) as usize].id;
                session.remove(victim).unwrap();
            }
            assert_session_matches_scratch(&mut session, &format!("(seed {seed}, step {step})"));
            // The admission report itself must match the one-shot path.
            let scratch_report = Analyzer::new(&session.task_set().clone()).report().unwrap();
            let mut fresh = Analyzer::new(&session.task_set().clone());
            assert_eq!(fresh.report().unwrap(), scratch_report);
        }
    }
}

#[test]
fn warm_searches_equal_cold_searches() {
    for seed in 0..30u64 {
        let mut rng = Rng(seed.wrapping_mul(0xA5A5_A5A5) + 7);
        let n = 2 + rng.below(10) as usize;
        let u = 0.4 + 0.5 * rng.f64();
        let set = random_set(&mut rng, n, u);

        let mut warm = Analyzer::new(&set);
        let mut cold = AnalyzerBuilder::new(&set).warm_start(false).build();

        assert_eq!(
            warm.equitable_allowance().unwrap(),
            cold.equitable_allowance().unwrap(),
            "equitable allowance diverged (seed {seed})"
        );
        let policy = if rng.below(2) == 0 {
            SlackPolicy::ProtectAll
        } else {
            SlackPolicy::ProtectOthers
        };
        assert_eq!(
            warm.system_allowance_with(policy).unwrap(),
            cold.system_allowance_with(policy).unwrap(),
            "system allowance diverged (seed {seed})"
        );
        assert_eq!(
            warm.cost_scaling_margin().unwrap(),
            cold.cost_scaling_margin().unwrap(),
            "scaling margin diverged (seed {seed})"
        );
    }
}

#[test]
fn perturbed_session_searches_equal_fresh_sessions() {
    // After arbitrary cost churn, a session's allowance search must equal
    // the one a brand-new session over the same effective costs returns.
    for seed in 0..20u64 {
        let mut rng = Rng(seed.wrapping_mul(0xDEAD_BEEF) + 11);
        let n = 2 + rng.below(6) as usize;
        let u = 0.45 + 0.3 * rng.f64();
        let set = random_set(&mut rng, n, u);
        let mut session = Analyzer::new(&set);
        for _ in 0..5 {
            let rank = rng.below(n as u64) as usize;
            let declared = set.by_rank(rank).cost;
            let factor = 0.6 + rng.f64();
            session.set_cost(
                rank,
                Duration::nanos(((declared.as_nanos() as f64 * factor) as i64).max(1)),
            );
        }
        // Rebuild an equivalent fresh session: same set, same overrides.
        let mut fresh = Analyzer::new(&set);
        for rank in 0..n {
            fresh.set_cost(rank, session.cost(rank));
        }
        assert_eq!(
            session.equitable_allowance().unwrap(),
            fresh.equitable_allowance().unwrap(),
            "seed {seed}"
        );
    }
}
