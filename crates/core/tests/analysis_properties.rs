//! Property tests of the analytical core: exactness and monotonicity laws
//! the paper's construction rests on.

use proptest::prelude::*;
use rtft_core::allowance::SlackPolicy;
use rtft_core::analyzer::Analyzer;
use rtft_core::prelude::*;
use rtft_core::response::wcrt_constrained;

fn arb_set(max_tasks: usize) -> impl Strategy<Value = TaskSet> {
    proptest::collection::vec((2i64..=80, 1i64..=12), 1..=max_tasks).prop_map(|params| {
        let n = params.len() as i64;
        let specs = params
            .into_iter()
            .enumerate()
            .map(|(i, (period_raw, cost_raw))| {
                let period = Duration::millis(period_raw * n);
                let cost = Duration::millis(cost_raw.min((period_raw * n * 4 / (5 * n)).max(1)));
                TaskBuilder::new(i as u32 + 1, -(i as i32), period, cost).build()
            })
            .collect();
        TaskSet::from_specs(specs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The general (arbitrary-deadline) algorithm agrees with the classic
    /// single-job recurrence whenever the busy period closes at job 0.
    #[test]
    fn general_equals_classic_on_constrained_sets(set in arb_set(6)) {
        let analysis = ResponseAnalysis::new(&set);
        for rank in 0..set.len() {
            match (analysis.analyze(rank), wcrt_constrained(&set, rank)) {
                (Ok(full), Ok(classic)) => {
                    // Implicit deadlines here: busy period may still span
                    // jobs if R > T; the classic value is job 0's response.
                    prop_assert_eq!(full.jobs[0].response, classic);
                    prop_assert!(full.wcrt >= classic);
                }
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(false, "divergence disagreement: {a:?} vs {b:?}"),
            }
        }
    }

    /// Equitable allowance maximality: A is feasible, A + 1 ns is not.
    #[test]
    fn allowance_is_exactly_maximal(set in arb_set(5)) {
        let Ok(Some(eq)) = Analyzer::new(&set).equitable_allowance() else { return Ok(()); };
        let mut at = ResponseAnalysis::new(&set);
        at.inflate_all(eq.allowance);
        prop_assert!(at.is_feasible().unwrap());
        at.inflate_all(eq.allowance + Duration::NANO);
        prop_assert!(!at.is_feasible().unwrap());
    }

    /// Single-task slack maximality under ProtectAll.
    #[test]
    fn single_overrun_is_exactly_maximal(set in arb_set(4), pick in 0usize..4) {
        let rank = pick % set.len();
        let Ok(Some(m)) = Analyzer::new(&set).max_single_overrun_with(rank, SlackPolicy::ProtectAll)
        else {
            return Ok(());
        };
        let base = set.by_rank(rank).cost;
        let mut a = ResponseAnalysis::new(&set);
        a.set_cost(rank, base + m);
        prop_assert!(a.is_feasible().unwrap());
        a.set_cost(rank, base + m + Duration::NANO);
        prop_assert!(!a.is_feasible().unwrap());
    }

    /// WCRT is monotone in costs: inflating any cost never shrinks any
    /// response time.
    #[test]
    fn wcrt_monotone_in_costs(set in arb_set(5), pick in 0usize..5, bump in 1i64..10) {
        let rank = pick % set.len();
        let base = match wcrt_all(&set) { Ok(w) => w, Err(_) => return Ok(()) };
        let mut a = ResponseAnalysis::new(&set);
        a.set_cost(rank, set.by_rank(rank).cost + Duration::millis(bump));
        for (r, b) in base.iter().enumerate() {
            // A wcrt error here means the bump pushed the level into
            // divergence, which is fine for the monotonicity claim.
            if let Ok(w) = a.wcrt(r) {
                prop_assert!(w >= *b, "rank {r} shrank");
            }
        }
    }

    /// Busy period bounds the WCRT.
    #[test]
    fn busy_period_bounds_wcrt(set in arb_set(5)) {
        let analysis = ResponseAnalysis::new(&set);
        for rank in 0..set.len() {
            if let (Ok(w), Ok(l)) = (analysis.wcrt(rank), analysis.level_busy_period(rank)) {
                prop_assert!(w <= l, "WCRT {w} beyond busy period {l}");
            }
        }
    }

    /// Audsley never rejects a set whose given order is feasible.
    #[test]
    fn audsley_accepts_feasible_sets(set in arb_set(4)) {
        if !ResponseAnalysis::new(&set).is_feasible().unwrap_or(false) {
            return Ok(());
        }
        let result = rtft_core::priority::audsley(&set).unwrap();
        prop_assert!(result.is_some(), "Audsley rejected a feasible set");
        let assigned = result.unwrap();
        prop_assert!(ResponseAnalysis::new(&assigned).is_feasible().unwrap());
    }

    /// Utilization consistency: feasible ⇒ U ≤ 1.
    #[test]
    fn feasible_implies_unit_load(set in arb_set(6)) {
        if ResponseAnalysis::new(&set).is_feasible().unwrap_or(false) {
            prop_assert!(set.utilization() <= 1.0 + 1e-12);
        }
    }

    /// Jitter analysis degenerates to the base analysis at zero jitter
    /// (constrained-deadline sets).
    #[test]
    fn jitter_zero_degenerates(set in arb_set(5)) {
        use rtft_core::jitter::JitterModel;
        let zero = JitterModel::zero(&set);
        let jittered = AnalyzerBuilder::new(&set).jitter(&zero).build().wcrt_all_with_jitter();
        match (jittered, wcrt_all(&set)) {
            (Ok(a), Ok(b)) => {
                // The jitter analysis is the single-job recurrence; compare
                // against job-0 responses.
                let analysis = ResponseAnalysis::new(&set);
                for (rank, ja) in a.iter().enumerate() {
                    let job0 = analysis.analyze(rank).unwrap().jobs[0].response;
                    prop_assert_eq!(*ja, job0);
                }
                let _ = b;
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "divergence disagreement: {a:?} vs {b:?}"),
        }
    }
}
