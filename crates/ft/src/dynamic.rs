//! Dynamic systems — the paper's §7 first objective: "reach the same
//! results in a more dynamic system where tasks can be added or removed
//! 'in real-time' by adapting the behavior of our detectors".
//!
//! [`DynamicSystem`] keeps one [`Analyzer`] session alive across changes:
//! admission reuses the cached response-time solutions of the tasks a
//! newcomer cannot affect, removal salvages the caches above the departed
//! task, and the per-epoch detector plans (WCRT thresholds, equitable
//! allowance) are read from the session's memo instead of re-deriving the
//! whole analysis per epoch. Workloads are executed epoch by epoch: each
//! epoch runs the *current* set on the simulator with freshly derived
//! detector parameters, exactly what an online re-admission would install.

use crate::harness::{run_scenario_with, HarnessError, Scenario, ScenarioOutcome};
use crate::treatment::Treatment;
use rtft_core::analyzer::{Analyzer, AnalyzerBuilder};
use rtft_core::error::ModelError;
use rtft_core::feasibility::{Admission, AdmissionError};
use rtft_core::policy::PolicyKind;
use rtft_core::task::{TaskId, TaskSet, TaskSpec};
use rtft_core::time::{Duration, Instant};
use rtft_sim::fault::FaultPlan;
use rtft_sim::timer::TimerModel;

/// Snapshot of detector parameters after a change.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DetectorPlan {
    /// Tasks in priority order.
    pub tasks: Vec<TaskId>,
    /// Detection threshold (WCRT) per rank.
    pub wcrt: Vec<Duration>,
    /// Equitable allowance of the current set.
    pub equitable: Option<Duration>,
}

/// An online system: admission control plus detector re-planning, backed
/// by one persistent [`Analyzer`] session built for a scheduling policy.
#[derive(Clone, Debug, Default)]
pub struct DynamicSystem {
    session: Option<Analyzer>,
    policy: PolicyKind,
}

impl DynamicSystem {
    /// Empty system under fixed-priority dispatch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty system whose admissions and detector plans follow `policy`.
    pub fn with_policy(policy: PolicyKind) -> Self {
        DynamicSystem {
            session: None,
            policy,
        }
    }

    /// System pre-loaded with `set` under fixed-priority dispatch.
    pub fn with_set(set: &TaskSet) -> Self {
        Self::with_set_policy(set, PolicyKind::FixedPriority)
    }

    /// System pre-loaded with `set` under `policy`.
    pub fn with_set_policy(set: &TaskSet, policy: PolicyKind) -> Self {
        DynamicSystem {
            session: Some(AnalyzerBuilder::new(set).sched_policy(policy).build()),
            policy,
        }
    }

    /// The policy this system admits and plans for.
    pub fn policy(&self) -> PolicyKind {
        self.policy
    }

    /// Current task set, if any task is admitted.
    pub fn current_set(&self) -> Option<TaskSet> {
        self.session.as_ref().map(|s| s.task_set().clone())
    }

    /// The live analysis session, if any task is admitted. Callers that
    /// want more than the [`DetectorPlan`] numbers (busy periods,
    /// sensitivity margins, …) read them from here — they are memoized.
    pub fn session(&mut self) -> Option<&mut Analyzer> {
        self.session.as_mut()
    }

    /// Try to admit a task at run time. On success the new detector plan
    /// is returned — thresholds of *existing* tasks may have changed (a
    /// new high-priority task inflates everyone's WCRT below it), which is
    /// precisely why detectors must adapt. Tasks at higher priority than
    /// the newcomer keep their cached analysis.
    pub fn admit(&mut self, spec: TaskSpec) -> Result<Option<DetectorPlan>, AdmissionError> {
        let admission = match &mut self.session {
            Some(session) => session.admit(spec)?,
            None => {
                let set = TaskSet::new(vec![spec]).map_err(AdmissionError::Model)?;
                let mut session = AnalyzerBuilder::new(&set).sched_policy(self.policy).build();
                let report = session.report().map_err(AdmissionError::Analysis)?;
                if report.is_feasible() {
                    self.session = Some(session);
                    Admission::Admitted(report)
                } else {
                    Admission::Rejected(report)
                }
            }
        };
        match admission {
            Admission::Admitted(_) => Ok(Some(self.plan()?)),
            Admission::Rejected(_) => Ok(None),
        }
    }

    /// Remove a task; returns the refreshed plan (thresholds shrink, the
    /// allowance grows — freed slack is redistributed).
    ///
    /// Removing the *last* task is rejected with
    /// [`ModelError::Empty`] and leaves the system unchanged — drain a
    /// system by dropping it, not by emptying it, so every error path
    /// here is non-mutating.
    pub fn remove(&mut self, id: TaskId) -> Result<DetectorPlan, AdmissionError> {
        let session = self
            .session
            .as_mut()
            .ok_or(AdmissionError::Model(ModelError::UnknownTask(id)))?;
        session.remove(id)?;
        self.plan()
    }

    /// Detector plan of the current set, served from the session's memo
    /// (WCRT thresholds under the fixed-priority policies, deadlines
    /// under EDF — see [`Analyzer::policy_thresholds`]).
    pub fn plan(&mut self) -> Result<DetectorPlan, AdmissionError> {
        let session = self.session.as_mut().expect("plan() on an empty system");
        let wcrt = session
            .policy_thresholds()
            .map_err(AdmissionError::Analysis)?;
        let equitable = session
            .equitable_allowance()
            .map_err(AdmissionError::Analysis)?
            .map(|e| e.allowance);
        Ok(DetectorPlan {
            tasks: session.task_set().tasks().iter().map(|t| t.id).collect(),
            wcrt,
            equitable,
        })
    }
}

/// One epoch of a dynamic workload: a set change followed by a simulated
/// interval.
#[derive(Clone, Debug)]
pub enum EpochChange {
    /// Start from (or reset to) this exact set.
    Reset(TaskSet),
    /// Add a task (must pass admission).
    Add(TaskSpec),
    /// Remove a task.
    Remove(TaskId),
}

/// Run a sequence of epochs, each `epoch_len` long, under `treatment`
/// and the given scheduling `policy`. Returns one [`ScenarioOutcome`]
/// per epoch (time restarts at 0 in each — the detectors are re-armed
/// from scratch, as an online system would).
pub fn run_epochs(
    changes: &[(EpochChange, FaultPlan)],
    epoch_len: Duration,
    treatment: Treatment,
    timer_model: TimerModel,
    policy: PolicyKind,
) -> Result<Vec<ScenarioOutcome>, DynamicError> {
    let mut system = DynamicSystem::with_policy(policy);
    let mut outcomes = Vec::new();
    for (i, (change, faults)) in changes.iter().enumerate() {
        match change {
            EpochChange::Reset(set) => {
                system = DynamicSystem::with_set_policy(set, policy);
            }
            EpochChange::Add(spec) => {
                let admitted = system
                    .admit(spec.clone())
                    .map_err(DynamicError::Admission)?;
                if admitted.is_none() {
                    return Err(DynamicError::Rejected(spec.id));
                }
            }
            EpochChange::Remove(id) => {
                system.remove(*id).map_err(DynamicError::Admission)?;
            }
        }
        let set = system.current_set().ok_or(DynamicError::EmptySystem)?;
        let sc = Scenario::new(
            format!("epoch-{i}"),
            set,
            faults.clone(),
            treatment,
            Instant::EPOCH + epoch_len,
        )
        .with_timer_model(timer_model)
        .with_policy(policy);
        // The session lives across epochs: an epoch that only changes the
        // fault plan reuses every cached number, and add/remove epochs
        // reuse what the change could not affect.
        let session = system.session().ok_or(DynamicError::EmptySystem)?;
        outcomes.push(run_scenario_with(&sc, session).map_err(DynamicError::Harness)?);
    }
    Ok(outcomes)
}

/// Dynamic-workload errors.
#[derive(Debug)]
pub enum DynamicError {
    /// Admission layer failed.
    Admission(AdmissionError),
    /// The task was rejected by admission control.
    Rejected(TaskId),
    /// No tasks remain.
    EmptySystem,
    /// The per-epoch run failed.
    Harness(HarnessError),
}

impl std::fmt::Display for DynamicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynamicError::Admission(e) => write!(f, "{e}"),
            DynamicError::Rejected(id) => write!(f, "admission rejected {id}"),
            DynamicError::EmptySystem => write!(f, "no tasks in the system"),
            DynamicError::Harness(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DynamicError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rtft_core::task::TaskBuilder;
    use rtft_sim::stop::StopMode;

    fn ms(v: i64) -> Duration {
        Duration::millis(v)
    }

    fn base_specs() -> Vec<TaskSpec> {
        vec![
            TaskBuilder::new(1, 20, ms(200), ms(29))
                .deadline(ms(70))
                .build(),
            TaskBuilder::new(2, 18, ms(250), ms(29))
                .deadline(ms(120))
                .build(),
        ]
    }

    #[test]
    fn thresholds_adapt_on_admission() {
        let mut sys = DynamicSystem::new();
        for spec in base_specs() {
            sys.admit(spec).unwrap().unwrap();
        }
        let before = sys.plan().unwrap();
        assert_eq!(before.wcrt, vec![ms(29), ms(58)]);
        // Admit a mid-priority task: τ2's threshold must shift.
        let plan = sys
            .admit(
                TaskBuilder::new(9, 19, ms(300), ms(10))
                    .deadline(ms(300))
                    .build(),
            )
            .unwrap()
            .unwrap();
        assert_eq!(plan.tasks, vec![TaskId(1), TaskId(9), TaskId(2)]);
        assert_eq!(plan.wcrt, vec![ms(29), ms(39), ms(68)]);
    }

    #[test]
    fn removal_grows_allowance() {
        let mut sys = DynamicSystem::new();
        for spec in base_specs() {
            sys.admit(spec).unwrap().unwrap();
        }
        sys.admit(
            TaskBuilder::new(3, 16, ms(1500), ms(29))
                .deadline(ms(120))
                .build(),
        )
        .unwrap()
        .unwrap();
        let with_tau3 = sys.plan().unwrap();
        assert_eq!(with_tau3.equitable, Some(ms(11)));
        let without = sys.remove(TaskId(3)).unwrap();
        // Slack freed by τ3's departure: A jumps from 11 to 31
        // (R2 = 58 + 2A ≤ 120 binds).
        assert_eq!(without.equitable, Some(ms(31)));
    }

    #[test]
    fn over_admission_is_rejected_and_state_preserved() {
        let mut sys = DynamicSystem::new();
        for spec in base_specs() {
            sys.admit(spec).unwrap().unwrap();
        }
        let hog = TaskBuilder::new(8, 19, ms(100), ms(60)).build();
        assert_eq!(sys.admit(hog).unwrap(), None);
        assert_eq!(sys.plan().unwrap().tasks, vec![TaskId(1), TaskId(2)]);
    }

    #[test]
    fn removing_the_last_task_is_rejected_without_mutation() {
        let mut sys = DynamicSystem::new();
        sys.admit(TaskBuilder::new(1, 20, ms(200), ms(29)).build())
            .unwrap()
            .unwrap();
        let err = sys.remove(TaskId(1)).unwrap_err();
        assert!(matches!(
            err,
            AdmissionError::Model(rtft_core::error::ModelError::Empty)
        ));
        // The error path must not have emptied the system.
        assert_eq!(sys.current_set().unwrap().len(), 1);
        assert_eq!(sys.plan().unwrap().wcrt, vec![ms(29)]);
    }

    #[test]
    fn epochs_run_with_adapting_detectors() {
        let base = TaskSet::from_specs(base_specs());
        let changes = vec![
            (EpochChange::Reset(base), FaultPlan::none()),
            (
                EpochChange::Add(
                    TaskBuilder::new(3, 16, ms(1500), ms(29))
                        .deadline(ms(120))
                        .build(),
                ),
                FaultPlan::none().overrun(TaskId(1), 0, ms(40)),
            ),
            (EpochChange::Remove(TaskId(3)), FaultPlan::none()),
        ];
        let outs = run_epochs(
            &changes,
            ms(1000),
            Treatment::ImmediateStop {
                mode: StopMode::JobOnly,
            },
            TimerModel::EXACT,
            PolicyKind::FixedPriority,
        )
        .unwrap();
        assert_eq!(outs.len(), 3);
        // Epoch 0: clean.
        assert!(outs[0].verdict.all_ok());
        // Epoch 1: τ1 overruns at its first job and is stopped at its WCRT;
        // nobody else suffers.
        assert_eq!(outs[1].verdict.failed_tasks(), vec![TaskId(1)]);
        assert!(outs[1].collateral_failures().is_empty());
        // Epoch 2: τ3 gone, clean again.
        assert!(outs[2].verdict.all_ok());
        assert_eq!(outs[2].verdict.per_task().len(), 2);
    }

    #[test]
    fn edf_dynamic_system_admits_past_fp_limits() {
        // U = 1.0 non-harmonic: FP admission rejects τ2, EDF admits and
        // plans deadline-miss detectors with zero allowance.
        let t1 = TaskBuilder::new(1, 2, ms(4), ms(2)).build();
        let t2 = TaskBuilder::new(2, 1, ms(6), ms(3)).build();
        let mut fp = DynamicSystem::new();
        fp.admit(t1.clone()).unwrap().unwrap();
        assert_eq!(fp.admit(t2.clone()).unwrap(), None);

        let mut edf = DynamicSystem::with_policy(PolicyKind::Edf);
        assert_eq!(edf.policy(), PolicyKind::Edf);
        edf.admit(t1).unwrap().unwrap();
        let plan = edf.admit(t2).unwrap().unwrap();
        assert_eq!(plan.wcrt, vec![ms(4), ms(6)], "thresholds = deadlines");
        assert_eq!(plan.equitable, Some(Duration::ZERO));
    }

    #[test]
    fn rejected_epoch_change_errors() {
        let base = TaskSet::from_specs(base_specs());
        let changes = vec![
            (EpochChange::Reset(base), FaultPlan::none()),
            (
                EpochChange::Add(TaskBuilder::new(8, 19, ms(100), ms(60)).build()),
                FaultPlan::none(),
            ),
        ];
        let err = run_epochs(
            &changes,
            ms(500),
            Treatment::DetectOnly,
            TimerModel::EXACT,
            PolicyKind::FixedPriority,
        )
        .unwrap_err();
        assert!(matches!(err, DynamicError::Rejected(TaskId(8))));
    }
}
