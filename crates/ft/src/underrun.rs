//! Cost under-run detection and resource reassignment — the paper's §7:
//! "if the cost of a task can be underestimated, it is also possible to
//! overestimate it. Consequently, we can consider to dynamically study the
//! system in order to detect these costs under-run and to reassign
//! resources for faulty tasks."
//!
//! [`ObservedCosts`] reconstructs each job's *actual CPU consumption* from
//! a trace (execution intervals between start/resume and preempt/end) and
//! derives per-task observed maxima. [`suggest_reassignment`] then re-runs
//! the equitable-allowance analysis with the observed costs, quantifying
//! the tolerance the system wins back.

use rtft_core::analyzer::Analyzer;
use rtft_core::error::AnalysisError;
use rtft_core::sensitivity::UnderrunReclaim;
use rtft_core::task::{TaskId, TaskSet};
use rtft_core::time::{Duration, Instant};
use rtft_trace::{EventKind, TraceLog};
use std::collections::BTreeMap;

/// Measured per-task execution costs.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ObservedCosts {
    /// Per-job consumed CPU: `(task, job) → duration`. Only completed
    /// jobs are counted (an abandoned job's consumption is not a cost
    /// sample).
    per_job: BTreeMap<(TaskId, u64), Duration>,
}

impl ObservedCosts {
    /// Reconstruct consumption from a trace by summing the execution
    /// intervals of each job.
    pub fn from_log(log: &TraceLog) -> Self {
        let mut live: BTreeMap<TaskId, (u64, Instant)> = BTreeMap::new();
        let mut acc: BTreeMap<(TaskId, u64), Duration> = BTreeMap::new();
        let mut finished: Vec<(TaskId, u64)> = Vec::new();
        for e in log.events() {
            match e.kind {
                EventKind::JobStart { task, job } | EventKind::Resumed { task, job } => {
                    live.insert(task, (job, e.at));
                }
                EventKind::Preempted { task, job, .. } => {
                    if let Some((j, since)) = live.remove(&task) {
                        debug_assert_eq!(j, job);
                        *acc.entry((task, job)).or_default() += e.at - since;
                    }
                }
                EventKind::JobEnd { task, job } => {
                    if let Some((j, since)) = live.remove(&task) {
                        debug_assert_eq!(j, job);
                        *acc.entry((task, job)).or_default() += e.at - since;
                    }
                    finished.push((task, job));
                }
                EventKind::TaskStopped { task, .. } => {
                    live.remove(&task);
                }
                _ => {}
            }
        }
        let per_job = finished
            .into_iter()
            .filter_map(|key| acc.get(&key).map(|d| (key, *d)))
            .collect();
        ObservedCosts { per_job }
    }

    /// Consumption of one completed job.
    pub fn job_cost(&self, task: TaskId, job: u64) -> Option<Duration> {
        self.per_job.get(&(task, job)).copied()
    }

    /// Number of completed-job samples.
    pub fn samples(&self) -> usize {
        self.per_job.len()
    }

    /// Largest observed cost of a task — the measured execution-time
    /// envelope.
    pub fn max_cost(&self, task: TaskId) -> Option<Duration> {
        self.per_job
            .iter()
            .filter(|((t, _), _)| *t == task)
            .map(|(_, d)| *d)
            .max()
    }

    /// Tasks whose **every** observed job ran *strictly* more than
    /// `margin` below the declared cost — the §7 under-run candidates.
    pub fn underrunning_tasks(&self, set: &TaskSet, margin: Duration) -> Vec<(TaskId, Duration)> {
        set.tasks()
            .iter()
            .filter_map(|spec| {
                let max = self.max_cost(spec.id)?;
                (max + margin < spec.cost).then_some((spec.id, max))
            })
            .collect()
    }
}

/// Proposed reassignment: replace declared costs of under-running tasks by
/// their observed maxima (plus `safety_margin`) and recompute the
/// equitable allowance. `Ok(None)` if no task under-runs by more than the
/// margin or the system is infeasible.
pub fn suggest_reassignment(
    set: &TaskSet,
    observed: &ObservedCosts,
    safety_margin: Duration,
) -> Result<Option<UnderrunReclaim>, AnalysisError> {
    let candidates: Vec<(TaskId, Duration)> = observed
        .underrunning_tasks(set, safety_margin)
        .into_iter()
        .map(|(id, max)| (id, max + safety_margin))
        .collect();
    if candidates.is_empty() {
        return Ok(None);
    }
    Analyzer::new(set).underrun_reclaim(&candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtft_core::task::TaskBuilder;
    use rtft_sim::engine::run_plain;
    use rtft_sim::engine::{SimConfig, Simulator};
    use rtft_sim::fault::FaultPlan;
    use rtft_sim::supervisor::NullSupervisor;

    fn ms(v: i64) -> Duration {
        Duration::millis(v)
    }

    fn t(v: i64) -> Instant {
        Instant::from_millis(v)
    }

    fn table2() -> TaskSet {
        TaskSet::from_specs(vec![
            TaskBuilder::new(1, 20, ms(200), ms(29))
                .deadline(ms(70))
                .build(),
            TaskBuilder::new(2, 18, ms(250), ms(29))
                .deadline(ms(120))
                .build(),
            TaskBuilder::new(3, 16, ms(1500), ms(29))
                .deadline(ms(120))
                .build(),
        ])
    }

    #[test]
    fn observed_costs_match_demands() {
        let log = run_plain(table2(), t(3000));
        let obs = ObservedCosts::from_log(&log);
        // Every completed job consumed exactly its declared 29 ms, even
        // across preemptions.
        assert_eq!(obs.max_cost(TaskId(1)), Some(ms(29)));
        assert_eq!(obs.max_cost(TaskId(2)), Some(ms(29)));
        assert_eq!(obs.max_cost(TaskId(3)), Some(ms(29)));
        assert!(obs.samples() >= 15 + 12 + 2);
    }

    #[test]
    fn underruns_are_measured() {
        // τ1 actually runs 9 ms every job.
        let mut plan = FaultPlan::none();
        for job in 0..15 {
            plan = plan.underrun(TaskId(1), job, ms(20));
        }
        let mut sim = Simulator::new(table2(), SimConfig::until(t(3000))).with_faults(plan);
        let mut sup = NullSupervisor;
        sim.run(&mut sup);
        let obs = ObservedCosts::from_log(sim.trace());
        assert_eq!(obs.max_cost(TaskId(1)), Some(ms(9)));
        let under = obs.underrunning_tasks(&table2(), ms(1));
        assert_eq!(under, vec![(TaskId(1), ms(9))]);
    }

    #[test]
    fn reassignment_reclaims_allowance() {
        let mut plan = FaultPlan::none();
        for job in 0..15 {
            plan = plan.underrun(TaskId(1), job, ms(20));
        }
        let mut sim = Simulator::new(table2(), SimConfig::until(t(3000))).with_faults(plan);
        let mut sup = NullSupervisor;
        sim.run(&mut sup);
        let obs = ObservedCosts::from_log(sim.trace());
        // Zero-margin reassignment: τ1's declared cost drops 29 → 9 and
        // the equitable allowance grows beyond the paper's 11 ms.
        let reclaim = suggest_reassignment(&table2(), &obs, Duration::ZERO)
            .unwrap()
            .unwrap();
        assert_eq!(reclaim.declared_allowance, ms(11));
        assert!(reclaim.measured_allowance > ms(17));
        assert!(reclaim.gained.is_positive());
    }

    #[test]
    fn no_underrun_no_suggestion() {
        let log = run_plain(table2(), t(3000));
        let obs = ObservedCosts::from_log(&log);
        assert_eq!(
            suggest_reassignment(&table2(), &obs, Duration::ZERO).unwrap(),
            None
        );
    }

    #[test]
    fn abandoned_jobs_are_not_cost_samples() {
        use rtft_trace::TraceLog;
        let mut log = TraceLog::new();
        log.push(
            t(0),
            EventKind::JobRelease {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(0),
            EventKind::JobStart {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(10),
            EventKind::TaskStopped {
                task: TaskId(1),
                job: 0,
            },
        );
        let obs = ObservedCosts::from_log(&log);
        assert_eq!(obs.samples(), 0);
        assert_eq!(obs.max_cost(TaskId(1)), None);
    }

    #[test]
    fn margin_filters_small_underruns() {
        let mut plan = FaultPlan::none();
        for job in 0..15 {
            plan = plan.underrun(TaskId(1), job, ms(2));
        }
        let mut sim = Simulator::new(table2(), SimConfig::until(t(3000))).with_faults(plan);
        let mut sup = NullSupervisor;
        sim.run(&mut sup);
        let obs = ObservedCosts::from_log(sim.trace());
        // A 5 ms margin ignores the 2 ms under-run.
        assert!(obs.underrunning_tasks(&table2(), ms(5)).is_empty());
        assert_eq!(suggest_reassignment(&table2(), &obs, ms(5)).unwrap(), None);
    }
}
