//! Run verdicts: which tasks survived, which failed, and how.
//!
//! The paper's comparison criterion across Figures 3–7 is exactly this:
//! which tasks miss deadlines or get stopped under each treatment, and how
//! much execution the faulty task obtained before being stopped.

use rtft_core::task::{TaskId, TaskSet};
use rtft_core::time::Duration;
use rtft_trace::{TraceLog, TraceStats};
use std::fmt;

/// Outcome of one task over a run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TaskVerdict {
    /// The task.
    pub task: TaskId,
    /// Jobs released.
    pub released: usize,
    /// Jobs completed normally.
    pub completed: usize,
    /// Deadline misses.
    pub missed: usize,
    /// Jobs stopped by the treatment.
    pub stopped: usize,
    /// Faults detected against this task.
    pub faults: usize,
    /// Largest observed response time.
    pub max_response: Option<Duration>,
    /// `true` iff the task neither missed a deadline nor was stopped.
    pub ok: bool,
}

/// Verdict over the whole run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Verdict {
    per_task: Vec<TaskVerdict>,
}

impl Verdict {
    /// Build from reconstructed statistics (tasks in priority order).
    pub fn new(set: &TaskSet, stats: &TraceStats) -> Self {
        let per_task = set
            .tasks()
            .iter()
            .map(|spec| {
                let s = stats.summary(spec.id).copied().unwrap_or_default();
                TaskVerdict {
                    task: spec.id,
                    released: s.released,
                    completed: s.completed,
                    missed: s.missed,
                    stopped: s.stopped,
                    faults: s.faults,
                    max_response: s.max_response,
                    ok: s.missed == 0 && s.stopped == 0,
                }
            })
            .collect();
        Verdict { per_task }
    }

    /// Build straight from a log.
    pub fn from_log(set: &TaskSet, log: &TraceLog) -> Self {
        Verdict::new(set, &TraceStats::from_log(log, Some(set)))
    }

    /// Per-task verdicts in priority order.
    pub fn per_task(&self) -> &[TaskVerdict] {
        &self.per_task
    }

    /// Verdict of one task.
    pub fn of(&self, task: TaskId) -> Option<&TaskVerdict> {
        self.per_task.iter().find(|v| v.task == task)
    }

    /// Tasks that failed (missed or stopped).
    pub fn failed_tasks(&self) -> Vec<TaskId> {
        self.per_task
            .iter()
            .filter(|v| !v.ok)
            .map(|v| v.task)
            .collect()
    }

    /// `true` iff every task is clean.
    pub fn all_ok(&self) -> bool {
        self.per_task.iter().all(|v| v.ok)
    }

    /// The paper's headline criterion: did any task that was **not** one
    /// of the ground-truth faulty tasks fail? (`truly_faulty` comes from
    /// the injected fault plan — the detector-level `faults` counter
    /// cannot distinguish an originator from a victim whose WCRT was
    /// overrun by inherited delay.)
    pub fn collateral_failures(&self, truly_faulty: &[TaskId]) -> Vec<TaskId> {
        self.per_task
            .iter()
            .filter(|v| !v.ok && !truly_faulty.contains(&v.task))
            .map(|v| v.task)
            .collect()
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<6} {:>8} {:>9} {:>7} {:>8} {:>7} {:>12}  verdict",
            "task", "released", "completed", "missed", "stopped", "faults", "maxresp"
        )?;
        for v in &self.per_task {
            writeln!(
                f,
                "{:<6} {:>8} {:>9} {:>7} {:>8} {:>7} {:>12}  {}",
                v.task.to_string(),
                v.released,
                v.completed,
                v.missed,
                v.stopped,
                v.faults,
                v.max_response.map_or("-".into(), |d| d.to_string()),
                if v.ok { "OK" } else { "FAILED" },
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtft_core::task::TaskBuilder;
    use rtft_core::time::Instant;
    use rtft_trace::EventKind;

    fn ms(v: i64) -> Duration {
        Duration::millis(v)
    }

    fn t(v: i64) -> Instant {
        Instant::from_millis(v)
    }

    fn set() -> TaskSet {
        TaskSet::from_specs(vec![
            TaskBuilder::new(1, 20, ms(200), ms(29))
                .deadline(ms(70))
                .build(),
            TaskBuilder::new(3, 16, ms(1500), ms(29))
                .deadline(ms(120))
                .build(),
        ])
    }

    fn log() -> TraceLog {
        let mut log = TraceLog::new();
        log.push(
            t(0),
            EventKind::JobRelease {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(0),
            EventKind::JobRelease {
                task: TaskId(3),
                job: 0,
            },
        );
        log.push(
            t(0),
            EventKind::JobStart {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(30),
            EventKind::FaultDetected {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(49),
            EventKind::JobEnd {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(49),
            EventKind::JobStart {
                task: TaskId(3),
                job: 0,
            },
        );
        log.push(
            t(78),
            EventKind::JobEnd {
                task: TaskId(3),
                job: 0,
            },
        );
        log
    }

    #[test]
    fn clean_task_is_ok() {
        let v = Verdict::from_log(&set(), &log());
        let v3 = v.of(TaskId(3)).unwrap();
        assert!(v3.ok);
        assert_eq!(v3.max_response, Some(ms(78)));
        assert!(v.all_ok());
        assert!(v.failed_tasks().is_empty());
    }

    #[test]
    fn faulty_but_surviving_task_is_ok() {
        // τ1 was flagged faulty yet finished in time: counted OK.
        let v = Verdict::from_log(&set(), &log());
        let v1 = v.of(TaskId(1)).unwrap();
        assert_eq!(v1.faults, 1);
        assert!(v1.ok);
    }

    #[test]
    fn collateral_failure_detection() {
        let mut l = log();
        l.push(
            t(120),
            EventKind::DeadlineMiss {
                task: TaskId(3),
                job: 0,
            },
        );
        let v = Verdict::from_log(&set(), &l);
        assert!(!v.all_ok());
        assert_eq!(v.failed_tasks(), vec![TaskId(3)]);
        // τ3 failed without being faulty: collateral damage — exactly what
        // the paper's treatments exist to prevent. The injected fault was
        // τ1's.
        assert_eq!(v.collateral_failures(&[TaskId(1)]), vec![TaskId(3)]);
    }

    #[test]
    fn stopped_faulty_task_is_not_collateral() {
        let mut l = log();
        l.push(
            t(130),
            EventKind::TaskStopped {
                task: TaskId(1),
                job: 0,
            },
        );
        let v = Verdict::from_log(&set(), &l);
        assert_eq!(v.failed_tasks(), vec![TaskId(1)]);
        assert!(v.collateral_failures(&[TaskId(1)]).is_empty());
    }

    #[test]
    fn display_table() {
        let s = Verdict::from_log(&set(), &log()).to_string();
        assert!(s.contains("OK"));
        assert!(s.contains("τ1"));
        assert!(s.contains("verdict"));
    }
}
