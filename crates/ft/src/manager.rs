//! Run-time allowance bookkeeping for the system-allowance treatment
//! (paper §4.3).
//!
//! Statically, [`rtft_core::analyzer::Analyzer::system_allowance_with`]
//! computes `M_i`,
//! the largest overrun task `i` can make **alone**. At run time the paper
//! grants the *first* faulty task its whole `M`; "if the first faulty task
//! finishes before having consumed all its allowance, the remainder is
//! allocated to the other faulty tasks. A task allowance is obtained
//! looking for the maximum cost overrun this task can do and subtracting
//! the more priority tasks overrun."
//!
//! [`AllowanceManager`] keeps the consumed-overrun ledger and answers
//! grant queries with exactly that rule.

use rtft_core::time::Duration;

/// Ledger of overruns consumed per task (by rank) against the static
/// maxima `M_i`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AllowanceManager {
    max_overrun: Vec<Duration>,
    consumed: Vec<Duration>,
}

impl AllowanceManager {
    /// Build from the static per-rank maxima.
    pub fn new(max_overrun: Vec<Duration>) -> Self {
        let n = max_overrun.len();
        AllowanceManager {
            max_overrun,
            consumed: vec![Duration::ZERO; n],
        }
    }

    /// Number of tasks tracked.
    pub fn len(&self) -> usize {
        self.max_overrun.len()
    }

    /// `true` when tracking no tasks.
    pub fn is_empty(&self) -> bool {
        self.max_overrun.is_empty()
    }

    /// Static maximum for a rank.
    pub fn max_overrun(&self, rank: usize) -> Duration {
        self.max_overrun[rank]
    }

    /// Overrun consumed so far by a rank.
    pub fn consumed(&self, rank: usize) -> Duration {
        self.consumed[rank]
    }

    /// Grant available to `rank` right now: its own maximum minus the
    /// overrun already consumed by strictly higher-priority tasks (lower
    /// ranks) and by itself. Never negative.
    pub fn grant(&self, rank: usize) -> Duration {
        let higher: Duration = self.consumed[..rank].iter().copied().sum();
        let own = self.consumed[rank];
        (self.max_overrun[rank] - higher - own).max(Duration::ZERO)
    }

    /// Record that `rank` consumed `overrun` of extra execution (a faulty
    /// job that finished late or was stopped).
    ///
    /// # Panics
    /// Panics on a negative amount.
    pub fn record(&mut self, rank: usize, overrun: Duration) {
        assert!(!overrun.is_negative(), "overrun must be ≥ 0");
        self.consumed[rank] += overrun;
    }

    /// Total overrun consumed across all ranks.
    pub fn total_consumed(&self) -> Duration {
        self.consumed.iter().copied().sum()
    }

    /// Reset the ledger (the dynamic extension re-arms it after a
    /// re-admission cycle).
    pub fn reset(&mut self) {
        self.consumed.fill(Duration::ZERO);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: i64) -> Duration {
        Duration::millis(v)
    }

    fn paper_manager() -> AllowanceManager {
        // Table 2 system: M_i = 33 ms for every task.
        AllowanceManager::new(vec![ms(33), ms(33), ms(33)])
    }

    #[test]
    fn first_faulty_task_gets_everything() {
        let m = paper_manager();
        assert_eq!(m.grant(0), ms(33));
        assert_eq!(m.grant(1), ms(33));
        assert_eq!(m.grant(2), ms(33));
    }

    #[test]
    fn remainder_flows_to_later_faults() {
        let mut m = paper_manager();
        // τ1 faults but finishes after consuming only 20 ms of overrun.
        m.record(0, ms(20));
        // A later τ2 fault gets its max minus the higher-priority overrun.
        assert_eq!(m.grant(1), ms(13));
        assert_eq!(m.grant(2), ms(13));
        // τ1 itself has 13 left too (its own consumption also counts).
        assert_eq!(m.grant(0), ms(13));
    }

    #[test]
    fn exhausted_grant_is_zero_not_negative() {
        let mut m = paper_manager();
        m.record(0, ms(33));
        assert_eq!(m.grant(1), Duration::ZERO);
        m.record(1, ms(5)); // over-consumption (e.g. polled-stop slop)
        assert_eq!(m.grant(2), Duration::ZERO);
    }

    #[test]
    fn lower_priority_consumption_does_not_charge_higher() {
        let mut m = paper_manager();
        m.record(2, ms(30));
        // τ1's grant only subtracts *higher*-priority consumption: none.
        assert_eq!(m.grant(0), ms(33));
        assert_eq!(m.grant(1), ms(33));
        assert_eq!(m.grant(2), ms(3));
    }

    #[test]
    fn ledger_and_reset() {
        let mut m = paper_manager();
        m.record(0, ms(10));
        m.record(1, ms(4));
        assert_eq!(m.consumed(0), ms(10));
        assert_eq!(m.total_consumed(), ms(14));
        m.reset();
        assert_eq!(m.total_consumed(), Duration::ZERO);
        assert_eq!(m.grant(1), ms(33));
    }

    #[test]
    #[should_panic(expected = "overrun must be")]
    fn negative_record_rejected() {
        let mut m = paper_manager();
        m.record(0, -ms(1));
    }
}
