//! The scenario harness: task set × fault plan × treatment → trace.
//!
//! This is the top of the reproduction stack: given a system and a
//! treatment it (1) runs the admission analysis, (2) derives the detector
//! thresholds the treatment prescribes, (3) executes the system on the
//! simulator with the configured platform models, and (4) reduces the
//! trace to verdicts — everything needed to regenerate the paper's
//! Figures 3–7 and the ablation sweeps.
//!
//! [`run_scenario_with`] is the single execution path shared by every
//! consumer: the `rtft-campaign` batch engine runs each grid job through
//! it (one memoized [`Analyzer`] session per set instance), a lone
//! scenario is just a one-job campaign (`rtft_campaign::run_single`),
//! and a partitioned multiprocessor run (`rtft-part`) is one call per
//! core — the core's subset, its fault slice, its own session — so a
//! paper figure, a million-job sweep and a multicore run all exercise
//! identical code.

use crate::detector::FtSupervisor;
use crate::manager::AllowanceManager;
use crate::treatment::Treatment;
use crate::verdict::Verdict;
use rtft_core::analyzer::{Analyzer, AnalyzerBuilder};
use rtft_core::error::AnalysisError;
use rtft_core::policy::PolicyKind;
use rtft_core::task::TaskSet;
use rtft_core::time::{Duration, Instant};
use rtft_sim::engine::{SimBuffers, SimConfig, Simulator};
use rtft_sim::fault::FaultPlan;
use rtft_sim::overhead::Overheads;
use rtft_sim::sink::TraceSink;
use rtft_sim::stop::StopModel;
use rtft_sim::supervisor::NullSupervisor;
use rtft_sim::timer::TimerModel;
use rtft_trace::chart::{glyph, ChartConfig};
use rtft_trace::{TraceLog, TraceStats};

/// A complete experiment description.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Label used in artifacts.
    pub name: String,
    /// The system under test.
    pub set: TaskSet,
    /// Injected faults.
    pub faults: FaultPlan,
    /// Treatment configuration.
    pub treatment: Treatment,
    /// Simulation horizon.
    pub horizon: Instant,
    /// Platform timer grid (jRate quantization or exact).
    pub timer_model: TimerModel,
    /// Platform stop model.
    pub stop_model: StopModel,
    /// Scheduling-overhead charges.
    pub overheads: Overheads,
    /// Dispatch rule (fixed-priority preemptive by default). Detector
    /// thresholds, allowances and the admission gate all follow the
    /// policy — see [`Analyzer::policy_thresholds`].
    pub policy: PolicyKind,
}

impl Scenario {
    /// A scenario with exact timers, immediate stops and
    /// fixed-priority dispatch.
    pub fn new(
        name: impl Into<String>,
        set: TaskSet,
        faults: FaultPlan,
        treatment: Treatment,
        horizon: Instant,
    ) -> Self {
        Scenario {
            name: name.into(),
            set,
            faults,
            treatment,
            horizon,
            timer_model: TimerModel::EXACT,
            stop_model: StopModel::IMMEDIATE,
            overheads: Overheads::NONE,
            policy: PolicyKind::FixedPriority,
        }
    }

    /// Run (and analyse) under a different scheduling policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Use jRate's 10 ms timer grid (the paper's platform).
    pub fn with_jrate_timers(mut self) -> Self {
        self.timer_model = TimerModel::jrate();
        self
    }

    /// Use a custom timer model.
    pub fn with_timer_model(mut self, m: TimerModel) -> Self {
        self.timer_model = m;
        self
    }

    /// Use a custom stop model.
    pub fn with_stop_model(mut self, m: StopModel) -> Self {
        self.stop_model = m;
        self
    }

    /// Charge scheduling overheads (context switches, detector firings).
    pub fn with_overheads(mut self, o: Overheads) -> Self {
        self.overheads = o;
        self
    }
}

/// Static analysis attached to a run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AnalysisSummary {
    /// Baseline detection threshold per rank: the WCRT under the
    /// fixed-priority policies, the relative deadline under EDF.
    pub wcrt: Vec<Duration>,
    /// Detector threshold per rank (equals WCRT, or the inflated WCRT for
    /// the equitable treatment). Empty for [`Treatment::NoDetection`].
    pub thresholds: Vec<Duration>,
    /// Equitable allowance, when that treatment was configured.
    pub equitable: Option<Duration>,
    /// System-allowance maxima `M_i`, when that treatment was configured.
    pub system_allowance: Option<Vec<Duration>>,
}

/// Everything a run produced.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// The scenario's label.
    pub name: String,
    /// The executed trace.
    pub log: TraceLog,
    /// Reconstructed per-job statistics.
    pub stats: TraceStats,
    /// Pass/fail per task.
    pub verdict: Verdict,
    /// Analysis numbers used to parameterize the run.
    pub analysis: AnalysisSummary,
    /// Ground truth: tasks with at least one injected overrun.
    pub injected_faulty: Vec<rtft_core::task::TaskId>,
}

impl ScenarioOutcome {
    /// Non-faulty tasks that failed anyway — the damage the treatments
    /// exist to prevent (judged against the injected fault plan).
    pub fn collateral_failures(&self) -> Vec<rtft_core::task::TaskId> {
        self.verdict.collateral_failures(&self.injected_faulty)
    }

    /// Render the paper-style time-series chart of a window, annotating
    /// each release's WCRT threshold with the `>` glyph like the figures.
    pub fn chart(&self, set: &TaskSet, from: Instant, to: Instant, cell: Duration) -> String {
        let mut cfg = ChartConfig::window(from, to).with_cell(cell);
        if !self.analysis.thresholds.is_empty() {
            for rank in 0..set.len() {
                let spec = set.by_rank(rank);
                let wcrt = self.analysis.wcrt[rank];
                // Annotate each release in the window.
                let mut k = 0i64;
                loop {
                    let release = Instant::EPOCH + spec.offset + spec.period * k;
                    if release >= to {
                        break;
                    }
                    let mark = release + wcrt;
                    if mark >= from && mark < to {
                        cfg = cfg.annotate(spec.id, mark, glyph::WCRT);
                    }
                    k += 1;
                }
            }
        }
        rtft_trace::render(&self.log, Some(set), &cfg)
    }
}

/// Why a scenario could not run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HarnessError {
    /// The admission analysis failed.
    Analysis(AnalysisError),
    /// The base system is infeasible — the paper's treatments presuppose a
    /// feasible admitted system.
    InfeasibleBase,
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Analysis(e) => write!(f, "analysis error: {e}"),
            HarnessError::InfeasibleBase => write!(f, "base system is not feasible"),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<AnalysisError> for HarnessError {
    fn from(e: AnalysisError) -> Self {
        HarnessError::Analysis(e)
    }
}

/// Run a scenario end to end with a throwaway analysis session (built
/// for the scenario's policy).
pub fn run_scenario(sc: &Scenario) -> Result<ScenarioOutcome, HarnessError> {
    let mut session = AnalyzerBuilder::new(&sc.set)
        .sched_policy(sc.policy)
        .build();
    run_scenario_with(sc, &mut session)
}

/// Run a scenario end to end against a caller-held [`Analyzer`] session
/// over the same task set — the memoized WCRTs and allowances are then
/// shared across scenarios (and epochs, see [`crate::dynamic`]).
///
/// # Panics
/// Panics if `session` analyses a different task set, or was built for
/// a different scheduling policy, than the scenario.
pub fn run_scenario_with(
    sc: &Scenario,
    session: &mut Analyzer,
) -> Result<ScenarioOutcome, HarnessError> {
    run_scenario_buffered(sc, session, &mut SimBuffers::new())
}

/// [`run_scenario_with`], reusing caller-held simulation storage.
///
/// A batch driver holds one [`SimBuffers`] per worker and passes it to
/// every run: the wake queue and occurrence outbox then keep their
/// allocations across jobs, and a trace buffer handed back via
/// [`SimBuffers::recycle_log`] (after digesting the outcome's log) is
/// reused too. The produced trace is identical to an unbuffered run.
///
/// # Panics
/// Panics if `session` analyses a different task set, or was built for
/// a different scheduling policy, than the scenario.
pub fn run_scenario_buffered(
    sc: &Scenario,
    session: &mut Analyzer,
    bufs: &mut SimBuffers,
) -> Result<ScenarioOutcome, HarnessError> {
    run_scenario_sunk(sc, session, bufs, None)
}

/// [`run_scenario_buffered`], additionally feeding every recorded event
/// to `sink` as the simulation produces it (the live-streaming path of
/// `rtft serve`; see [`rtft_sim::sink::TraceSink`]). The outcome — and
/// its trace — is byte-identical to the unsunk run.
///
/// # Panics
/// Panics if `session` analyses a different task set, or was built for
/// a different scheduling policy, than the scenario.
pub fn run_scenario_streamed(
    sc: &Scenario,
    session: &mut Analyzer,
    bufs: &mut SimBuffers,
    sink: &mut dyn TraceSink,
) -> Result<ScenarioOutcome, HarnessError> {
    run_scenario_sunk(sc, session, bufs, Some(sink))
}

fn run_scenario_sunk(
    sc: &Scenario,
    session: &mut Analyzer,
    bufs: &mut SimBuffers,
    sink: Option<&mut dyn TraceSink>,
) -> Result<ScenarioOutcome, HarnessError> {
    assert_eq!(
        session.task_set(),
        &sc.set,
        "run_scenario_with: session and scenario disagree on the task set"
    );
    assert_eq!(
        session.sched_policy(),
        sc.policy,
        "run_scenario_with: session and scenario disagree on the policy"
    );
    // Admission gate under the scenario's policy (exact WCRT test for
    // FP, WCRT-with-blocking for non-preemptive FP, processor-demand
    // test for EDF), then the per-task detection thresholds: the WCRTs
    // for the fixed-priority policies, the deadlines for EDF.
    match session.is_feasible() {
        Ok(true) => {}
        Ok(false) => return Err(HarnessError::InfeasibleBase),
        Err(e) => return Err(e.into()),
    }
    let wcrt = match session.policy_thresholds() {
        Ok(w) => w,
        Err(AnalysisError::Divergent { .. }) => return Err(HarnessError::InfeasibleBase),
        Err(e) => return Err(e.into()),
    };

    let mut thresholds = Vec::new();
    let mut equitable = None;
    let mut manager = None;
    let mut system_max = None;

    match sc.treatment {
        Treatment::NoDetection => {}
        Treatment::DetectOnly | Treatment::ImmediateStop { .. } => {
            thresholds = wcrt.clone();
        }
        Treatment::EquitableAllowance { .. } => {
            let eq = session
                .equitable_allowance()?
                .ok_or(HarnessError::InfeasibleBase)?;
            equitable = Some(eq.allowance);
            thresholds = eq.inflated_wcrt;
        }
        Treatment::SystemAllowance { policy, .. } => {
            let sa = session
                .system_allowance_with(policy)?
                .ok_or(HarnessError::InfeasibleBase)?;
            thresholds = wcrt.clone();
            manager = Some(AllowanceManager::new(sa.max_overrun.clone()));
            system_max = Some(sa.max_overrun);
        }
    }

    let config = SimConfig::until(sc.horizon)
        .with_timer_model(sc.timer_model)
        .with_stop_model(sc.stop_model)
        .with_overheads(sc.overheads)
        .with_policy(sc.policy);
    let mut sim = Simulator::new_in(sc.set.clone(), config, bufs).with_faults(sc.faults.clone());

    let log = if sc.treatment.has_detection() {
        let mut sup = FtSupervisor::new(sc.treatment, thresholds.clone(), wcrt.clone(), manager);
        sup.install_detectors(&mut sim, &sc.set);
        match sink {
            Some(s) => sim.run_streamed(&mut sup, s),
            None => sim.run(&mut sup),
        };
        sim.finish(bufs)
    } else {
        let mut sup = NullSupervisor;
        match sink {
            Some(s) => sim.run_streamed(&mut sup, s),
            None => sim.run(&mut sup),
        };
        sim.finish(bufs)
    };

    let stats = TraceStats::from_log(&log, Some(&sc.set));
    let verdict = Verdict::new(&sc.set, &stats);
    let mut injected_faulty: Vec<rtft_core::task::TaskId> = sc
        .faults
        .entries()
        .filter(|(_, _, d)| d.is_positive())
        .map(|(t, _, _)| t)
        .collect();
    injected_faulty.sort_unstable();
    injected_faulty.dedup();
    Ok(ScenarioOutcome {
        name: sc.name.clone(),
        log,
        stats,
        verdict,
        analysis: AnalysisSummary {
            wcrt,
            thresholds,
            equitable,
            system_allowance: system_max,
        },
        injected_faulty,
    })
}

/// Run the same system and fault plan under all five paper treatments, in
/// Figure 3→7 order.
pub fn run_paper_lineup(
    set: &TaskSet,
    faults: &FaultPlan,
    horizon: Instant,
    timer_model: TimerModel,
) -> Result<Vec<ScenarioOutcome>, HarnessError> {
    // One session serves all five treatments: the base WCRTs and both
    // allowance searches are computed once and memoized.
    let mut session = Analyzer::new(set);
    Treatment::paper_lineup()
        .into_iter()
        .map(|treatment| {
            let sc = Scenario::new(
                treatment.name(),
                set.clone(),
                faults.clone(),
                treatment,
                horizon,
            )
            .with_timer_model(timer_model);
            run_scenario_with(&sc, &mut session)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtft_core::task::{TaskBuilder, TaskId};
    use rtft_sim::stop::StopMode;

    fn ms(v: i64) -> Duration {
        Duration::millis(v)
    }

    fn t(v: i64) -> Instant {
        Instant::from_millis(v)
    }

    /// The paper's evaluation system (Table 2) with τ3 phased so a job of
    /// every task is released at t = 1000 (the Figures 3–7 window).
    pub fn paper_system() -> TaskSet {
        TaskSet::from_specs(vec![
            TaskBuilder::new(1, 20, ms(200), ms(29))
                .deadline(ms(70))
                .build(),
            TaskBuilder::new(2, 18, ms(250), ms(29))
                .deadline(ms(120))
                .build(),
            TaskBuilder::new(3, 16, ms(1500), ms(29))
                .deadline(ms(120))
                .offset(ms(1000))
                .build(),
        ])
    }

    /// The paper's injected fault: a cost overrun on τ1's job released at
    /// t = 1000 (its 5th job counting the synchronous one as job 0).
    fn paper_fault() -> FaultPlan {
        FaultPlan::none().overrun(TaskId(1), 5, ms(40))
    }

    #[test]
    fn fig3_no_detection_tau3_fails() {
        let sc = Scenario::new(
            "fig3",
            paper_system(),
            paper_fault(),
            Treatment::NoDetection,
            t(1300),
        );
        let out = run_scenario(&sc).unwrap();
        // τ1 and τ2 end before their deadlines; τ3 misses — "the case we
        // wish to avoid".
        assert_eq!(out.log.job_end(TaskId(1), 5), Some(t(1069)));
        assert_eq!(out.log.job_end(TaskId(2), 4), Some(t(1098)));
        assert_eq!(out.log.job_end(TaskId(3), 0), Some(t(1127)));
        assert_eq!(out.verdict.failed_tasks(), vec![TaskId(3)]);
        assert_eq!(out.collateral_failures(), vec![TaskId(3)]);
    }

    #[test]
    fn fig4_detection_only_same_schedule_with_detectors() {
        let sc = Scenario::new(
            "fig4",
            paper_system(),
            paper_fault(),
            Treatment::DetectOnly,
            t(1300),
        )
        .with_jrate_timers();
        let out = run_scenario(&sc).unwrap();
        // Same executions as Figure 3…
        assert_eq!(out.log.job_end(TaskId(1), 5), Some(t(1069)));
        assert_eq!(out.log.job_end(TaskId(3), 0), Some(t(1127)));
        assert_eq!(out.verdict.failed_tasks(), vec![TaskId(3)]);
        // …plus detectors with the quantization delays: τ1's fires at
        // 1030 (29→30), τ2's at 1060 (58→60), τ3's at 1090 (1087→1090).
        // The mechanism observes WCRT overruns, so the delayed victims τ2
        // and τ3 are flagged too — τ1's, the true fault, comes first.
        let fault = out.log.faults();
        assert_eq!(
            fault,
            vec![
                (TaskId(1), 5, t(1030)),
                (TaskId(2), 4, t(1060)),
                (TaskId(3), 0, t(1090)),
            ]
        );
        let detector_times: Vec<i64> = out
            .log
            .events()
            .iter()
            .filter(|e| {
                matches!(e.kind, rtft_trace::EventKind::DetectorRelease { .. })
                    && e.at >= t(1000)
                    && e.at < t(1150)
            })
            .map(|e| e.at.as_millis())
            .collect();
        assert!(detector_times.contains(&1030));
        assert!(detector_times.contains(&1060));
        assert!(detector_times.contains(&1090));
    }

    #[test]
    fn fig5_immediate_stop_confines_failure_to_tau1() {
        let sc = Scenario::new(
            "fig5",
            paper_system(),
            paper_fault(),
            Treatment::ImmediateStop {
                mode: StopMode::Permanent,
            },
            t(1300),
        )
        .with_jrate_timers();
        let out = run_scenario(&sc).unwrap();
        // τ1 stopped at its quantized WCRT (t = 1030).
        assert_eq!(out.log.stops(), vec![(TaskId(1), 5, t(1030))]);
        // Only τ1 fails; τ2 and τ3 finish comfortably (1059 / 1088) and
        // the CPU goes idle well before τ3's deadline — the paper's
        // "wasted time" observation.
        assert_eq!(out.log.job_end(TaskId(2), 4), Some(t(1059)));
        assert_eq!(out.log.job_end(TaskId(3), 0), Some(t(1088)));
        assert_eq!(out.verdict.failed_tasks(), vec![TaskId(1)]);
        assert!(out.collateral_failures().is_empty());
        let idle_after = out
            .log
            .events()
            .iter()
            .any(|e| matches!(e.kind, rtft_trace::EventKind::CpuIdle) && e.at == t(1088));
        assert!(idle_after, "processor must be free after τ3 finishes");
    }

    #[test]
    fn fig6_equitable_allowance_saves_everyone_but_tau1() {
        let sc = Scenario::new(
            "fig6",
            paper_system(),
            paper_fault(),
            Treatment::EquitableAllowance {
                mode: StopMode::Permanent,
            },
            t(1300),
        )
        .with_jrate_timers();
        let out = run_scenario(&sc).unwrap();
        assert_eq!(out.analysis.equitable, Some(ms(11)));
        assert_eq!(out.analysis.thresholds, vec![ms(40), ms(80), ms(120)]);
        // τ1 stopped at release + inflated WCRT = 1000 + 40 (40 is on the
        // 10 ms grid: no quantization delay).
        assert_eq!(out.log.stops(), vec![(TaskId(1), 5, t(1040))]);
        // τ2 and τ3 meet their deadlines; unused allowance remains (they
        // finish before deadline − nothing at 1120).
        assert_eq!(out.log.job_end(TaskId(2), 4), Some(t(1069)));
        assert_eq!(out.log.job_end(TaskId(3), 0), Some(t(1098)));
        assert_eq!(out.verdict.failed_tasks(), vec![TaskId(1)]);
    }

    #[test]
    fn fig7_system_allowance_maximizes_tau1_runtime() {
        let sc = Scenario::new(
            "fig7",
            paper_system(),
            paper_fault(),
            Treatment::SystemAllowance {
                mode: StopMode::Permanent,
                policy: rtft_core::allowance::SlackPolicy::ProtectAll,
            },
            t(1300),
        )
        .with_jrate_timers();
        let out = run_scenario(&sc).unwrap();
        assert_eq!(
            out.analysis.system_allowance,
            Some(vec![ms(33), ms(33), ms(33)])
        );
        // τ1 stopped 33 ms after its WCRT: t = 1000 + 29 + 33 = 1062.
        assert_eq!(out.log.stops(), vec![(TaskId(1), 5, t(1062))]);
        // τ2 and τ3 finish "just before their deadlines": 1091 and 1120.
        assert_eq!(out.log.job_end(TaskId(2), 4), Some(t(1091)));
        assert_eq!(out.log.job_end(TaskId(3), 0), Some(t(1120)));
        assert!(
            out.log.misses(TaskId(3)).is_empty(),
            "1120 is exactly on time"
        );
        assert_eq!(out.verdict.failed_tasks(), vec![TaskId(1)]);
    }

    #[test]
    fn lineup_ordering_of_tau1_runtime() {
        // Across treatments, τ1's stop time strictly increases:
        // immediate (1030) < equitable (1040) < system (1062) — the
        // paper's headline comparison.
        let outs = run_paper_lineup(
            &paper_system(),
            &paper_fault(),
            t(1300),
            TimerModel::jrate(),
        )
        .unwrap();
        let stop_time = |o: &ScenarioOutcome| o.log.stops().first().map(|s| s.2);
        assert_eq!(stop_time(&outs[0]), None);
        assert_eq!(stop_time(&outs[1]), None);
        let s2 = stop_time(&outs[2]).unwrap();
        let s3 = stop_time(&outs[3]).unwrap();
        let s4 = stop_time(&outs[4]).unwrap();
        assert!(s2 < s3 && s3 < s4, "{s2} < {s3} < {s4}");
        // And collateral damage only occurs without treatment.
        assert!(!outs[0].collateral_failures().is_empty());
        assert!(!outs[1].collateral_failures().is_empty());
        for o in &outs[2..] {
            assert!(o.collateral_failures().is_empty(), "{}", o.name);
        }
    }

    #[test]
    fn infeasible_base_is_rejected() {
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 5, ms(10), ms(8)).build(),
            TaskBuilder::new(2, 4, ms(10), ms(8)).build(),
        ]);
        let sc = Scenario::new("bad", set, FaultPlan::none(), Treatment::DetectOnly, t(100));
        assert_eq!(run_scenario(&sc).unwrap_err(), HarnessError::InfeasibleBase);
    }

    #[test]
    fn chart_renders_figures() {
        let sc = Scenario::new(
            "fig7",
            paper_system(),
            paper_fault(),
            Treatment::SystemAllowance {
                mode: StopMode::Permanent,
                policy: rtft_core::allowance::SlackPolicy::ProtectAll,
            },
            t(1300),
        )
        .with_jrate_timers();
        let out = run_scenario(&sc).unwrap();
        let chart = out.chart(&paper_system(), t(990), t(1140), ms(1));
        assert!(chart.contains("τ1"));
        assert!(chart.contains(glyph::STOP.to_string().as_str()));
        assert!(chart.contains(glyph::WCRT.to_string().as_str()));
        assert!(chart.contains(glyph::DETECTOR.to_string().as_str()));
    }
}
