//! # rtft-ft — temporal-fault detection and allowance treatments
//!
//! The runtime half of the paper's contribution. `rtft-core` proves what
//! the admission analysis knows (WCRTs, allowances); this crate turns
//! those numbers into executable fault tolerance on the `rtft-sim`
//! substrate:
//!
//! * [`detector`] — one periodic detector per task at `offset + WCRT`
//!   (paper §3): a WCRT overrun implies a cost overrun, so no CPU-usage
//!   monitoring is needed;
//! * [`treatment`] — the paper's §4 policies: no detection, detect-only,
//!   immediate stop, equitable allowance, system allowance;
//! * [`manager`] — the §4.3 consumed-overrun ledger;
//! * [`harness`] — scenario runner regenerating the paper's Figures 3–7
//!   and the ablation sweeps;
//! * [`verdict`] — which tasks failed, and whether damage was confined to
//!   the faulty task (the paper's success criterion);
//! * [`dynamic`] — §7 future work: online add/remove with adapting
//!   detectors;
//! * [`underrun`] — §7 future work: measuring cost under-runs and
//!   reassigning the freed slack.
//!
//! ```
//! use rtft_core::prelude::*;
//! use rtft_sim::prelude::*;
//! use rtft_ft::prelude::*;
//!
//! // Paper Table 2 system, τ3 phased into the observation window.
//! let set = TaskSet::from_specs(vec![
//!     TaskBuilder::new(1, 20, Duration::millis(200), Duration::millis(29))
//!         .deadline(Duration::millis(70)).build(),
//!     TaskBuilder::new(2, 18, Duration::millis(250), Duration::millis(29))
//!         .deadline(Duration::millis(120)).build(),
//!     TaskBuilder::new(3, 16, Duration::millis(1500), Duration::millis(29))
//!         .deadline(Duration::millis(120)).offset(Duration::millis(1000)).build(),
//! ]);
//! let faults = FaultPlan::none().overrun(TaskId(1), 5, Duration::millis(40));
//!
//! // Without detection, the fault fails innocent τ3 (paper Figure 3)…
//! let fig3 = run_scenario(&Scenario::new(
//!     "fig3", set.clone(), faults.clone(),
//!     Treatment::NoDetection, Instant::from_millis(1300),
//! )).unwrap();
//! assert_eq!(fig3.collateral_failures(), vec![TaskId(3)]);
//!
//! // …with the system allowance, damage is confined to τ1 (Figure 7).
//! let fig7 = run_scenario(&Scenario::new(
//!     "fig7", set.clone(), faults,
//!     Treatment::SystemAllowance {
//!         mode: StopMode::Permanent,
//!         policy: SlackPolicy::ProtectAll,
//!     },
//!     Instant::from_millis(1300),
//! ).with_jrate_timers()).unwrap();
//! assert!(fig7.collateral_failures().is_empty());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod detector;
pub mod dynamic;
pub mod harness;
pub mod manager;
pub mod treatment;
pub mod underrun;
pub mod verdict;
pub mod verify;

/// One-stop imports.
pub mod prelude {
    pub use crate::detector::FtSupervisor;
    pub use crate::dynamic::{DynamicSystem, EpochChange};
    pub use crate::harness::{
        run_paper_lineup, run_scenario, run_scenario_buffered, run_scenario_with, HarnessError,
        Scenario, ScenarioOutcome,
    };
    pub use crate::manager::AllowanceManager;
    pub use crate::treatment::Treatment;
    pub use crate::underrun::{suggest_reassignment, ObservedCosts};
    pub use crate::verdict::{TaskVerdict, Verdict};
    pub use crate::verify::{verify_analysis, VerificationReport};
    pub use rtft_core::allowance::SlackPolicy;
}
