//! The fault treatments of the paper's Section 4.

use rtft_core::allowance::SlackPolicy;
use rtft_sim::stop::StopMode;

/// Which of the paper's configurations to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Treatment {
    /// No detection mechanism at all — the Figure 3 baseline.
    NoDetection,
    /// Detectors installed, faults logged, nothing done — Figure 4.
    DetectOnly,
    /// §4.1: stop the faulty task as soon as its WCRT overrun is detected
    /// — Figure 5. "Very pessimistic."
    ImmediateStop {
        /// Job-only or thread-permanent stop.
        mode: StopMode,
    },
    /// §4.2: every task owns an equal allowance `A`; detectors sit at the
    /// *inflated* WCRTs and stop on overrun — Figure 6.
    EquitableAllowance {
        /// Job-only or thread-permanent stop.
        mode: StopMode,
    },
    /// §4.3: the first faulty task receives the whole system slack `M`;
    /// unconsumed remainder flows to later faulty tasks — Figure 7.
    SystemAllowance {
        /// Job-only or thread-permanent stop.
        mode: StopMode,
        /// Whose deadlines the slack search protects.
        policy: SlackPolicy,
    },
}

impl Treatment {
    /// The paper's five evaluated configurations, in Figure 3→7 order,
    /// with the paper's stop semantics (permanent thread stop).
    pub fn paper_lineup() -> [Treatment; 5] {
        [
            Treatment::NoDetection,
            Treatment::DetectOnly,
            Treatment::ImmediateStop {
                mode: StopMode::Permanent,
            },
            Treatment::EquitableAllowance {
                mode: StopMode::Permanent,
            },
            Treatment::SystemAllowance {
                mode: StopMode::Permanent,
                policy: SlackPolicy::ProtectAll,
            },
        ]
    }

    /// `true` iff detectors are installed.
    pub fn has_detection(&self) -> bool {
        !matches!(self, Treatment::NoDetection)
    }

    /// `true` iff faulty tasks get stopped.
    pub fn stops_faulty_tasks(&self) -> bool {
        matches!(
            self,
            Treatment::ImmediateStop { .. }
                | Treatment::EquitableAllowance { .. }
                | Treatment::SystemAllowance { .. }
        )
    }

    /// Stop mode, when the treatment stops tasks.
    pub fn stop_mode(&self) -> Option<StopMode> {
        match *self {
            Treatment::ImmediateStop { mode }
            | Treatment::EquitableAllowance { mode }
            | Treatment::SystemAllowance { mode, .. } => Some(mode),
            _ => None,
        }
    }

    /// Short stable name (experiment artifacts, bench labels).
    pub fn name(&self) -> &'static str {
        match self {
            Treatment::NoDetection => "no-detection",
            Treatment::DetectOnly => "detect-only",
            Treatment::ImmediateStop { .. } => "immediate-stop",
            Treatment::EquitableAllowance { .. } => "equitable-allowance",
            Treatment::SystemAllowance { .. } => "system-allowance",
        }
    }
}

impl std::fmt::Display for Treatment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_matches_paper_order() {
        let lineup = Treatment::paper_lineup();
        let names: Vec<&str> = lineup.iter().map(Treatment::name).collect();
        assert_eq!(
            names,
            vec![
                "no-detection",
                "detect-only",
                "immediate-stop",
                "equitable-allowance",
                "system-allowance"
            ]
        );
    }

    #[test]
    fn capability_flags() {
        assert!(!Treatment::NoDetection.has_detection());
        assert!(Treatment::DetectOnly.has_detection());
        assert!(!Treatment::DetectOnly.stops_faulty_tasks());
        let stop = Treatment::ImmediateStop {
            mode: StopMode::Permanent,
        };
        assert!(stop.stops_faulty_tasks());
        assert_eq!(stop.stop_mode(), Some(StopMode::Permanent));
        assert_eq!(Treatment::NoDetection.stop_mode(), None);
    }

    #[test]
    fn display_is_name() {
        let t = Treatment::SystemAllowance {
            mode: StopMode::JobOnly,
            policy: SlackPolicy::ProtectAll,
        };
        assert_eq!(t.to_string(), "system-allowance");
    }
}
