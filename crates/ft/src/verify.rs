//! Analysis–execution cross-checking.
//!
//! The paper validates its feasibility methods by executing the analysed
//! system "on true Real-time Java systems of tasks, and not the awaited
//! theoretical behaviors" (§5). This module packages that methodology:
//! run the task set fault-free on the simulator over (a bounded piece of)
//! its hyperperiod and compare the observed response times against the
//! analytical WCRTs.
//!
//! For a *synchronous* set the critical-instant theorem makes the check
//! tight: the first job of every task must attain exactly its analytic
//! level-fixed-point response. For offset sets the observed values are
//! only bounded above. Both directions are reported.

use crate::harness::HarnessError;
use rtft_core::analyzer::Analyzer;
use rtft_core::error::AnalysisError;
use rtft_core::task::{TaskId, TaskSet};
use rtft_core::time::{Duration, Instant};
use rtft_sim::engine::run_plain;
use rtft_trace::TraceStats;

/// Per-task line of a verification report.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TaskVerification {
    /// The task.
    pub task: TaskId,
    /// Analytic WCRT.
    pub analytic: Duration,
    /// Largest response observed in execution (`None`: no job completed).
    pub observed: Option<Duration>,
    /// First-job response observed (the critical-instant probe).
    pub first_job: Option<Duration>,
    /// Analytic first-job response (job 0 of the busy period).
    pub analytic_first: Duration,
    /// `observed ≤ analytic` — the soundness direction.
    pub sound: bool,
    /// For synchronous sets: `first_job == analytic_first` — the
    /// exactness direction.
    pub exact: bool,
}

/// Verification outcome over a whole set.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerificationReport {
    /// Per-task lines, rank order.
    pub per_task: Vec<TaskVerification>,
    /// The simulated horizon.
    pub horizon: Instant,
    /// Whether the set was synchronous (exactness meaningful).
    pub synchronous: bool,
}

impl VerificationReport {
    /// `true` iff no observation exceeded its analytic bound.
    pub fn is_sound(&self) -> bool {
        self.per_task.iter().all(|t| t.sound)
    }

    /// `true` iff (synchronous set) every first-job probe matched exactly.
    pub fn is_exact(&self) -> bool {
        self.synchronous && self.per_task.iter().all(|t| t.exact)
    }
}

impl std::fmt::Display for VerificationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<6} {:>12} {:>12} {:>12} {:>8} {:>7}",
            "task", "analytic", "observed", "first-job", "sound", "exact"
        )?;
        for t in &self.per_task {
            writeln!(
                f,
                "{:<6} {:>12} {:>12} {:>12} {:>8} {:>7}",
                t.task.to_string(),
                t.analytic.to_string(),
                t.observed.map_or("-".into(), |d| d.to_string()),
                t.first_job.map_or("-".into(), |d| d.to_string()),
                t.sound,
                t.exact,
            )?;
        }
        Ok(())
    }
}

/// Default cap on the verification horizon (hyperperiods can explode).
pub const DEFAULT_HORIZON_CAP: Duration = Duration::secs(60);

/// Execute `set` fault-free and compare against its analysis.
///
/// The horizon is `min(hyperperiod + max offset, cap)` — one full pattern
/// where representable.
pub fn verify_analysis(set: &TaskSet, cap: Duration) -> Result<VerificationReport, HarnessError> {
    let mut analysis = Analyzer::new(set);
    let mut analytic = Vec::with_capacity(set.len());
    for rank in 0..set.len() {
        match analysis.analyze(rank) {
            Ok(r) => analytic.push(r),
            Err(AnalysisError::Divergent { .. }) => return Err(HarnessError::InfeasibleBase),
            Err(e) => return Err(HarnessError::Analysis(e)),
        }
    }

    let horizon = Instant::EPOCH + set.hyperperiod().saturating_add(set.max_offset()).min(cap);
    let log = run_plain(set.clone(), horizon);
    let stats = TraceStats::from_log(&log, Some(set));
    let synchronous = set.is_synchronous();

    let per_task = (0..set.len())
        .map(|rank| {
            let spec = set.by_rank(rank);
            let observed = stats.observed_wcrt(spec.id);
            let first_job = stats.job(spec.id, 0).and_then(|j| j.response());
            let analytic_wcrt = analytic[rank].wcrt;
            let analytic_first = analytic[rank].jobs[0].response;
            TaskVerification {
                task: spec.id,
                analytic: analytic_wcrt,
                observed,
                first_job,
                analytic_first,
                sound: observed.is_none_or(|o| o <= analytic_wcrt),
                exact: !synchronous || first_job == Some(analytic_first),
            }
        })
        .collect();

    Ok(VerificationReport {
        per_task,
        horizon,
        synchronous,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtft_core::task::TaskBuilder;

    fn ms(v: i64) -> Duration {
        Duration::millis(v)
    }

    fn table2() -> TaskSet {
        TaskSet::from_specs(vec![
            TaskBuilder::new(1, 20, ms(200), ms(29))
                .deadline(ms(70))
                .build(),
            TaskBuilder::new(2, 18, ms(250), ms(29))
                .deadline(ms(120))
                .build(),
            TaskBuilder::new(3, 16, ms(1500), ms(29))
                .deadline(ms(120))
                .build(),
        ])
    }

    #[test]
    fn paper_system_verifies_exactly() {
        let report = verify_analysis(&table2(), DEFAULT_HORIZON_CAP).unwrap();
        assert!(report.synchronous);
        assert!(report.is_sound());
        assert!(report.is_exact(), "{report}");
        assert_eq!(report.horizon, Instant::from_millis(3000));
        // The critical-instant probes hit the analytic values exactly.
        let first: Vec<i64> = report
            .per_task
            .iter()
            .map(|t| t.first_job.unwrap().as_millis())
            .collect();
        assert_eq!(first, vec![29, 58, 87]);
    }

    #[test]
    fn offset_sets_are_sound_but_not_probed_for_exactness() {
        let mut tau3 = table2().by_id(TaskId(3)).unwrap().clone();
        tau3.offset = ms(1000);
        let set = table2().with_replaced(tau3);
        let report = verify_analysis(&set, DEFAULT_HORIZON_CAP).unwrap();
        assert!(!report.synchronous);
        assert!(report.is_sound());
        assert!(!report.is_exact(), "exactness is a synchronous-only claim");
    }

    #[test]
    fn divergent_sets_rejected() {
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 5, ms(10), ms(8)).build(),
            TaskBuilder::new(2, 4, ms(10), ms(8)).build(),
        ]);
        assert_eq!(
            verify_analysis(&set, DEFAULT_HORIZON_CAP).unwrap_err(),
            HarnessError::InfeasibleBase
        );
    }

    #[test]
    fn cap_bounds_the_horizon() {
        // Co-prime periods make the hyperperiod big; the cap kicks in.
        let set = TaskSet::from_specs(vec![
            TaskBuilder::new(1, 5, ms(997), ms(1)).build(),
            TaskBuilder::new(2, 4, ms(1009), ms(1)).build(),
            TaskBuilder::new(3, 3, ms(1013), ms(1)).build(),
        ]);
        let report = verify_analysis(&set, ms(5_000)).unwrap();
        assert_eq!(report.horizon, Instant::from_millis(5_000));
        assert!(report.is_sound());
    }

    #[test]
    fn report_renders() {
        let report = verify_analysis(&table2(), DEFAULT_HORIZON_CAP).unwrap();
        let s = report.to_string();
        assert!(s.contains("analytic"));
        assert!(s.contains("29ms"));
        assert!(s.contains("true"));
    }
}
