//! The fault-detector supervisor — the paper's Section 3 mechanism wired
//! to the simulator.
//!
//! One periodic detector per task: period `T_i`, first release
//! `O_i + threshold_i` (threshold = WCRT, or the inflated WCRT for the
//! equitable treatment), quantized by the platform timer model exactly as
//! jRate quantized the authors' `PeriodicTimer`s. The `k`-th firing
//! inspects job `k`: if that job has not finished, a cost overrun has
//! necessarily occurred — a temporal fault — and the configured treatment
//! reacts (log, stop now, or grant allowance and arm a stop point).

use crate::manager::AllowanceManager;
use crate::treatment::Treatment;
use rtft_core::task::TaskSet;
use rtft_core::time::{Duration, Instant};
use rtft_sim::engine::{SimState, Simulator};
use rtft_sim::process::JobOutcome;
use rtft_sim::stop::StopMode;
use rtft_sim::supervisor::{Command, Occurrence, Supervisor};
use rtft_trace::EventKind;
use std::collections::BTreeMap;

/// Encode a `(rank, job)` pair into a one-shot tag.
fn stop_tag(rank: usize, job: u64) -> u64 {
    ((rank as u64) << 40) | (job & 0xff_ffff_ffff)
}

/// Decode a one-shot tag back into `(rank, job)`.
fn untag(tag: u64) -> (usize, u64) {
    ((tag >> 40) as usize, tag & 0xff_ffff_ffff)
}

/// An armed allowance grant, waiting for either job completion or the
/// stop point.
#[derive(Clone, Copy, Debug)]
struct Grant {
    /// Extra time granted past the WCRT.
    amount: Duration,
}

/// The supervisor implementing detection + treatment.
pub struct FtSupervisor {
    treatment: Treatment,
    /// Per-rank detection thresholds (relative to each release).
    thresholds: Vec<Duration>,
    /// Per-rank analytic WCRTs (stop-point arithmetic).
    wcrt: Vec<Duration>,
    /// System-allowance ledger (only for that treatment).
    manager: Option<AllowanceManager>,
    /// Outstanding grants by `(rank, job)`.
    grants: BTreeMap<(usize, u64), Grant>,
    /// Faults detected, in order (rank, job, when).
    detected: Vec<(usize, u64, Instant)>,
}

impl FtSupervisor {
    /// Build the supervisor.
    ///
    /// * `thresholds[i]` — detector offset after each release of rank `i`;
    /// * `wcrt[i]` — analytic WCRT (equals `thresholds[i]` except for the
    ///   equitable treatment, whose thresholds are inflated);
    /// * `manager` — required iff `treatment` is
    ///   [`Treatment::SystemAllowance`].
    pub fn new(
        treatment: Treatment,
        thresholds: Vec<Duration>,
        wcrt: Vec<Duration>,
        manager: Option<AllowanceManager>,
    ) -> Self {
        assert_eq!(thresholds.len(), wcrt.len());
        if matches!(treatment, Treatment::SystemAllowance { .. }) {
            assert!(manager.is_some(), "system allowance needs a manager");
        }
        FtSupervisor {
            treatment,
            thresholds,
            wcrt,
            manager,
            grants: BTreeMap::new(),
            detected: Vec::new(),
        }
    }

    /// The periodic detector timers this supervisor needs, as
    /// `(first, period, tag)` rows — one per rank, empty for
    /// [`Treatment::NoDetection`]. Engines install each row verbatim
    /// (the uniprocessor [`Simulator`] via [`Self::install_detectors`],
    /// the global engine through its own `add_periodic_timer`), so a
    /// detector grid is identical no matter which engine runs it.
    pub fn detector_specs(&self, set: &TaskSet) -> Vec<(Duration, Duration, u64)> {
        if !self.treatment.has_detection() {
            return Vec::new();
        }
        (0..set.len())
            .map(|rank| {
                let spec = set.by_rank(rank);
                (
                    spec.offset + self.thresholds[rank],
                    spec.period,
                    rank as u64,
                )
            })
            .collect()
    }

    /// Install one periodic detector per task on `sim` (no-op for
    /// [`Treatment::NoDetection`]). Must be called before `run`.
    pub fn install_detectors(&self, sim: &mut Simulator, set: &TaskSet) {
        for (first, period, tag) in self.detector_specs(set) {
            sim.add_periodic_timer(first, period, tag);
        }
    }

    /// Faults detected so far, as `(rank, job, when)`.
    pub fn detected(&self) -> &[(usize, u64, Instant)] {
        &self.detected
    }

    /// The allowance ledger, when present.
    pub fn manager(&self) -> Option<&AllowanceManager> {
        self.manager.as_ref()
    }

    /// Nominal release instant of a job (releases are strictly periodic).
    fn release_of(set: &TaskSet, rank: usize, job: u64) -> Instant {
        let spec = set.by_rank(rank);
        Instant::EPOCH + spec.offset + spec.period * job as i64
    }

    fn on_detector_fire(&mut self, state: &SimState, rank: usize, job: u64) -> Vec<Command> {
        let set = state.task_set();
        let task = set.by_rank(rank).id;
        let mut out = vec![Command::Trace(EventKind::DetectorRelease { task, job })];
        if state.is_dead(rank) {
            return out;
        }
        match state.outcome(rank, job) {
            JobOutcome::Finished | JobOutcome::Abandoned => return out,
            JobOutcome::Pending => {}
        }
        // The inspected job is past its (possibly inflated) WCRT and
        // unfinished: temporal fault.
        self.detected.push((rank, job, state.now()));
        out.push(Command::Trace(EventKind::FaultDetected { task, job }));
        match self.treatment {
            Treatment::NoDetection | Treatment::DetectOnly => {}
            Treatment::ImmediateStop { mode } | Treatment::EquitableAllowance { mode } => {
                // For the equitable treatment the threshold already
                // includes the allowance: stopping now is the §4.2 rule.
                out.push(Command::Stop { rank, mode });
            }
            Treatment::SystemAllowance { mode, .. } => {
                // §4.3: the stop point is the *static* `WCRT_i + M_i`.
                // The paper's "subtracting the more priority tasks
                // overrun" happens automatically in the schedule: if a
                // higher task consumed δ of the slack, this task's
                // completion is pushed back by δ, so the fixed stop point
                // leaves it exactly `M_i − δ` of its own overrun — the
                // remainder-redistribution rule. (A ledger-based deduction
                // would wrongly stop *victim* tasks that merely inherited
                // the delay: in Figure 7, τ2 and τ3 overrun their WCRTs
                // only because τ1 was granted the slack, and both finish
                // exactly at `WCRT + 33`.)
                let grant = self
                    .manager
                    .as_ref()
                    .expect("manager checked at construction")
                    .max_overrun(rank);
                if grant.is_zero() {
                    out.push(Command::Stop { rank, mode });
                } else {
                    let stop_at = Self::release_of(set, rank, job) + self.wcrt[rank] + grant;
                    self.grants.insert((rank, job), Grant { amount: grant });
                    out.push(Command::Trace(EventKind::AllowanceGranted {
                        task,
                        job,
                        amount: grant,
                    }));
                    out.push(Command::ScheduleOneShot {
                        at: stop_at,
                        tag: stop_tag(rank, job),
                    });
                }
            }
        }
        out
    }

    fn on_stop_point(&mut self, state: &SimState, rank: usize, job: u64) -> Vec<Command> {
        let Some(grant) = self.grants.remove(&(rank, job)) else {
            return Vec::new();
        };
        match state.outcome(rank, job) {
            JobOutcome::Pending => {
                // Still running at the stop point: the whole grant is gone.
                if let Some(m) = self.manager.as_mut() {
                    m.record(rank, grant.amount);
                }
                let mode = self.treatment.stop_mode().unwrap_or(StopMode::Permanent);
                vec![Command::Stop { rank, mode }]
            }
            // Finished or already abandoned between detection and the stop
            // point: consumption was recorded by `on_job_finished`.
            _ => Vec::new(),
        }
    }

    fn on_job_finished(&mut self, state: &SimState, rank: usize, job: u64) -> Vec<Command> {
        if let Some(grant) = self.grants.remove(&(rank, job)) {
            // A granted job finished early: record only what it actually
            // used past the WCRT; the remainder stays available — the
            // paper's remainder-redistribution rule.
            let release = Self::release_of(state.task_set(), rank, job);
            let used = (state.now() - release - self.wcrt[rank])
                .max(Duration::ZERO)
                .min(grant.amount);
            if let Some(m) = self.manager.as_mut() {
                m.record(rank, used);
            }
        }
        Vec::new()
    }
}

impl Supervisor for FtSupervisor {
    fn on_occurrence(&mut self, state: &SimState, occ: Occurrence) -> Vec<Command> {
        match occ {
            Occurrence::TimerFired { tag, count, .. } => {
                self.on_detector_fire(state, tag as usize, count)
            }
            Occurrence::OneShotFired { tag } => {
                let (rank, job) = untag(tag);
                self.on_stop_point(state, rank, job)
            }
            Occurrence::JobFinished { rank, job } => self.on_job_finished(state, rank, job),
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtft_core::task::{TaskBuilder, TaskId};
    use rtft_sim::engine::SimConfig;
    use rtft_sim::fault::FaultPlan;

    fn ms(v: i64) -> Duration {
        Duration::millis(v)
    }

    fn t(v: i64) -> Instant {
        Instant::from_millis(v)
    }

    fn one_task() -> TaskSet {
        TaskSet::from_specs(vec![TaskBuilder::new(1, 20, ms(200), ms(29))
            .deadline(ms(70))
            .build()])
    }

    #[test]
    fn tag_roundtrip() {
        let tag = stop_tag(3, 12345);
        assert_eq!(untag(tag), (3, 12345));
        let tag = stop_tag(0, 0);
        assert_eq!(untag(tag), (0, 0));
    }

    #[test]
    fn detector_fires_without_fault_on_healthy_job() {
        let set = one_task();
        let mut sim = Simulator::new(set.clone(), SimConfig::until(t(250)));
        let mut sup = FtSupervisor::new(Treatment::DetectOnly, vec![ms(29)], vec![ms(29)], None);
        sup.install_detectors(&mut sim, &set);
        sim.run(&mut sup);
        let log = sim.trace();
        // Detector released at 29 (exact timers) and 229; no fault.
        assert_eq!(
            log.count(|e| matches!(e.kind, EventKind::DetectorRelease { .. })),
            2
        );
        assert!(log.faults().is_empty());
        assert!(sup.detected().is_empty());
    }

    #[test]
    fn overrun_is_detected_and_logged() {
        let set = one_task();
        let plan = FaultPlan::none().overrun(TaskId(1), 0, ms(20));
        let mut sim = Simulator::new(set.clone(), SimConfig::until(t(150))).with_faults(plan);
        let mut sup = FtSupervisor::new(Treatment::DetectOnly, vec![ms(29)], vec![ms(29)], None);
        sup.install_detectors(&mut sim, &set);
        sim.run(&mut sup);
        let log = sim.trace();
        assert_eq!(log.faults(), vec![(TaskId(1), 0, t(29))]);
        // Job still ran to completion (no treatment).
        assert_eq!(log.job_end(TaskId(1), 0), Some(t(49)));
        assert_eq!(sup.detected(), &[(0, 0, t(29))]);
    }

    #[test]
    fn immediate_stop_kills_at_detection() {
        let set = one_task();
        let plan = FaultPlan::none().overrun(TaskId(1), 0, ms(20));
        let mut sim = Simulator::new(set.clone(), SimConfig::until(t(400))).with_faults(plan);
        let mut sup = FtSupervisor::new(
            Treatment::ImmediateStop {
                mode: StopMode::Permanent,
            },
            vec![ms(29)],
            vec![ms(29)],
            None,
        );
        sup.install_detectors(&mut sim, &set);
        sim.run(&mut sup);
        let log = sim.trace();
        assert_eq!(log.stops(), vec![(TaskId(1), 0, t(29))]);
        assert!(log.job_release(TaskId(1), 1).is_none(), "permanent stop");
    }

    #[test]
    fn system_allowance_grants_then_stops() {
        let set = one_task();
        // Overrun far beyond any grant.
        let plan = FaultPlan::none().overrun(TaskId(1), 0, ms(100));
        let mut sim = Simulator::new(set.clone(), SimConfig::until(t(400))).with_faults(plan);
        let manager = AllowanceManager::new(vec![ms(33)]);
        let mut sup = FtSupervisor::new(
            Treatment::SystemAllowance {
                mode: StopMode::Permanent,
                policy: rtft_core::allowance::SlackPolicy::ProtectAll,
            },
            vec![ms(29)],
            vec![ms(29)],
            Some(manager),
        );
        sup.install_detectors(&mut sim, &set);
        sim.run(&mut sup);
        let log = sim.trace();
        // Grant of 33 ms at detection (t=29), stop at 29 + 33 = 62.
        assert_eq!(
            log.count(|e| matches!(e.kind, EventKind::AllowanceGranted { .. })),
            1
        );
        assert_eq!(log.stops(), vec![(TaskId(1), 0, t(62))]);
        assert_eq!(sup.manager().unwrap().consumed(0), ms(33));
    }

    #[test]
    fn granted_job_finishing_early_returns_remainder() {
        let set = one_task();
        // Overrun of 10 ms: job ends at 39, well before the 62 ms stop.
        let plan = FaultPlan::none().overrun(TaskId(1), 0, ms(10));
        let mut sim = Simulator::new(set.clone(), SimConfig::until(t(400))).with_faults(plan);
        let manager = AllowanceManager::new(vec![ms(33)]);
        let mut sup = FtSupervisor::new(
            Treatment::SystemAllowance {
                mode: StopMode::Permanent,
                policy: rtft_core::allowance::SlackPolicy::ProtectAll,
            },
            vec![ms(29)],
            vec![ms(29)],
            Some(manager),
        );
        sup.install_detectors(&mut sim, &set);
        sim.run(&mut sup);
        let log = sim.trace();
        assert!(log.stops().is_empty(), "job finished before the stop point");
        assert_eq!(log.job_end(TaskId(1), 0), Some(t(39)));
        // Only the 10 ms actually used are charged; 23 ms remain.
        assert_eq!(sup.manager().unwrap().consumed(0), ms(10));
        assert_eq!(sup.manager().unwrap().grant(0), ms(23));
    }

    #[test]
    fn quantized_detectors_shift_detection() {
        let set = one_task();
        let plan = FaultPlan::none().overrun(TaskId(1), 0, ms(20));
        let mut sim = Simulator::new(set.clone(), SimConfig::until(t(150)).with_jrate_timers())
            .with_faults(plan);
        let mut sup = FtSupervisor::new(Treatment::DetectOnly, vec![ms(29)], vec![ms(29)], None);
        sup.install_detectors(&mut sim, &set);
        sim.run(&mut sup);
        // jRate grid: detector at 30 instead of 29.
        assert_eq!(sim.trace().faults(), vec![(TaskId(1), 0, t(30))]);
    }
}
