//! Golden-trace snapshots of the paper's Figure 3–7 scenarios.
//!
//! The five lineup runs are pinned as full trace-log text under
//! `tests/golden/` so engine refactors cannot silently shift event
//! orderings, timings or quantization behaviour. On a legitimate
//! behaviour change, regenerate with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p rtft-ft --test golden_traces
//! ```
//!
//! and review the diff like any other code change.

use rtft_core::task::TaskId;
use rtft_core::time::{Duration, Instant};
use rtft_ft::harness::run_paper_lineup;
use rtft_ft::treatment::Treatment;
use rtft_sim::fault::FaultPlan;
use rtft_sim::timer::TimerModel;

fn lineup_traces() -> Vec<(String, String)> {
    let set = rtft_taskgen_paper_system();
    let faults = FaultPlan::none().overrun(TaskId(1), 5, Duration::millis(40));
    let outs = run_paper_lineup(
        &set,
        &faults,
        Instant::from_millis(1300),
        TimerModel::jrate(),
    )
    .expect("the paper system is feasible");
    let figures = ["fig3", "fig4", "fig5", "fig6", "fig7"];
    assert_eq!(outs.len(), figures.len());
    assert_eq!(
        Treatment::paper_lineup().len(),
        figures.len(),
        "figures follow the lineup order"
    );
    outs.into_iter()
        .zip(figures)
        .map(|(out, fig)| (fig.to_string(), rtft_trace::format::to_text(&out.log)))
        .collect()
}

/// The Table 2 system with τ3 phased into the figure window (kept local
/// so a taskgen change cannot silently re-pin these snapshots).
fn rtft_taskgen_paper_system() -> rtft_core::task::TaskSet {
    use rtft_core::task::TaskBuilder;
    let ms = Duration::millis;
    rtft_core::task::TaskSet::from_specs(vec![
        TaskBuilder::new(1, 20, ms(200), ms(29))
            .deadline(ms(70))
            .build(),
        TaskBuilder::new(2, 18, ms(250), ms(29))
            .deadline(ms(120))
            .build(),
        TaskBuilder::new(3, 16, ms(1500), ms(29))
            .deadline(ms(120))
            .offset(ms(1000))
            .build(),
    ])
}

fn golden_path(fig: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{fig}.trace"))
}

#[test]
fn figures_3_to_7_match_their_golden_traces() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let mut mismatches = Vec::new();
    for (fig, text) in lineup_traces() {
        let path = golden_path(&fig);
        if update {
            std::fs::create_dir_all(path.parent().expect("has parent")).unwrap();
            std::fs::write(&path, &text).unwrap();
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden file {} ({e}); run with UPDATE_GOLDEN=1",
                path.display()
            )
        });
        if text != golden {
            // Point at the first diverging line — a trace is hundreds of
            // events and the full diff drowns the signal.
            let diverge = text
                .lines()
                .zip(golden.lines())
                .position(|(a, b)| a != b)
                .map_or_else(
                    || {
                        format!(
                            "lengths differ: {} vs {} lines",
                            text.lines().count(),
                            golden.lines().count()
                        )
                    },
                    |i| {
                        format!(
                            "first divergence at line {}:\n  now:    {}\n  golden: {}",
                            i + 1,
                            text.lines().nth(i).unwrap_or(""),
                            golden.lines().nth(i).unwrap_or("")
                        )
                    },
                );
            mismatches.push(format!("{fig}: {diverge}"));
        }
    }
    assert!(
        mismatches.is_empty(),
        "golden traces drifted (review, then UPDATE_GOLDEN=1 to re-pin):\n{}",
        mismatches.join("\n")
    );
}

/// Stricter than the snapshot test above: the committed golden files
/// must equal the freshly rendered traces **byte for byte**, and this
/// check cannot be silenced with `UPDATE_GOLDEN=1` — it reads the raw
/// bytes and never rewrites them. An engine change that shifts even a
/// trailing newline has to show up here as a red build, not a re-pin.
#[test]
fn figures_3_to_7_are_byte_identical_without_repinning() {
    for (fig, text) in lineup_traces() {
        let path = golden_path(&fig);
        let golden = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("missing golden file {} ({e})", path.display()));
        assert!(
            golden == text.as_bytes(),
            "{fig}: rendered trace is not byte-identical to {} \
             ({} rendered bytes vs {} golden bytes)",
            path.display(),
            text.len(),
            golden.len()
        );
    }
}

#[test]
fn golden_traces_still_encode_the_headline_claims() {
    // Guard the guard: the pinned texts must contain the famous instants
    // (trace lines are `<ns> <tag> task <id> job <n>`) so a bad
    // regeneration cannot pin nonsense.
    for (fig, needle) in [
        ("fig3", "1127000000 end task 3 job 0"), // τ3's collateral late finish
        ("fig5", "1030000000 stop task 1 job 5"), // immediate stop at the quantized WCRT
        ("fig6", "1040000000 stop task 1 job 5"), // equitable stop at the inflated WCRT
        ("fig7", "1062000000 stop task 1 job 5"), // system-allowance stop
    ] {
        let path = golden_path(fig);
        if let Ok(text) = std::fs::read_to_string(&path) {
            assert!(text.contains(needle), "{fig} lost `{needle}`");
        }
    }
}
