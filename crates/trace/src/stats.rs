//! Per-job and per-task statistics derived from a trace.
//!
//! This is the analysis half of the paper's second tool: given the raw key
//! dates (releases, starts, ends, detector firings), rebuild each job's
//! lifecycle and summarize response times, deadline outcomes and stops.

use crate::event::{EventKind, JobIndex};
use crate::log::TraceLog;
use rtft_core::task::{TaskId, TaskSet};
use rtft_core::time::{Duration, Instant};
use std::collections::BTreeMap;

/// Reconstructed lifecycle of a single job.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct JobRecord {
    /// Owning task.
    pub task: TaskId,
    /// Job index.
    pub job: JobIndex,
    /// Release instant.
    pub release: Instant,
    /// First dispatch, if the job ever ran.
    pub start: Option<Instant>,
    /// Completion, if the job finished normally.
    pub end: Option<Instant>,
    /// Absolute deadline (`release + D`), when the task set is provided.
    pub deadline: Option<Instant>,
    /// `true` iff a deadline-miss event was recorded for this job.
    pub missed: bool,
    /// `true` iff the treatment stopped this job.
    pub stopped: bool,
    /// `true` iff a detector flagged this job faulty.
    pub faulty: bool,
}

impl JobRecord {
    /// Response time `end − release`, when the job completed.
    pub fn response(&self) -> Option<Duration> {
        self.end.map(|e| e - self.release)
    }

    /// `true` iff the job completed normally before its deadline.
    pub fn met_deadline(&self) -> bool {
        !self.missed
            && !self.stopped
            && match (self.end, self.deadline) {
                (Some(end), Some(dl)) => end <= dl,
                (Some(_), None) => true,
                _ => false,
            }
    }
}

/// Summary over the jobs of one task.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TaskSummary {
    /// Jobs released.
    pub released: usize,
    /// Jobs completed normally.
    pub completed: usize,
    /// Deadline misses.
    pub missed: usize,
    /// Jobs stopped by a treatment.
    pub stopped: usize,
    /// Jobs flagged faulty by a detector.
    pub faults: usize,
    /// Largest observed response time.
    pub max_response: Option<Duration>,
    /// Smallest observed response time.
    pub min_response: Option<Duration>,
    /// Sum of observed response times (for the mean).
    pub total_response: Duration,
}

impl TaskSummary {
    /// Mean observed response time.
    pub fn mean_response(&self) -> Option<Duration> {
        if self.completed == 0 {
            None
        } else {
            Some(self.total_response / self.completed as i64)
        }
    }
}

/// Job records and per-task summaries extracted from one trace.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct TraceStats {
    jobs: BTreeMap<(TaskId, JobIndex), JobRecord>,
    summaries: BTreeMap<TaskId, TaskSummary>,
}

impl TraceStats {
    /// Build statistics from a log. When `set` is provided, absolute
    /// deadlines are attached so [`JobRecord::met_deadline`] can judge jobs
    /// even if the producer did not emit explicit miss events.
    pub fn from_log(log: &TraceLog, set: Option<&TaskSet>) -> Self {
        let mut jobs: BTreeMap<(TaskId, JobIndex), JobRecord> = BTreeMap::new();
        for e in log.events() {
            let (Some(task), Some(job)) = (e.kind.task(), e.kind.job()) else {
                continue;
            };
            let entry = jobs.entry((task, job)).or_insert(JobRecord {
                task,
                job,
                release: e.at,
                start: None,
                end: None,
                deadline: None,
                missed: false,
                stopped: false,
                faulty: false,
            });
            match e.kind {
                EventKind::JobRelease { .. } => {
                    entry.release = e.at;
                    if let Some(set) = set {
                        if let Some(spec) = set.by_id(task) {
                            entry.deadline = Some(e.at + spec.deadline);
                        }
                    }
                }
                EventKind::JobStart { .. } => entry.start = Some(e.at),
                EventKind::JobEnd { .. } => entry.end = Some(e.at),
                EventKind::DeadlineMiss { .. } => entry.missed = true,
                EventKind::TaskStopped { .. } => entry.stopped = true,
                EventKind::FaultDetected { .. } => entry.faulty = true,
                _ => {}
            }
        }

        let mut summaries: BTreeMap<TaskId, TaskSummary> = BTreeMap::new();
        for record in jobs.values() {
            let s = summaries.entry(record.task).or_default();
            s.released += 1;
            if record.missed {
                s.missed += 1;
            }
            if record.stopped {
                s.stopped += 1;
            }
            if record.faulty {
                s.faults += 1;
            }
            if let Some(r) = record.response() {
                s.completed += 1;
                s.total_response += r;
                s.max_response = Some(s.max_response.map_or(r, |m| m.max(r)));
                s.min_response = Some(s.min_response.map_or(r, |m| m.min(r)));
            }
        }
        TraceStats { jobs, summaries }
    }

    /// Record of a particular job.
    pub fn job(&self, task: TaskId, job: JobIndex) -> Option<&JobRecord> {
        self.jobs.get(&(task, job))
    }

    /// All job records, ordered by `(task, job)`.
    pub fn jobs(&self) -> impl Iterator<Item = &JobRecord> {
        self.jobs.values()
    }

    /// Job records of one task, in job order.
    pub fn jobs_of(&self, task: TaskId) -> Vec<&JobRecord> {
        self.jobs
            .range((task, 0)..=(task, JobIndex::MAX))
            .map(|(_, v)| v)
            .collect()
    }

    /// Summary of one task.
    pub fn summary(&self, task: TaskId) -> Option<&TaskSummary> {
        self.summaries.get(&task)
    }

    /// All task summaries, by id.
    pub fn summaries(&self) -> impl Iterator<Item = (&TaskId, &TaskSummary)> {
        self.summaries.iter()
    }

    /// Largest observed response of a task — the experimental counterpart
    /// of the analytical WCRT (the simulator can never exceed it on a
    /// fault-free run; tests assert exactly that).
    pub fn observed_wcrt(&self, task: TaskId) -> Option<Duration> {
        self.summary(task).and_then(|s| s.max_response)
    }

    /// Render a compact text table of the summaries.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<6} {:>8} {:>9} {:>7} {:>8} {:>7} {:>12} {:>12}",
            "task", "released", "completed", "missed", "stopped", "faults", "maxresp", "meanresp"
        );
        for (task, s) in &self.summaries {
            let _ = writeln!(
                out,
                "{:<6} {:>8} {:>9} {:>7} {:>8} {:>7} {:>12} {:>12}",
                task.to_string(),
                s.released,
                s.completed,
                s.missed,
                s.stopped,
                s.faults,
                s.max_response.map_or("-".into(), |d| d.to_string()),
                s.mean_response().map_or("-".into(), |d| d.to_string()),
            );
        }
        out
    }
}

/// A fixed-bucket histogram of non-negative [`Duration`] samples —
/// responses, detector latencies, allowance consumptions. Bucket `i`
/// covers `[i·w, (i+1)·w)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DurationHistogram {
    /// Bucket width.
    pub bucket: Duration,
    /// Counts; bucket `i` covers `[i·w, (i+1)·w)`.
    pub counts: Vec<usize>,
    /// Samples observed.
    pub samples: usize,
}

impl DurationHistogram {
    /// Empty histogram with the given bucket width.
    ///
    /// # Panics
    /// Panics on a non-positive bucket width.
    pub fn new(bucket: Duration) -> Self {
        assert!(bucket.is_positive(), "bucket width must be positive");
        DurationHistogram {
            bucket,
            counts: Vec::new(),
            samples: 0,
        }
    }

    /// Build from an iterator of samples.
    ///
    /// # Panics
    /// Panics on a non-positive bucket width or a negative sample.
    pub fn of_samples(samples: impl IntoIterator<Item = Duration>, bucket: Duration) -> Self {
        let mut h = DurationHistogram::new(bucket);
        for s in samples {
            h.record(s);
        }
        h
    }

    /// Record one sample.
    ///
    /// # Panics
    /// Panics on a negative sample.
    pub fn record(&mut self, sample: Duration) {
        assert!(!sample.is_negative(), "histogram samples must be ≥ 0");
        let idx = (sample / self.bucket) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.samples += 1;
    }

    /// The value at or below which `q` (in `[0,1]`) of the samples fall —
    /// bucket-resolution quantile, rounded up to the bucket's upper edge.
    /// `None` with no samples.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        assert!((0.0..=1.0).contains(&q), "quantile in [0,1]");
        if self.samples == 0 {
            return None;
        }
        let target = (q * self.samples as f64).ceil().max(1.0) as usize;
        let mut acc = 0usize;
        for (i, c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(self.bucket * (i as i64 + 1));
            }
        }
        Some(self.bucket * self.counts.len() as i64)
    }

    /// ASCII rendering, one row per non-empty bucket.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let peak = self.counts.iter().copied().max().unwrap_or(0).max(1);
        for (i, c) in self.counts.iter().enumerate() {
            if *c == 0 {
                continue;
            }
            let lo = self.bucket * i as i64;
            let hi = self.bucket * (i as i64 + 1);
            let bar = "#".repeat((c * 40).div_ceil(peak));
            let _ = writeln!(
                out,
                "{:>10}..{:<10} {c:>6} {bar}",
                lo.to_string(),
                hi.to_string()
            );
        }
        out
    }
}

/// Response-time histogram of one task: a [`DurationHistogram`] over the
/// completed jobs — the distribution view behind the paper's
/// "statistical work" on execution costs.
pub type ResponseHistogram = DurationHistogram;

impl ResponseHistogram {
    /// Build from the completed jobs of `task` with the given bucket
    /// width.
    ///
    /// # Panics
    /// Panics on a non-positive bucket width.
    pub fn of(stats: &TraceStats, task: TaskId, bucket: Duration) -> Self {
        DurationHistogram::of_samples(
            stats.jobs_of(task).iter().filter_map(|j| j.response()),
            bucket,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtft_core::task::TaskBuilder;

    fn t(ms: i64) -> Instant {
        Instant::from_millis(ms)
    }

    fn ms(v: i64) -> Duration {
        Duration::millis(v)
    }

    fn set() -> TaskSet {
        TaskSet::from_specs(vec![
            TaskBuilder::new(1, 20, ms(200), ms(29))
                .deadline(ms(70))
                .build(),
            TaskBuilder::new(3, 16, ms(1500), ms(29))
                .deadline(ms(120))
                .build(),
        ])
    }

    fn log() -> TraceLog {
        let mut log = TraceLog::new();
        log.push(
            t(0),
            EventKind::JobRelease {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(0),
            EventKind::JobRelease {
                task: TaskId(3),
                job: 0,
            },
        );
        log.push(
            t(0),
            EventKind::JobStart {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(29),
            EventKind::JobEnd {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(29),
            EventKind::JobStart {
                task: TaskId(3),
                job: 0,
            },
        );
        log.push(
            t(58),
            EventKind::JobEnd {
                task: TaskId(3),
                job: 0,
            },
        );
        log.push(
            t(200),
            EventKind::JobRelease {
                task: TaskId(1),
                job: 1,
            },
        );
        log.push(
            t(200),
            EventKind::JobStart {
                task: TaskId(1),
                job: 1,
            },
        );
        log.push(
            t(240),
            EventKind::FaultDetected {
                task: TaskId(1),
                job: 1,
            },
        );
        log.push(
            t(270),
            EventKind::DeadlineMiss {
                task: TaskId(1),
                job: 1,
            },
        );
        log.push(
            t(275),
            EventKind::TaskStopped {
                task: TaskId(1),
                job: 1,
            },
        );
        log
    }

    #[test]
    fn job_lifecycles() {
        let stats = TraceStats::from_log(&log(), Some(&set()));
        let j0 = stats.job(TaskId(1), 0).unwrap();
        assert_eq!(j0.response(), Some(ms(29)));
        assert_eq!(j0.deadline, Some(t(70)));
        assert!(j0.met_deadline());

        let j1 = stats.job(TaskId(1), 1).unwrap();
        assert_eq!(j1.response(), None);
        assert!(j1.missed);
        assert!(j1.stopped);
        assert!(j1.faulty);
        assert!(!j1.met_deadline());

        let j3 = stats.job(TaskId(3), 0).unwrap();
        assert_eq!(j3.response(), Some(ms(58)));
        assert!(j3.met_deadline());
    }

    #[test]
    fn summaries() {
        let stats = TraceStats::from_log(&log(), Some(&set()));
        let s1 = stats.summary(TaskId(1)).unwrap();
        assert_eq!(s1.released, 2);
        assert_eq!(s1.completed, 1);
        assert_eq!(s1.missed, 1);
        assert_eq!(s1.stopped, 1);
        assert_eq!(s1.faults, 1);
        assert_eq!(s1.max_response, Some(ms(29)));
        assert_eq!(s1.mean_response(), Some(ms(29)));
        assert_eq!(stats.observed_wcrt(TaskId(3)), Some(ms(58)));
    }

    #[test]
    fn jobs_of_ordering() {
        let stats = TraceStats::from_log(&log(), None);
        let jobs = stats.jobs_of(TaskId(1));
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].job, 0);
        assert_eq!(jobs[1].job, 1);
        // Without a task set there are no deadlines attached.
        assert_eq!(jobs[0].deadline, None);
        // A finished job with no known deadline counts as met.
        assert!(jobs[0].met_deadline());
    }

    #[test]
    fn table_renders() {
        let stats = TraceStats::from_log(&log(), Some(&set()));
        let table = stats.render_table();
        assert!(table.contains("τ1"));
        assert!(table.contains("maxresp"));
        assert!(table.contains("29ms"));
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut log = TraceLog::new();
        // Responses: 10, 10, 20, 40 ms.
        for (i, (rel, end)) in [(0, 10), (100, 110), (200, 220), (300, 340)]
            .iter()
            .enumerate()
        {
            log.push(
                t(*rel),
                EventKind::JobRelease {
                    task: TaskId(1),
                    job: i as u64,
                },
            );
            log.push(
                t(*rel),
                EventKind::JobStart {
                    task: TaskId(1),
                    job: i as u64,
                },
            );
            log.push(
                t(*end),
                EventKind::JobEnd {
                    task: TaskId(1),
                    job: i as u64,
                },
            );
        }
        let stats = TraceStats::from_log(&log, None);
        let h = ResponseHistogram::of(&stats, TaskId(1), ms(10));
        assert_eq!(h.samples, 4);
        // Buckets [10,20): 2 (responses of exactly 10 land in bucket 1),
        // [20,30): 1, [40,50): 1.
        assert_eq!(h.counts[1], 2);
        assert_eq!(h.counts[2], 1);
        assert_eq!(h.counts[4], 1);
        assert_eq!(h.quantile(0.5), Some(ms(20)));
        assert_eq!(h.quantile(1.0), Some(ms(50)));
        let render = h.render();
        assert!(render.contains("#"));
        assert!(render.contains("10ms..20ms"));
    }

    #[test]
    fn histogram_empty_task() {
        let stats = TraceStats::from_log(&TraceLog::new(), None);
        let h = ResponseHistogram::of(&stats, TaskId(9), ms(10));
        assert_eq!(h.samples, 0);
        assert_eq!(h.quantile(0.9), None);
        assert!(h.render().is_empty());
    }

    #[test]
    fn empty_log() {
        let stats = TraceStats::from_log(&TraceLog::new(), None);
        assert_eq!(stats.jobs().count(), 0);
        assert_eq!(stats.summary(TaskId(1)), None);
    }
}
