//! # rtft-trace — measurement, log format, statistics and charts
//!
//! Rust counterpart of the measurement toolchain in the paper's Section 5:
//! the authors timestamp "the key dates in the system life" (job starts,
//! job ends, detector releases) via `RDTSC`, buffer them in memory to avoid
//! I/O jitter, flush to a log file at the end of the run, and feed that
//! file to a time-series chart tool that produces Figures 3–7.
//!
//! The same pipeline here:
//!
//! * [`event`] / [`log`] — in-memory append-only trace ([`log::TraceLog`]);
//! * `format` — the log-file interchange format, with a strict parser;
//! * [`capture`] — the persisted capture format (v2): events plus a
//!   provenance header (spec hash, policy/placement/cores, treatment,
//!   content hash) in line and JSON renderings, imported by `rtft replay`;
//! * [`stats`] — per-job lifecycle reconstruction and task summaries;
//! * [`chart`] — the text time-series chart with the paper's glyphs
//!   (↑ releases, ↓ deadlines, ◆ detectors, `>` WCRTs);
//! * [`merge`] — core-tagged recombination of per-core traces from
//!   partitioned multiprocessor runs (`rtft-part`);
//! * [`csv`] — spreadsheet export;
//! * [`clock`] — a virtual `RDTSC` for experiments that reproduce the
//!   cycle-count measurement path.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod capture;
pub mod chart;
pub mod clock;
pub mod csv;
pub mod diff;
pub mod event;
pub mod format;
pub mod log;
pub mod merge;
pub mod stats;
pub mod svg;
pub mod validate;

pub use capture::{CaptureBody, TraceCapture, TraceHeader};
pub use chart::{render, ChartConfig};
pub use event::{EventKind, JobIndex, TraceEvent};
pub use log::TraceLog;
pub use merge::{merge_core_traces, merged_content_hash, CoreEvent};
pub use stats::{DurationHistogram, JobRecord, ResponseHistogram, TaskSummary, TraceStats};
pub use svg::{render_svg, SvgConfig};
