//! Trace comparison — find where two runs diverge.
//!
//! The simulator is deterministic, so two traces of "the same" scenario
//! must be identical; when they are not (a changed parameter, a platform
//! model, a code regression), the *first divergence* is the debugging
//! gold. This module reports it precisely, plus a per-task summary diff
//! for a coarser view.

use crate::event::TraceEvent;
use crate::log::TraceLog;
use crate::stats::TraceStats;
use rtft_core::task::TaskId;
use std::collections::BTreeSet;

/// The first point where two traces disagree.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Divergence {
    /// Same length, same events: identical.
    None,
    /// Events differ at `index`.
    At {
        /// Index into both event streams.
        index: usize,
        /// Event in the left trace.
        left: TraceEvent,
        /// Event in the right trace.
        right: TraceEvent,
    },
    /// One trace is a strict prefix of the other.
    LengthOnly {
        /// Events in the left trace.
        left_len: usize,
        /// Events in the right trace.
        right_len: usize,
        /// First event beyond the common prefix.
        extra: TraceEvent,
    },
}

/// Locate the first divergence between two traces.
pub fn first_divergence(left: &TraceLog, right: &TraceLog) -> Divergence {
    for (index, (l, r)) in left.events().iter().zip(right.events()).enumerate() {
        if l != r {
            return Divergence::At {
                index,
                left: *l,
                right: *r,
            };
        }
    }
    if left.len() == right.len() {
        return Divergence::None;
    }
    let (longer, left_len, right_len) = if left.len() > right.len() {
        (left, left.len(), right.len())
    } else {
        (right, left.len(), right.len())
    };
    Divergence::LengthOnly {
        left_len,
        right_len,
        extra: longer.events()[left_len.min(right_len)],
    }
}

/// A per-task summary difference.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SummaryDelta {
    /// The task whose summaries differ.
    pub task: TaskId,
    /// Human-readable field-level differences.
    pub fields: Vec<String>,
}

/// Compare the per-task summaries of two traces; empty = equivalent
/// outcomes (even if the schedules interleave differently).
pub fn summary_diff(left: &TraceLog, right: &TraceLog) -> Vec<SummaryDelta> {
    let ls = TraceStats::from_log(left, None);
    let rs = TraceStats::from_log(right, None);
    let tasks: BTreeSet<TaskId> = ls
        .summaries()
        .map(|(t, _)| *t)
        .chain(rs.summaries().map(|(t, _)| *t))
        .collect();
    let mut out = Vec::new();
    for task in tasks {
        let l = ls.summary(task).copied().unwrap_or_default();
        let r = rs.summary(task).copied().unwrap_or_default();
        let mut fields = Vec::new();
        if l.released != r.released {
            fields.push(format!("released {} vs {}", l.released, r.released));
        }
        if l.completed != r.completed {
            fields.push(format!("completed {} vs {}", l.completed, r.completed));
        }
        if l.missed != r.missed {
            fields.push(format!("missed {} vs {}", l.missed, r.missed));
        }
        if l.stopped != r.stopped {
            fields.push(format!("stopped {} vs {}", l.stopped, r.stopped));
        }
        if l.max_response != r.max_response {
            fields.push(format!(
                "maxresp {:?} vs {:?}",
                l.max_response, r.max_response
            ));
        }
        if !fields.is_empty() {
            out.push(SummaryDelta { task, fields });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use rtft_core::time::Instant;

    fn t(ms: i64) -> Instant {
        Instant::from_millis(ms)
    }

    fn base() -> TraceLog {
        let mut log = TraceLog::new();
        log.push(
            t(0),
            EventKind::JobRelease {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(0),
            EventKind::JobStart {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(29),
            EventKind::JobEnd {
                task: TaskId(1),
                job: 0,
            },
        );
        log
    }

    #[test]
    fn identical_traces() {
        assert_eq!(first_divergence(&base(), &base()), Divergence::None);
        assert!(summary_diff(&base(), &base()).is_empty());
    }

    #[test]
    fn event_level_divergence() {
        let mut other = TraceLog::new();
        other.push(
            t(0),
            EventKind::JobRelease {
                task: TaskId(1),
                job: 0,
            },
        );
        other.push(
            t(0),
            EventKind::JobStart {
                task: TaskId(1),
                job: 0,
            },
        );
        other.push(
            t(31),
            EventKind::JobEnd {
                task: TaskId(1),
                job: 0,
            },
        );
        match first_divergence(&base(), &other) {
            Divergence::At { index, left, right } => {
                assert_eq!(index, 2);
                assert_eq!(left.at, t(29));
                assert_eq!(right.at, t(31));
            }
            other => panic!("expected At, got {other:?}"),
        }
        let deltas = summary_diff(&base(), &other);
        assert_eq!(deltas.len(), 1);
        assert!(deltas[0].fields.iter().any(|f| f.contains("maxresp")));
    }

    #[test]
    fn prefix_divergence() {
        let mut longer = base();
        longer.push(t(50), EventKind::CpuIdle);
        match first_divergence(&base(), &longer) {
            Divergence::LengthOnly {
                left_len,
                right_len,
                extra,
            } => {
                assert_eq!(left_len, 3);
                assert_eq!(right_len, 4);
                assert_eq!(extra.at, t(50));
            }
            other => panic!("expected LengthOnly, got {other:?}"),
        }
        // Idle events carry no task: summaries still match.
        assert!(summary_diff(&base(), &longer).is_empty());
    }

    #[test]
    fn summary_diff_detects_missing_task() {
        let mut other = base();
        other.push(
            t(40),
            EventKind::JobRelease {
                task: TaskId(2),
                job: 0,
            },
        );
        let deltas = summary_diff(&base(), &other);
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].task, TaskId(2));
        assert!(deltas[0].fields[0].contains("released 0 vs 1"));
    }
}
