//! Virtual time-stamp counter.
//!
//! The paper reads the Pentium 4's `RDTSC` cycle counter through a JNI
//! shim to timestamp events with nanosecond precision. The simulator's
//! clock is already exact virtual time, but experiments that want to
//! reproduce the paper's *measurement pipeline* (cycle counts in the log,
//! converted back to nanoseconds by the chart tool) use this converter.

use rtft_core::time::{Duration, Instant};

/// A virtual TSC: converts between virtual time and CPU cycles at a fixed
/// frequency. The paper's machine was a 2 GHz Pentium 4.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VirtualTsc {
    /// Clock frequency in Hz.
    hz: u64,
}

impl VirtualTsc {
    /// The paper's 2 GHz testbed.
    pub const PENTIUM4_2GHZ: VirtualTsc = VirtualTsc { hz: 2_000_000_000 };

    /// A TSC at `hz` cycles per second.
    ///
    /// # Panics
    /// Panics when `hz` is zero.
    pub fn new(hz: u64) -> Self {
        assert!(hz > 0, "frequency must be positive");
        VirtualTsc { hz }
    }

    /// Frequency in Hz.
    pub fn hz(&self) -> u64 {
        self.hz
    }

    /// `RDTSC` at instant `at`: cycles elapsed since the epoch.
    pub fn rdtsc(&self, at: Instant) -> u64 {
        let ns = at.as_nanos();
        assert!(ns >= 0, "instant precedes the epoch");
        // cycles = ns * hz / 1e9, computed in u128 to avoid overflow.
        ((ns as u128 * self.hz as u128) / 1_000_000_000) as u64
    }

    /// Convert a cycle count back to an instant (truncating to the
    /// representable nanosecond, exactly like the paper's JNI library).
    pub fn to_instant(&self, cycles: u64) -> Instant {
        let ns = (cycles as u128 * 1_000_000_000) / self.hz as u128;
        Instant::from_nanos(ns as i64)
    }

    /// Convert a cycle delta to a duration.
    pub fn to_duration(&self, cycles: u64) -> Duration {
        let ns = (cycles as u128 * 1_000_000_000) / self.hz as u128;
        Duration::nanos(ns as i64)
    }

    /// Duration of a single cycle, rounded down (0 above 1 GHz — the
    /// reason the paper's pipeline keeps cycle counts, not per-cycle ns).
    pub fn cycle(&self) -> Duration {
        Duration::nanos((1_000_000_000 / self.hz) as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_ghz_roundtrip() {
        let tsc = VirtualTsc::PENTIUM4_2GHZ;
        let t = Instant::from_millis(1020);
        let cycles = tsc.rdtsc(t);
        assert_eq!(cycles, 2_040_000_000);
        assert_eq!(tsc.to_instant(cycles), t);
    }

    #[test]
    fn sub_cycle_truncation() {
        let tsc = VirtualTsc::new(3); // 3 Hz: one cycle every 333_333_333.3 ns
        assert_eq!(tsc.rdtsc(Instant::from_nanos(333_333_333)), 0);
        assert_eq!(tsc.rdtsc(Instant::from_nanos(333_333_334)), 1);
        let back = tsc.to_instant(1);
        assert_eq!(back, Instant::from_nanos(333_333_333));
    }

    #[test]
    fn duration_conversion() {
        let tsc = VirtualTsc::PENTIUM4_2GHZ;
        assert_eq!(tsc.to_duration(2_000_000), Duration::millis(1));
        assert_eq!(tsc.cycle(), Duration::ZERO);
        assert_eq!(VirtualTsc::new(1_000_000).cycle(), Duration::micros(1));
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn zero_hz_rejected() {
        let _ = VirtualTsc::new(0);
    }
}
