//! Time-series chart rendering — the paper's second tool.
//!
//! The paper plots each run as a per-task timeline where ↑ marks periods
//! (releases), ↓ deadlines, ◆ detector firings and `>` worst-case response
//! times. This renderer produces the same picture as text: one row per
//! task, one character per time cell, execution drawn as a solid bar and
//! the paper's markers overlaid.
//!
//! ```text
//! τ1 ↑██████████████✕···↓
//! τ2 ↑░░░░░░░░░█████████████░░░
//! ```

use crate::event::EventKind;
use crate::log::TraceLog;
use rtft_core::task::{TaskId, TaskSet};
use rtft_core::time::{Duration, Instant};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Glyphs used by the renderer, in increasing overlay precedence.
pub mod glyph {
    /// Task inactive.
    pub const BLANK: char = '·';
    /// Job ready but preempted.
    pub const READY: char = '░';
    /// Job executing.
    pub const RUN: char = '█';
    /// Job release (the paper's ↑).
    pub const RELEASE: char = '↑';
    /// Absolute deadline (the paper's ↓).
    pub const DEADLINE: char = '↓';
    /// Analytic worst-case response time (the paper's >).
    pub const WCRT: char = '>';
    /// Detector firing (the paper's ▪/diamond).
    pub const DETECTOR: char = '◆';
    /// Deadline miss.
    pub const MISS: char = '!';
    /// Task stopped by the treatment.
    pub const STOP: char = '✕';
}

/// Chart configuration.
#[derive(Clone, Debug)]
pub struct ChartConfig {
    /// Start of the rendered window (inclusive).
    pub from: Instant,
    /// End of the rendered window (exclusive).
    pub to: Instant,
    /// Width of one character cell.
    pub cell: Duration,
    /// Extra analytic markers `(task, instant, glyph)` — the paper's `>`
    /// WCRT annotations are injected this way by the experiment harness.
    pub annotations: Vec<(TaskId, Instant, char)>,
}

impl ChartConfig {
    /// Window with a cell size chosen to fit roughly 100 columns.
    pub fn window(from: Instant, to: Instant) -> Self {
        let span = (to - from).max(Duration::NANO);
        let cell = Duration::nanos((span.as_nanos() / 100).max(1));
        ChartConfig {
            from,
            to,
            cell,
            annotations: Vec::new(),
        }
    }

    /// Override the cell duration.
    pub fn with_cell(mut self, cell: Duration) -> Self {
        assert!(cell.is_positive(), "cell must be positive");
        self.cell = cell;
        self
    }

    /// Add an analytic marker.
    pub fn annotate(mut self, task: TaskId, at: Instant, glyph: char) -> Self {
        self.annotations.push((task, at, glyph));
        self
    }

    fn columns(&self) -> usize {
        let span = self.to - self.from;
        if !span.is_positive() {
            return 0;
        }
        span.div_ceil(self.cell) as usize
    }

    fn column_of(&self, at: Instant) -> Option<usize> {
        if at < self.from || at >= self.to {
            return None;
        }
        Some(((at - self.from) / self.cell) as usize)
    }
}

fn precedence(c: char) -> u8 {
    match c {
        glyph::BLANK => 0,
        glyph::READY => 1,
        glyph::RUN => 2,
        glyph::RELEASE => 3,
        glyph::WCRT => 4,
        glyph::DETECTOR => 5,
        glyph::DEADLINE => 6,
        glyph::MISS => 7,
        glyph::STOP => 8,
        _ => 4, // caller-supplied annotations sit with WCRT
    }
}

#[derive(Default)]
struct Row {
    cells: Vec<char>,
}

impl Row {
    fn new(columns: usize) -> Self {
        Row {
            cells: vec![glyph::BLANK; columns],
        }
    }

    fn set(&mut self, col: usize, c: char) {
        if let Some(cell) = self.cells.get_mut(col) {
            if precedence(c) >= precedence(*cell) {
                *cell = c;
            }
        }
    }

    fn fill(&mut self, from: usize, to: usize, c: char) {
        for col in from..to.min(self.cells.len()) {
            self.set(col, c);
        }
    }
}

/// Render a chart of `log` over `config`'s window. When `set` is given,
/// rows follow priority order and deadline markers are derived from the
/// releases; otherwise rows are ordered by task id and only explicit
/// events are drawn.
pub fn render(log: &TraceLog, set: Option<&TaskSet>, config: &ChartConfig) -> String {
    let columns = config.columns();
    let task_ids: Vec<TaskId> = match set {
        Some(s) => s.tasks().iter().map(|t| t.id).collect(),
        None => {
            let mut ids: Vec<TaskId> = log.events().iter().filter_map(|e| e.kind.task()).collect();
            ids.sort_unstable();
            ids.dedup();
            ids
        }
    };

    let mut rows: BTreeMap<TaskId, Row> =
        task_ids.iter().map(|&id| (id, Row::new(columns))).collect();

    // Pass 1: execution and ready spans.
    // running_since / ready_since per task.
    let mut running_since: BTreeMap<TaskId, Instant> = BTreeMap::new();
    let mut ready_since: BTreeMap<TaskId, Instant> = BTreeMap::new();
    // Clamp a half-open span [since, until) into window columns; `None`
    // when the span misses the window entirely.
    let span_columns =
        |since: Instant, until: Instant, cfg: &ChartConfig| -> Option<(usize, usize)> {
            if until <= cfg.from || since >= cfg.to {
                return None;
            }
            let a = cfg.column_of(since.max(cfg.from)).unwrap_or(0);
            let b = if until >= cfg.to {
                cfg.columns()
            } else {
                cfg.column_of(until).unwrap_or(0)
            };
            Some((a, b.max(a)))
        };
    let close_run = |rows: &mut BTreeMap<TaskId, Row>,
                     running_since: &mut BTreeMap<TaskId, Instant>,
                     task: TaskId,
                     until: Instant,
                     cfg: &ChartConfig| {
        if let Some(since) = running_since.remove(&task) {
            if let Some((a, b)) = span_columns(since, until, cfg) {
                if let Some(row) = rows.get_mut(&task) {
                    row.fill(a, b, glyph::RUN);
                }
            }
        }
    };
    let close_ready = |rows: &mut BTreeMap<TaskId, Row>,
                       ready_since: &mut BTreeMap<TaskId, Instant>,
                       task: TaskId,
                       until: Instant,
                       cfg: &ChartConfig| {
        if let Some(since) = ready_since.remove(&task) {
            if let Some((a, b)) = span_columns(since, until, cfg) {
                if let Some(row) = rows.get_mut(&task) {
                    row.fill(a, b, glyph::READY);
                }
            }
        }
    };

    for e in log.events() {
        match e.kind {
            EventKind::JobRelease { task, .. } => {
                ready_since.entry(task).or_insert(e.at);
            }
            EventKind::JobStart { task, .. } | EventKind::Resumed { task, .. } => {
                close_ready(&mut rows, &mut ready_since, task, e.at, config);
                running_since.entry(task).or_insert(e.at);
            }
            EventKind::Preempted { task, .. } => {
                close_run(&mut rows, &mut running_since, task, e.at, config);
                ready_since.entry(task).or_insert(e.at);
            }
            EventKind::JobEnd { task, .. } | EventKind::TaskStopped { task, .. } => {
                close_run(&mut rows, &mut running_since, task, e.at, config);
                close_ready(&mut rows, &mut ready_since, task, e.at, config);
            }
            _ => {}
        }
    }
    // Close spans still open at the window end.
    let horizon = config.to;
    let open_runs: Vec<TaskId> = running_since.keys().copied().collect();
    for task in open_runs {
        close_run(&mut rows, &mut running_since, task, horizon, config);
    }
    let open_readies: Vec<TaskId> = ready_since.keys().copied().collect();
    for task in open_readies {
        close_ready(&mut rows, &mut ready_since, task, horizon, config);
    }

    // Pass 2: point markers.
    for e in log.events() {
        let Some(col) = config.column_of(e.at) else {
            continue;
        };
        match e.kind {
            EventKind::JobRelease { task, .. } => {
                if let Some(row) = rows.get_mut(&task) {
                    row.set(col, glyph::RELEASE);
                }
                // Derived deadline marker.
                if let Some(set) = set {
                    if let Some(spec) = set.by_id(task) {
                        if let Some(dcol) = config.column_of(e.at + spec.deadline) {
                            if let Some(row) = rows.get_mut(&task) {
                                row.set(dcol, glyph::DEADLINE);
                            }
                        }
                    }
                }
            }
            EventKind::DetectorRelease { task, .. } => {
                if let Some(row) = rows.get_mut(&task) {
                    row.set(col, glyph::DETECTOR);
                }
            }
            EventKind::DeadlineMiss { task, .. } => {
                if let Some(row) = rows.get_mut(&task) {
                    row.set(col, glyph::MISS);
                }
            }
            EventKind::TaskStopped { task, .. } => {
                if let Some(row) = rows.get_mut(&task) {
                    row.set(col, glyph::STOP);
                }
            }
            _ => {}
        }
    }

    // Pass 3: caller annotations.
    for &(task, at, c) in &config.annotations {
        if let (Some(col), Some(row)) = (config.column_of(at), rows.get_mut(&task)) {
            row.set(col, c);
        }
    }

    // Assemble: header, axis, rows, legend.
    let mut out = String::new();
    let _ = writeln!(
        out,
        "window [{} .. {}], cell = {}",
        config.from, config.to, config.cell
    );
    // Axis with a tick every 10 cells.
    let name_width = task_ids
        .iter()
        .map(|id| id.to_string().chars().count())
        .max()
        .unwrap_or(2)
        .max(2);
    let mut axis = format!("{:>width$} ", "", width = name_width);
    let mut col = 0usize;
    while col < columns {
        if col.is_multiple_of(10) {
            let label = format!("|{}", (config.from + config.cell * col as i64).as_millis());
            let take = label
                .chars()
                .take(10.min(columns - col))
                .collect::<String>();
            axis.push_str(&take);
            col += take.chars().count();
        } else {
            axis.push(' ');
            col += 1;
        }
    }
    let _ = writeln!(out, "{axis}");
    for id in &task_ids {
        let row = &rows[id];
        let _ = writeln!(
            out,
            "{:>width$} {}",
            id.to_string(),
            row.cells.iter().collect::<String>(),
            width = name_width
        );
    }
    let _ = writeln!(
        out,
        "legend: {} run  {} ready  {} release  {} deadline  {} detector  {} wcrt  {} miss  {} stopped",
        glyph::RUN,
        glyph::READY,
        glyph::RELEASE,
        glyph::DEADLINE,
        glyph::DETECTOR,
        glyph::WCRT,
        glyph::MISS,
        glyph::STOP
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtft_core::task::TaskBuilder;

    fn t(ms: i64) -> Instant {
        Instant::from_millis(ms)
    }

    fn ms(v: i64) -> Duration {
        Duration::millis(v)
    }

    fn set() -> TaskSet {
        TaskSet::from_specs(vec![
            TaskBuilder::new(1, 20, ms(200), ms(29))
                .deadline(ms(70))
                .build(),
            TaskBuilder::new(2, 18, ms(250), ms(29))
                .deadline(ms(120))
                .build(),
        ])
    }

    fn log() -> TraceLog {
        let mut log = TraceLog::new();
        log.push(
            t(0),
            EventKind::JobRelease {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(0),
            EventKind::JobRelease {
                task: TaskId(2),
                job: 0,
            },
        );
        log.push(
            t(0),
            EventKind::JobStart {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(29),
            EventKind::JobEnd {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(29),
            EventKind::JobStart {
                task: TaskId(2),
                job: 0,
            },
        );
        log.push(
            t(30),
            EventKind::DetectorRelease {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(58),
            EventKind::JobEnd {
                task: TaskId(2),
                job: 0,
            },
        );
        log
    }

    fn row_of(chart: &str, task: &str) -> String {
        chart
            .lines()
            .find(|l| l.trim_start().starts_with(task))
            .unwrap()
            .to_string()
    }

    #[test]
    fn basic_rendering() {
        let cfg = ChartConfig::window(t(0), t(130)).with_cell(ms(1));
        let chart = render(&log(), Some(&set()), &cfg);
        let r1 = row_of(&chart, "τ1");
        let cells: Vec<char> = r1.chars().collect();
        // Row starts with the name and a space: find offset of first cell.
        let offset = r1.chars().position(|c| c == ' ').unwrap() + 1;
        assert_eq!(cells[offset], glyph::RELEASE, "release at t=0");
        assert_eq!(cells[offset + 10], glyph::RUN, "running at t=10");
        assert_eq!(cells[offset + 30], glyph::DETECTOR, "detector at t=30");
        assert_eq!(cells[offset + 70], glyph::DEADLINE, "deadline at t=70");

        let r2 = row_of(&chart, "τ2");
        let cells2: Vec<char> = r2.chars().collect();
        let offset2 = r2.chars().position(|c| c == ' ').unwrap() + 1;
        assert_eq!(
            cells2[offset2 + 10],
            glyph::READY,
            "τ2 preempted-ready at t=10"
        );
        assert_eq!(cells2[offset2 + 40], glyph::RUN, "τ2 running at t=40");
        assert_eq!(cells2[offset2 + 120], glyph::DEADLINE);
    }

    #[test]
    fn annotations_and_stops() {
        let mut l = log();
        l.push(
            t(90),
            EventKind::TaskStopped {
                task: TaskId(2),
                job: 0,
            },
        );
        l.push(
            t(120),
            EventKind::DeadlineMiss {
                task: TaskId(2),
                job: 0,
            },
        );
        let cfg = ChartConfig::window(t(0), t(130)).with_cell(ms(1)).annotate(
            TaskId(1),
            t(29),
            glyph::WCRT,
        );
        let chart = render(&l, Some(&set()), &cfg);
        let r1 = row_of(&chart, "τ1");
        let off = r1.chars().position(|c| c == ' ').unwrap() + 1;
        assert_eq!(r1.chars().nth(off + 29).unwrap(), glyph::WCRT);
        let r2 = row_of(&chart, "τ2");
        let off2 = r2.chars().position(|c| c == ' ').unwrap() + 1;
        assert_eq!(r2.chars().nth(off2 + 90).unwrap(), glyph::STOP);
        // Miss beats the deadline marker at the same column.
        assert_eq!(r2.chars().nth(off2 + 120).unwrap(), glyph::MISS);
    }

    #[test]
    fn window_clips_events() {
        let cfg = ChartConfig::window(t(10), t(40)).with_cell(ms(1));
        let chart = render(&log(), Some(&set()), &cfg);
        let r1 = row_of(&chart, "τ1");
        // Release at t=0 is outside; first cells show the ongoing run.
        let off = r1.chars().position(|c| c == ' ').unwrap() + 1;
        assert_eq!(r1.chars().nth(off).unwrap(), glyph::RUN);
    }

    #[test]
    fn without_task_set() {
        let cfg = ChartConfig::window(t(0), t(100)).with_cell(ms(1));
        let chart = render(&log(), None, &cfg);
        assert!(chart.contains("τ1"));
        assert!(chart.contains("τ2"));
        // No deadline glyph without the set.
        let r1 = row_of(&chart, "τ1");
        assert!(!r1.contains(glyph::DEADLINE));
    }

    #[test]
    fn legend_present() {
        let cfg = ChartConfig::window(t(0), t(10));
        let chart = render(&TraceLog::new(), None, &cfg);
        assert!(chart.contains("legend:"));
    }

    #[test]
    fn degenerate_window() {
        let cfg = ChartConfig::window(t(5), t(5));
        let chart = render(&log(), Some(&set()), &cfg);
        assert!(chart.contains("legend:"));
    }
}
