//! Text log-file format.
//!
//! The paper's toolchain writes collected timestamps to "a log file which
//! can then be interpreted by our tool of time series chart". This module
//! defines that interchange format: one event per line,
//!
//! ```text
//! <nanoseconds> <tag> [task <id>] [job <q>] [amount <ns>] [by <id>]
//! ```
//!
//! Lines starting with `#` are comments. Serialization and parsing round-
//! trip exactly (property-tested in the crate's test suite).

use crate::event::{EventKind, TraceEvent};
use crate::log::TraceLog;
use rtft_core::task::TaskId;
use rtft_core::time::{Duration, Instant};
use std::fmt::Write as _;

/// Serialize a log to the text format.
pub fn to_text(log: &TraceLog) -> String {
    let mut out = String::with_capacity(log.len() * 32 + 64);
    out.push_str("# rtft trace v1\n");
    for e in log.events() {
        write_line(&mut out, e);
    }
    out
}

/// Serialize one event as its machine line (trailing newline included)
/// — what live streamers (`rtft serve`'s trace route) emit per event so
/// their output re-parses with [`from_text`] /
/// [`crate::capture::TraceCapture::parse_text`].
pub fn event_line(e: &TraceEvent) -> String {
    let mut out = String::with_capacity(40);
    write_line(&mut out, e);
    out
}

pub(crate) fn write_line(out: &mut String, e: &TraceEvent) {
    let ns = e.at.as_nanos();
    match e.kind {
        EventKind::JobRelease { task, job }
        | EventKind::JobStart { task, job }
        | EventKind::JobEnd { task, job }
        | EventKind::Resumed { task, job }
        | EventKind::DeadlineMiss { task, job }
        | EventKind::DetectorRelease { task, job }
        | EventKind::FaultDetected { task, job }
        | EventKind::TaskStopped { task, job } => {
            let _ = writeln!(out, "{ns} {} task {} job {job}", e.kind.tag(), task.0);
        }
        EventKind::Preempted { task, job, by } => {
            let _ = writeln!(out, "{ns} preempt task {} job {job} by {}", task.0, by.0);
        }
        EventKind::AllowanceGranted { task, job, amount } => {
            let _ = writeln!(
                out,
                "{ns} grant task {} job {job} amount {}",
                task.0,
                amount.as_nanos()
            );
        }
        EventKind::CpuIdle | EventKind::SimEnd => {
            let _ = writeln!(out, "{ns} {}", e.kind.tag());
        }
    }
}

/// A parse failure, with the 1-based line number.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse the text format back into a [`TraceLog`].
pub fn from_text(text: &str) -> Result<TraceLog, ParseError> {
    let mut log = TraceLog::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let event = parse_line(line).map_err(|message| ParseError {
            line: line_no,
            message,
        })?;
        // Re-validate ordering on ingest: a hand-edited file must not
        // silently corrupt downstream statistics.
        if log.end().is_some_and(|last| event.at < last) {
            return Err(ParseError {
                line: line_no,
                message: format!("timestamp {} out of order", event.at.as_nanos()),
            });
        }
        log.push_event(event);
    }
    Ok(log)
}

pub(crate) fn parse_line(line: &str) -> Result<TraceEvent, String> {
    let mut words = line.split_ascii_whitespace();
    let ns: i64 = words
        .next()
        .ok_or("missing timestamp")?
        .parse()
        .map_err(|e| format!("bad timestamp: {e}"))?;
    let at = Instant::from_nanos(ns);
    let tag = words.next().ok_or("missing event tag")?;

    let mut task: Option<TaskId> = None;
    let mut job: Option<u64> = None;
    let mut amount: Option<Duration> = None;
    let mut by: Option<TaskId> = None;
    while let Some(key) = words.next() {
        let value = words
            .next()
            .ok_or_else(|| format!("missing value for `{key}`"))?;
        match key {
            "task" => {
                task = Some(TaskId(
                    value.parse().map_err(|e| format!("bad task id: {e}"))?,
                ));
            }
            "job" => {
                job = Some(value.parse().map_err(|e| format!("bad job index: {e}"))?);
            }
            "amount" => {
                amount = Some(Duration::nanos(
                    value.parse().map_err(|e| format!("bad amount: {e}"))?,
                ));
            }
            "by" => {
                by = Some(TaskId(
                    value.parse().map_err(|e| format!("bad `by` id: {e}"))?,
                ));
            }
            other => return Err(format!("unknown field `{other}`")),
        }
    }

    let kind = kind_from_parts(tag, task, job, amount, by)?;
    Ok(TraceEvent::new(at, kind))
}

/// Assemble an [`EventKind`] from a parsed tag and its optional fields —
/// shared by the text-line parser and the JSON capture parser so both
/// enforce identical field requirements per tag.
pub(crate) fn kind_from_parts(
    tag: &str,
    task: Option<TaskId>,
    job: Option<u64>,
    amount: Option<Duration>,
    by: Option<TaskId>,
) -> Result<EventKind, String> {
    let need_task_job = |kind: fn(TaskId, u64) -> EventKind| -> Result<EventKind, String> {
        match (task, job) {
            (Some(t), Some(j)) => Ok(kind(t, j)),
            _ => Err("event requires `task` and `job`".to_string()),
        }
    };

    let kind = match tag {
        "release" => need_task_job(|task, job| EventKind::JobRelease { task, job })?,
        "start" => need_task_job(|task, job| EventKind::JobStart { task, job })?,
        "end" => need_task_job(|task, job| EventKind::JobEnd { task, job })?,
        "resume" => need_task_job(|task, job| EventKind::Resumed { task, job })?,
        "miss" => need_task_job(|task, job| EventKind::DeadlineMiss { task, job })?,
        "detector" => need_task_job(|task, job| EventKind::DetectorRelease { task, job })?,
        "fault" => need_task_job(|task, job| EventKind::FaultDetected { task, job })?,
        "stop" => need_task_job(|task, job| EventKind::TaskStopped { task, job })?,
        "preempt" => match (task, job, by) {
            (Some(task), Some(job), Some(by)) => EventKind::Preempted { task, job, by },
            _ => return Err("preempt requires `task`, `job` and `by`".to_string()),
        },
        "grant" => match (task, job, amount) {
            (Some(task), Some(job), Some(amount)) => {
                EventKind::AllowanceGranted { task, job, amount }
            }
            _ => return Err("grant requires `task`, `job` and `amount`".to_string()),
        },
        "idle" => EventKind::CpuIdle,
        "simend" => EventKind::SimEnd,
        other => return Err(format!("unknown event tag `{other}`")),
    };
    Ok(kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: i64) -> Instant {
        Instant::from_millis(ms)
    }

    fn sample() -> TraceLog {
        let mut log = TraceLog::new();
        log.push(
            t(0),
            EventKind::JobRelease {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(0),
            EventKind::JobStart {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(5),
            EventKind::Preempted {
                task: TaskId(2),
                job: 3,
                by: TaskId(1),
            },
        );
        log.push(
            t(29),
            EventKind::JobEnd {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(30),
            EventKind::DetectorRelease {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(31),
            EventKind::FaultDetected {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(31),
            EventKind::AllowanceGranted {
                task: TaskId(1),
                job: 0,
                amount: Duration::millis(11),
            },
        );
        log.push(
            t(42),
            EventKind::TaskStopped {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(t(60), EventKind::CpuIdle);
        log.push(
            t(120),
            EventKind::DeadlineMiss {
                task: TaskId(3),
                job: 0,
            },
        );
        log.push(t(150), EventKind::SimEnd);
        log
    }

    #[test]
    fn roundtrip_every_kind() {
        let log = sample();
        let text = to_text(&log);
        let back = from_text(&text).unwrap();
        assert_eq!(log, back);
    }

    #[test]
    fn header_and_shape() {
        let text = to_text(&sample());
        assert!(text.starts_with("# rtft trace v1\n"));
        assert!(text.contains("0 release task 1 job 0"));
        assert!(text.contains("grant task 1 job 0 amount 11000000"));
        assert!(text.contains("preempt task 2 job 3 by 1"));
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let log = from_text("# c\n\n  \n1000 idle\n").unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log.events()[0].kind, EventKind::CpuIdle);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = from_text("1000 idle\nnonsense line\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = from_text("1000 frobnicate\n").unwrap_err();
        assert!(err.message.contains("unknown event tag"));
        let err = from_text("1000 release task 1\n").unwrap_err();
        assert!(err.message.contains("requires"));
        let err = from_text("abc idle\n").unwrap_err();
        assert!(err.message.contains("bad timestamp"));
        let err = from_text("5 idle\n1 idle\n").unwrap_err();
        assert!(err.message.contains("out of order"));
        let err = from_text("5 release task 1 job\n").unwrap_err();
        assert!(err.message.contains("missing value"));
        let err = from_text("5 release task 1 job 0 bogus 3\n").unwrap_err();
        assert!(err.message.contains("unknown field"));
    }
}
