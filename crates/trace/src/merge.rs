//! Merging per-core traces of a partitioned multiprocessor run.
//!
//! Partitioned scheduling keeps the per-core engines fully independent
//! (no migration), so a multicore run is a *set* of uniprocessor
//! [`TraceLog`]s sharing one virtual clock. This module recombines them
//! into a single chronological, **core-tagged** event stream: a stable
//! k-way merge ordered by `(instant, core index, per-core order)` — the
//! same inputs always merge to the same stream, so the merged view is as
//! deterministic as the per-core traces it came from.

use crate::event::TraceEvent;
use crate::log::TraceLog;
use std::fmt;

/// One event of a merged multicore trace, tagged with the core that
/// produced it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CoreEvent {
    /// Index of the core whose engine recorded the event.
    pub core: usize,
    /// The event itself.
    pub event: TraceEvent,
}

impl fmt::Display for CoreEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{} {}", self.core, self.event)
    }
}

/// Merge per-core traces into one chronological core-tagged stream.
/// Each input is an explicit `(core id, log)` pair, so partitions with
/// interior empty cores tag their events with the *actual* core index,
/// not a positional one.
///
/// Ties on the instant are broken by input order (pass cores
/// ascending), then by each log's own order (which [`TraceLog::push`]
/// already guarantees is chronological): the merge is a pure,
/// scheduling-independent function of its inputs.
pub fn merge_core_traces(logs: &[(usize, &TraceLog)]) -> Vec<CoreEvent> {
    let total: usize = logs.iter().map(|(_, l)| l.len()).sum();
    let mut merged = Vec::with_capacity(total);
    let mut heads = vec![0usize; logs.len()];
    loop {
        // Smallest (instant, input position) among the remaining heads.
        let mut best: Option<(usize, usize, &TraceEvent)> = None;
        for (slot, (core, log)) in logs.iter().enumerate() {
            if let Some(e) = log.events().get(heads[slot]) {
                let earlier = match best {
                    None => true,
                    Some((_, _, b)) => e.at < b.at,
                };
                if earlier {
                    best = Some((slot, *core, e));
                }
            }
        }
        let Some((slot, core, event)) = best else {
            break;
        };
        merged.push(CoreEvent {
            core,
            event: *event,
        });
        heads[slot] += 1;
    }
    merged
}

/// A stable content hash of a multicore run: an FNV-1a fold over the
/// input count and, per input in order, the core id and the log's
/// [`TraceLog::content_hash`]. Core assignment is part of the hash;
/// same `(core, trace)` pairs ⇒ same hash, on any worker count.
///
/// The single-log hash intentionally differs from
/// [`TraceLog::content_hash`] — a 1-core *partitioned* digest and a bare
/// uniprocessor digest live in different domains (only the latter is
/// pinned by the golden traces).
pub fn merged_content_hash(logs: &[(usize, &TraceLog)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    eat(&(logs.len() as u64).to_le_bytes());
    for (core, log) in logs {
        eat(&(*core as u64).to_le_bytes());
        eat(&log.content_hash().to_le_bytes());
    }
    h
}

/// Render a merged stream as text lines (`c<core> <event>` per line) —
/// the multicore counterpart of the flat trace-file format, used by the
/// CLI's `--save-trace` on partitioned runs.
pub fn to_text(events: &[CoreEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use rtft_core::task::TaskId;
    use rtft_core::time::Instant;

    fn t(ms: i64) -> Instant {
        Instant::from_millis(ms)
    }

    fn log(entries: &[(i64, u32)]) -> TraceLog {
        let mut log = TraceLog::new();
        for &(at, task) in entries {
            log.push(
                t(at),
                EventKind::JobRelease {
                    task: TaskId(task),
                    job: 0,
                },
            );
        }
        log
    }

    #[test]
    fn merge_orders_by_time_then_core() {
        let a = log(&[(0, 1), (10, 1)]);
        let b = log(&[(0, 2), (5, 2)]);
        let merged = merge_core_traces(&[(0, &a), (1, &b)]);
        let shape: Vec<(usize, i64)> = merged
            .iter()
            .map(|e| (e.core, e.event.at.as_millis()))
            .collect();
        assert_eq!(shape, vec![(0, 0), (1, 0), (1, 5), (0, 10)]);
    }

    #[test]
    fn merge_is_stable_within_a_core() {
        let a = log(&[(3, 1), (3, 2), (3, 3)]);
        let merged = merge_core_traces(&[(0, &a)]);
        let tasks: Vec<u32> = merged
            .iter()
            .map(|e| e.event.kind.task().unwrap().0)
            .collect();
        assert_eq!(tasks, vec![1, 2, 3], "same-instant events keep log order");
    }

    #[test]
    fn merge_keeps_actual_core_ids_across_gaps() {
        // Occupied cores {0, 2}: the tags must say c2, not c1.
        let a = log(&[(0, 1)]);
        let b = log(&[(5, 2)]);
        let merged = merge_core_traces(&[(0, &a), (2, &b)]);
        let cores: Vec<usize> = merged.iter().map(|e| e.core).collect();
        assert_eq!(cores, vec![0, 2]);
    }

    #[test]
    fn merged_hash_is_core_sensitive() {
        let a = log(&[(0, 1)]);
        let b = log(&[(0, 2)]);
        let ab = merged_content_hash(&[(0, &a), (1, &b)]);
        let ba = merged_content_hash(&[(0, &b), (1, &a)]);
        assert_ne!(ab, ba, "core assignment must be part of the hash");
        assert_eq!(ab, merged_content_hash(&[(0, &a), (1, &b)]));
        // Occupancy {0,1} and {0,2} are distinct placements.
        assert_ne!(ab, merged_content_hash(&[(0, &a), (2, &b)]));
        // And it differs from the flat uniprocessor hash domain.
        assert_ne!(merged_content_hash(&[(0, &a)]), a.content_hash());
    }

    #[test]
    fn text_rendering_tags_cores() {
        let a = log(&[(0, 1)]);
        let b = log(&[(1, 2)]);
        let text = to_text(&merge_core_traces(&[(0, &a), (1, &b)]));
        let mut lines = text.lines();
        assert!(lines.next().unwrap().starts_with("c0 "));
        assert!(lines.next().unwrap().starts_with("c1 "));
    }

    #[test]
    fn empty_inputs_merge_to_nothing() {
        assert!(merge_core_traces(&[]).is_empty());
        let empty = TraceLog::new();
        assert!(merge_core_traces(&[(0, &empty), (1, &empty)]).is_empty());
    }
}
