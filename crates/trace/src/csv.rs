//! CSV export of job records — for spreadsheet post-processing of runs,
//! complementing the chart renderer.

use crate::stats::TraceStats;
use std::fmt::Write as _;

/// Header row of [`jobs_to_csv`].
pub const JOBS_CSV_HEADER: &str =
    "task,job,release_ns,start_ns,end_ns,deadline_ns,response_ns,missed,stopped,faulty";

/// Render all job records as CSV (RFC-4180-style, `\n` line ends, empty
/// fields for absent values).
pub fn jobs_to_csv(stats: &TraceStats) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{JOBS_CSV_HEADER}");
    for j in stats.jobs() {
        let opt = |v: Option<i64>| v.map_or(String::new(), |x| x.to_string());
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{}",
            j.task.0,
            j.job,
            j.release.as_nanos(),
            opt(j.start.map(|t| t.as_nanos())),
            opt(j.end.map(|t| t.as_nanos())),
            opt(j.deadline.map(|t| t.as_nanos())),
            opt(j.response().map(|d| d.as_nanos())),
            j.missed,
            j.stopped,
            j.faulty,
        );
    }
    out
}

/// Render per-task summaries as CSV.
pub fn summaries_to_csv(stats: &TraceStats) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "task,released,completed,missed,stopped,faults,max_response_ns,mean_response_ns"
    );
    for (task, s) in stats.summaries() {
        let opt = |v: Option<i64>| v.map_or(String::new(), |x| x.to_string());
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{}",
            task.0,
            s.released,
            s.completed,
            s.missed,
            s.stopped,
            s.faults,
            opt(s.max_response.map(|d| d.as_nanos())),
            opt(s.mean_response().map(|d| d.as_nanos())),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::log::TraceLog;
    use rtft_core::task::TaskId;
    use rtft_core::time::Instant;

    fn t(ms: i64) -> Instant {
        Instant::from_millis(ms)
    }

    fn stats() -> TraceStats {
        let mut log = TraceLog::new();
        log.push(
            t(0),
            EventKind::JobRelease {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(0),
            EventKind::JobStart {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(29),
            EventKind::JobEnd {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(200),
            EventKind::JobRelease {
                task: TaskId(1),
                job: 1,
            },
        );
        TraceStats::from_log(&log, None)
    }

    #[test]
    fn jobs_csv_shape() {
        let csv = jobs_to_csv(&stats());
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), JOBS_CSV_HEADER);
        let first = lines.next().unwrap();
        assert_eq!(first, "1,0,0,0,29000000,,29000000,false,false,false");
        let second = lines.next().unwrap();
        // Unfinished job: empty start/end/response.
        assert_eq!(second, "1,1,200000000,,,,,false,false,false");
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn summaries_csv_shape() {
        let csv = summaries_to_csv(&stats());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].starts_with("1,2,1,0,0,0,29000000,29000000"));
    }
}
