//! SVG rendering of schedule traces — the publication-quality output of
//! the chart tool (the text renderer in [`crate::chart`] is the terminal
//! view of the same data).
//!
//! One horizontal lane per task; execution drawn as solid bars, ready
//! (preempted) intervals as translucent bars, and the paper's point
//! markers: ▲ releases, ▼ deadlines, ◆ detector firings, ✕ stops, and a
//! red `!` on deadline misses. A time axis in milliseconds runs below.

use crate::event::EventKind;
use crate::log::TraceLog;
use rtft_core::task::{TaskId, TaskSet};
use rtft_core::time::Instant;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Geometry and window of an SVG chart.
#[derive(Clone, Copy, Debug)]
pub struct SvgConfig {
    /// Window start (inclusive).
    pub from: Instant,
    /// Window end (exclusive).
    pub to: Instant,
    /// Total image width in pixels.
    pub width: u32,
    /// Height of one task lane in pixels.
    pub lane_height: u32,
}

impl SvgConfig {
    /// A window with default geometry (900 px wide, 48 px lanes).
    pub fn window(from: Instant, to: Instant) -> Self {
        assert!(to > from, "empty window");
        SvgConfig {
            from,
            to,
            width: 900,
            lane_height: 48,
        }
    }

    fn x(&self, at: Instant) -> f64 {
        let span = (self.to - self.from).as_nanos() as f64;
        let dx = (at - self.from).as_nanos() as f64;
        60.0 + (dx / span) * (self.width as f64 - 80.0)
    }
}

const LANE_COLORS: [&str; 6] = [
    "#2b6cb0", "#2f855a", "#b7791f", "#9b2c2c", "#6b46c1", "#2c7a7b",
];

/// Render `log` over the window as a standalone SVG document.
pub fn render_svg(log: &TraceLog, set: &TaskSet, config: &SvgConfig) -> String {
    let tasks: Vec<TaskId> = set.tasks().iter().map(|t| t.id).collect();
    let lane_of: BTreeMap<TaskId, usize> =
        tasks.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let height = 40 + tasks.len() as u32 * config.lane_height + 40;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="monospace" font-size="11">"#,
        w = config.width,
        h = height
    );
    let _ = writeln!(svg, r#"<rect width="100%" height="100%" fill="white"/>"#);

    let lane_y = |lane: usize| 30.0 + lane as f64 * config.lane_height as f64;
    let bar_h = config.lane_height as f64 * 0.45;

    // Lane labels and baselines.
    for (i, id) in tasks.iter().enumerate() {
        let y = lane_y(i) + bar_h;
        let name = &set.by_id(*id).expect("task in set").name;
        let _ = writeln!(
            svg,
            r##"<text x="8" y="{:.1}" fill="#333">{}</text>"##,
            y - 4.0,
            name
        );
        let _ = writeln!(
            svg,
            r##"<line x1="60" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ccc"/>"##,
            config.width as f64 - 20.0,
        );
    }

    // Pass 1: bars from start/resume … preempt/end/stop transitions.
    let clamp = |at: Instant| at.max(config.from).min(config.to);
    let mut running_since: BTreeMap<TaskId, Instant> = BTreeMap::new();
    let mut ready_since: BTreeMap<TaskId, Instant> = BTreeMap::new();
    let mut bars: Vec<(usize, Instant, Instant, bool)> = Vec::new(); // lane, a, b, solid
    let close = |map: &mut BTreeMap<TaskId, Instant>,
                 task: TaskId,
                 until: Instant,
                 solid: bool,
                 bars: &mut Vec<(usize, Instant, Instant, bool)>| {
        if let (Some(since), Some(&lane)) = (map.remove(&task), lane_of.get(&task)) {
            let (a, b) = (clamp(since), clamp(until));
            if b > a {
                bars.push((lane, a, b, solid));
            }
        }
    };
    for e in log.events() {
        match e.kind {
            EventKind::JobRelease { task, .. } => {
                ready_since.entry(task).or_insert(e.at);
            }
            EventKind::JobStart { task, .. } | EventKind::Resumed { task, .. } => {
                close(&mut ready_since, task, e.at, false, &mut bars);
                running_since.entry(task).or_insert(e.at);
            }
            EventKind::Preempted { task, .. } => {
                close(&mut running_since, task, e.at, true, &mut bars);
                ready_since.entry(task).or_insert(e.at);
            }
            EventKind::JobEnd { task, .. } | EventKind::TaskStopped { task, .. } => {
                close(&mut running_since, task, e.at, true, &mut bars);
                close(&mut ready_since, task, e.at, false, &mut bars);
            }
            _ => {}
        }
    }
    let open_runs: Vec<TaskId> = running_since.keys().copied().collect();
    for task in open_runs {
        close(&mut running_since, task, config.to, true, &mut bars);
    }
    let open_ready: Vec<TaskId> = ready_since.keys().copied().collect();
    for task in open_ready {
        close(&mut ready_since, task, config.to, false, &mut bars);
    }
    for (lane, a, b, solid) in bars {
        let color = LANE_COLORS[lane % LANE_COLORS.len()];
        let (x1, x2) = (config.x(a), config.x(b));
        let y = lane_y(lane);
        let opacity = if solid { 1.0 } else { 0.25 };
        let _ = writeln!(
            svg,
            r#"<rect x="{x1:.2}" y="{y:.1}" width="{:.2}" height="{bar_h:.1}" fill="{color}" fill-opacity="{opacity}"/>"#,
            (x2 - x1).max(0.5),
        );
    }

    // Pass 2: point markers.
    for e in log.events() {
        if e.at < config.from || e.at >= config.to {
            continue;
        }
        let Some(task) = e.kind.task() else { continue };
        let Some(&lane) = lane_of.get(&task) else {
            continue;
        };
        let x = config.x(e.at);
        let y0 = lane_y(lane);
        let yb = y0 + bar_h;
        match e.kind {
            EventKind::JobRelease { .. } => {
                // Upward triangle at the lane baseline (the paper's ↑).
                let _ = writeln!(
                    svg,
                    r##"<path d="M {x:.1} {:.1} l -4 7 l 8 0 z" fill="#222"/>"##,
                    yb - 7.0
                );
                if let Some(spec) = set.by_id(task) {
                    let dl = e.at + spec.deadline;
                    if dl >= config.from && dl < config.to {
                        let xd = config.x(dl);
                        let _ = writeln!(
                            svg,
                            r##"<path d="M {xd:.1} {:.1} l -4 -7 l 8 0 z" fill="#222"/>"##,
                            yb
                        );
                    }
                }
            }
            EventKind::DetectorRelease { .. } => {
                let _ = writeln!(
                    svg,
                    r##"<rect x="{:.1}" y="{:.1}" width="7" height="7" fill="#d69e2e" transform="rotate(45 {x:.1} {:.1})"/>"##,
                    x - 3.5,
                    y0 - 4.0,
                    y0
                );
            }
            EventKind::TaskStopped { .. } => {
                let _ = writeln!(
                    svg,
                    r##"<path d="M {:.1} {:.1} l 8 8 m 0 -8 l -8 8" stroke="#c53030" stroke-width="2"/>"##,
                    x - 4.0,
                    y0 - 2.0
                );
            }
            EventKind::DeadlineMiss { .. } => {
                let _ = writeln!(
                    svg,
                    r##"<text x="{x:.1}" y="{:.1}" fill="#c53030" font-weight="bold">!</text>"##,
                    y0 - 2.0
                );
            }
            _ => {}
        }
    }

    // Time axis.
    let axis_y = 30.0 + tasks.len() as f64 * config.lane_height as f64 + 10.0;
    let _ = writeln!(
        svg,
        r##"<line x1="60" y1="{axis_y:.1}" x2="{:.1}" y2="{axis_y:.1}" stroke="#333"/>"##,
        config.width as f64 - 20.0
    );
    let span_ms = (config.to - config.from).as_millis_f64();
    let step = tick_step(span_ms);
    let mut tick = (config.from.as_millis_f64() / step).ceil() * step;
    while tick < config.to.as_millis_f64() {
        let x = config.x(Instant::from_nanos((tick * 1e6) as i64));
        let _ = writeln!(
            svg,
            r##"<line x1="{x:.1}" y1="{axis_y:.1}" x2="{x:.1}" y2="{:.1}" stroke="#333"/>"##,
            axis_y + 4.0
        );
        let _ = writeln!(
            svg,
            r##"<text x="{x:.1}" y="{:.1}" text-anchor="middle" fill="#333">{}</text>"##,
            axis_y + 16.0,
            tick as i64
        );
        tick += step;
    }
    let _ = writeln!(svg, "</svg>");
    svg
}

/// Pick a round tick step (in ms) giving 5–12 ticks.
fn tick_step(span_ms: f64) -> f64 {
    let raw = span_ms / 8.0;
    let mag = 10f64.powf(raw.log10().floor());
    for mult in [1.0, 2.0, 5.0, 10.0] {
        if mag * mult >= raw {
            return mag * mult;
        }
    }
    mag * 10.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtft_core::task::TaskBuilder;
    use rtft_core::time::Duration;

    fn t(ms: i64) -> Instant {
        Instant::from_millis(ms)
    }

    fn ms(v: i64) -> Duration {
        Duration::millis(v)
    }

    fn set() -> TaskSet {
        TaskSet::from_specs(vec![
            TaskBuilder::new(1, 20, ms(200), ms(29))
                .deadline(ms(70))
                .build(),
            TaskBuilder::new(2, 18, ms(250), ms(29))
                .deadline(ms(120))
                .build(),
        ])
    }

    fn log() -> TraceLog {
        let mut log = TraceLog::new();
        log.push(
            t(0),
            EventKind::JobRelease {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(0),
            EventKind::JobRelease {
                task: TaskId(2),
                job: 0,
            },
        );
        log.push(
            t(0),
            EventKind::JobStart {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(29),
            EventKind::JobEnd {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(29),
            EventKind::JobStart {
                task: TaskId(2),
                job: 0,
            },
        );
        log.push(
            t(30),
            EventKind::DetectorRelease {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(58),
            EventKind::JobEnd {
                task: TaskId(2),
                job: 0,
            },
        );
        log.push(
            t(70),
            EventKind::DeadlineMiss {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(80),
            EventKind::TaskStopped {
                task: TaskId(2),
                job: 0,
            },
        );
        log
    }

    #[test]
    fn well_formed_document() {
        let cfg = SvgConfig::window(t(0), t(130));
        let svg = render_svg(&log(), &set(), &cfg);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<svg").count(), 1);
        // Task labels present.
        assert!(svg.contains(">τ1<"));
        assert!(svg.contains(">τ2<"));
    }

    #[test]
    fn bars_and_markers_emitted() {
        let cfg = SvgConfig::window(t(0), t(130));
        let svg = render_svg(&log(), &set(), &cfg);
        // Two solid run bars + one ready bar for τ2 ([0,29) waiting).
        let solid = svg.matches(r#"fill-opacity="1""#).count();
        let ready = svg.matches(r#"fill-opacity="0.25""#).count();
        assert_eq!(solid, 2, "{svg}");
        assert_eq!(ready, 1);
        // Markers: detector diamond, stop cross, miss bang.
        assert!(svg.contains("rotate(45"));
        assert!(svg.contains(r##"stroke="#c53030""##));
        assert!(svg.contains(">!</text>"));
    }

    #[test]
    fn window_clips() {
        let cfg = SvgConfig::window(t(40), t(60));
        let svg = render_svg(&log(), &set(), &cfg);
        // Only τ2's run intersects; no detector (t=30) marker.
        assert!(!svg.contains("rotate(45"));
        assert_eq!(svg.matches(r#"fill-opacity="1""#).count(), 1);
    }

    #[test]
    fn tick_steps_are_round() {
        assert_eq!(tick_step(100.0), 20.0);
        assert_eq!(tick_step(1000.0), 200.0);
        assert_eq!(tick_step(80.0), 10.0);
    }

    #[test]
    #[should_panic(expected = "empty window")]
    fn empty_window_rejected() {
        let _ = SvgConfig::window(t(5), t(5));
    }
}
