//! Trace well-formedness validation.
//!
//! A structural checker for [`TraceLog`]s: every event stream produced by
//! a correct scheduler satisfies per-job and per-CPU invariants, and the
//! simulator's property tests assert them on randomized runs. The checker
//! is also handy for externally produced or hand-edited log files.
//!
//! Checked invariants:
//!
//! 1. per job: `release ≤ start ≤ end/stop`, each at most once, no
//!    activity before release or after end;
//! 2. run intervals: a job resumes only after a preemption, is preempted
//!    only while running;
//! 3. single CPU: at any instant at most one job is running;
//! 4. preemption causality: the preemptor named in `Preempted` starts at
//!    the same instant.

use crate::event::{EventKind, JobIndex};
use crate::log::TraceLog;
use rtft_core::task::TaskId;
use rtft_core::time::Instant;
use std::collections::BTreeMap;

/// A violated invariant.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Violation {
    /// When it was observed.
    pub at: Instant,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.at, self.message)
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum JobPhase {
    Released,
    Running,
    Preempted,
    Done,
}

/// Check the structural invariants; returns every violation found (empty
/// = well-formed).
pub fn check(log: &TraceLog) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut phase: BTreeMap<(TaskId, JobIndex), JobPhase> = BTreeMap::new();
    let mut running: Option<(TaskId, JobIndex)> = None;

    let violate = |at: Instant, message: String, v: &mut Vec<Violation>| {
        v.push(Violation { at, message });
    };

    for e in log.events() {
        let at = e.at;
        match e.kind {
            EventKind::JobRelease { task, job } => {
                if phase.insert((task, job), JobPhase::Released).is_some() {
                    violate(
                        at,
                        format!("{task} job {job} released twice"),
                        &mut violations,
                    );
                }
            }
            EventKind::JobStart { task, job } => {
                match phase.get(&(task, job)) {
                    Some(JobPhase::Released) => {}
                    other => violate(
                        at,
                        format!("{task} job {job} started in phase {other:?}"),
                        &mut violations,
                    ),
                }
                if let Some(r) = running {
                    violate(
                        at,
                        format!("{task} job {job} started while {} job {} runs", r.0, r.1),
                        &mut violations,
                    );
                }
                phase.insert((task, job), JobPhase::Running);
                running = Some((task, job));
            }
            EventKind::Resumed { task, job } => {
                match phase.get(&(task, job)) {
                    Some(JobPhase::Preempted) => {}
                    other => violate(
                        at,
                        format!("{task} job {job} resumed in phase {other:?}"),
                        &mut violations,
                    ),
                }
                if let Some(r) = running {
                    violate(
                        at,
                        format!("{task} job {job} resumed while {} job {} runs", r.0, r.1),
                        &mut violations,
                    );
                }
                phase.insert((task, job), JobPhase::Running);
                running = Some((task, job));
            }
            EventKind::Preempted { task, job, .. } => {
                if running != Some((task, job)) {
                    violate(
                        at,
                        format!("{task} job {job} preempted while not running"),
                        &mut violations,
                    );
                }
                match phase.get(&(task, job)) {
                    Some(JobPhase::Running) => {}
                    other => violate(
                        at,
                        format!("{task} job {job} preempted in phase {other:?}"),
                        &mut violations,
                    ),
                }
                phase.insert((task, job), JobPhase::Preempted);
                running = None;
            }
            EventKind::JobEnd { task, job } => {
                if running != Some((task, job)) {
                    violate(
                        at,
                        format!("{task} job {job} ended while not running"),
                        &mut violations,
                    );
                }
                phase.insert((task, job), JobPhase::Done);
                running = None;
            }
            EventKind::TaskStopped { task, job } => {
                // A stop may land on a running or a waiting job.
                if running == Some((task, job)) {
                    running = None;
                }
                match phase.get(&(task, job)) {
                    Some(JobPhase::Done) => violate(
                        at,
                        format!("{task} job {job} stopped after completion"),
                        &mut violations,
                    ),
                    None => violate(
                        at,
                        format!("{task} job {job} stopped before release"),
                        &mut violations,
                    ),
                    _ => {}
                }
                phase.insert((task, job), JobPhase::Done);
            }
            EventKind::DeadlineMiss { task, job } => {
                if !phase.contains_key(&(task, job)) {
                    violate(
                        at,
                        format!("{task} job {job} missed before release"),
                        &mut violations,
                    );
                }
            }
            EventKind::CpuIdle => {
                if let Some(r) = running {
                    violate(
                        at,
                        format!("idle reported while {} job {} runs", r.0, r.1),
                        &mut violations,
                    );
                }
            }
            EventKind::DetectorRelease { .. }
            | EventKind::FaultDetected { .. }
            | EventKind::AllowanceGranted { .. }
            | EventKind::SimEnd => {}
        }
    }
    violations
}

/// `true` iff the log passes every structural check.
pub fn is_well_formed(log: &TraceLog) -> bool {
    check(log).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: i64) -> Instant {
        Instant::from_millis(ms)
    }

    fn id(v: u32) -> TaskId {
        TaskId(v)
    }

    #[test]
    fn clean_lifecycle_passes() {
        let mut log = TraceLog::new();
        log.push(
            t(0),
            EventKind::JobRelease {
                task: id(1),
                job: 0,
            },
        );
        log.push(
            t(0),
            EventKind::JobStart {
                task: id(1),
                job: 0,
            },
        );
        log.push(
            t(5),
            EventKind::Preempted {
                task: id(1),
                job: 0,
                by: id(2),
            },
        );
        log.push(
            t(5),
            EventKind::JobRelease {
                task: id(2),
                job: 0,
            },
        );
        log.push(
            t(5),
            EventKind::JobStart {
                task: id(2),
                job: 0,
            },
        );
        log.push(
            t(8),
            EventKind::JobEnd {
                task: id(2),
                job: 0,
            },
        );
        log.push(
            t(8),
            EventKind::Resumed {
                task: id(1),
                job: 0,
            },
        );
        log.push(
            t(12),
            EventKind::JobEnd {
                task: id(1),
                job: 0,
            },
        );
        log.push(t(12), EventKind::CpuIdle);
        assert!(is_well_formed(&log), "{:?}", check(&log));
    }

    #[test]
    fn double_release_caught() {
        let mut log = TraceLog::new();
        log.push(
            t(0),
            EventKind::JobRelease {
                task: id(1),
                job: 0,
            },
        );
        log.push(
            t(1),
            EventKind::JobRelease {
                task: id(1),
                job: 0,
            },
        );
        let v = check(&log);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("released twice"));
    }

    #[test]
    fn start_without_release_caught() {
        let mut log = TraceLog::new();
        log.push(
            t(0),
            EventKind::JobStart {
                task: id(1),
                job: 0,
            },
        );
        assert!(!is_well_formed(&log));
    }

    #[test]
    fn two_jobs_running_caught() {
        let mut log = TraceLog::new();
        log.push(
            t(0),
            EventKind::JobRelease {
                task: id(1),
                job: 0,
            },
        );
        log.push(
            t(0),
            EventKind::JobRelease {
                task: id(2),
                job: 0,
            },
        );
        log.push(
            t(0),
            EventKind::JobStart {
                task: id(1),
                job: 0,
            },
        );
        log.push(
            t(1),
            EventKind::JobStart {
                task: id(2),
                job: 0,
            },
        );
        let v = check(&log);
        assert!(v.iter().any(|v| v.message.contains("while")));
    }

    #[test]
    fn end_while_not_running_caught() {
        let mut log = TraceLog::new();
        log.push(
            t(0),
            EventKind::JobRelease {
                task: id(1),
                job: 0,
            },
        );
        log.push(
            t(1),
            EventKind::JobEnd {
                task: id(1),
                job: 0,
            },
        );
        assert!(!is_well_formed(&log));
    }

    #[test]
    fn stop_after_completion_caught() {
        let mut log = TraceLog::new();
        log.push(
            t(0),
            EventKind::JobRelease {
                task: id(1),
                job: 0,
            },
        );
        log.push(
            t(0),
            EventKind::JobStart {
                task: id(1),
                job: 0,
            },
        );
        log.push(
            t(3),
            EventKind::JobEnd {
                task: id(1),
                job: 0,
            },
        );
        log.push(
            t(4),
            EventKind::TaskStopped {
                task: id(1),
                job: 0,
            },
        );
        let v = check(&log);
        assert!(v.iter().any(|v| v.message.contains("after completion")));
    }

    #[test]
    fn idle_while_running_caught() {
        let mut log = TraceLog::new();
        log.push(
            t(0),
            EventKind::JobRelease {
                task: id(1),
                job: 0,
            },
        );
        log.push(
            t(0),
            EventKind::JobStart {
                task: id(1),
                job: 0,
            },
        );
        log.push(t(1), EventKind::CpuIdle);
        assert!(!is_well_formed(&log));
    }

    #[test]
    fn stop_on_waiting_job_is_fine() {
        let mut log = TraceLog::new();
        log.push(
            t(0),
            EventKind::JobRelease {
                task: id(1),
                job: 0,
            },
        );
        log.push(
            t(2),
            EventKind::TaskStopped {
                task: id(1),
                job: 0,
            },
        );
        assert!(is_well_formed(&log), "{:?}", check(&log));
    }
}
