//! In-memory trace log.
//!
//! The paper's instrumentation appends timestamps to `StringBuffer` fields
//! during the run "in order not to slow down the system with in-out
//! operations" and writes them out at the end. [`TraceLog`] is the same
//! architecture: an append-only buffer with cheap pushes, flushed/queried
//! after the run.

use crate::event::{EventKind, JobIndex, TraceEvent};
use rtft_core::task::TaskId;
use rtft_core::time::Instant;

/// Append-only, time-ordered event log.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
}

impl TraceLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty log with pre-reserved capacity (the paper pre-sizes its
    /// buffers for the same reason: no allocation jitter mid-run).
    pub fn with_capacity(n: usize) -> Self {
        TraceLog {
            events: Vec::with_capacity(n),
        }
    }

    /// Reserve room for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.events.reserve(additional);
    }

    /// Drop all records, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Append an event.
    ///
    /// # Panics
    /// In debug builds, panics if `at` precedes the last recorded event —
    /// the simulator must emit in order, and analysis code relies on it.
    pub fn push(&mut self, at: Instant, kind: EventKind) {
        debug_assert!(
            self.events.last().is_none_or(|last| last.at <= at),
            "events must be appended in time order ({:?} after {:?})",
            at,
            self.events.last().map(|e| e.at)
        );
        self.events.push(TraceEvent::new(at, kind));
    }

    /// Append a pre-built record (used by the log-file parser).
    pub fn push_event(&mut self, e: TraceEvent) {
        self.push(e.at, e.kind);
    }

    /// All events in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Time of the last event (the run horizon).
    pub fn end(&self) -> Option<Instant> {
        self.events.last().map(|e| e.at)
    }

    /// Events concerning one task.
    pub fn for_task(&self, task: TaskId) -> impl Iterator<Item = &TraceEvent> {
        self.events
            .iter()
            .filter(move |e| e.kind.task() == Some(task))
    }

    /// Events inside a half-open window `[from, to)`.
    pub fn window(&self, from: Instant, to: Instant) -> impl Iterator<Item = &TraceEvent> {
        self.events
            .iter()
            .filter(move |e| e.at >= from && e.at < to)
    }

    /// First event matching a predicate.
    pub fn find(&self, mut pred: impl FnMut(&TraceEvent) -> bool) -> Option<&TraceEvent> {
        self.events.iter().find(|e| pred(e))
    }

    /// Count of events matching a predicate.
    pub fn count(&self, mut pred: impl FnMut(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }

    /// Instant a given job of a task ended, if it did.
    pub fn job_end(&self, task: TaskId, job: JobIndex) -> Option<Instant> {
        self.find(|e| e.kind == EventKind::JobEnd { task, job })
            .map(|e| e.at)
    }

    /// Instant a given job was released, if recorded.
    pub fn job_release(&self, task: TaskId, job: JobIndex) -> Option<Instant> {
        self.find(|e| e.kind == EventKind::JobRelease { task, job })
            .map(|e| e.at)
    }

    /// Deadline-miss events for one task.
    pub fn misses(&self, task: TaskId) -> Vec<JobIndex> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::DeadlineMiss { task: t, job } if t == task => Some(job),
                _ => None,
            })
            .collect()
    }

    /// `true` iff any deadline miss was recorded at all.
    pub fn any_miss(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.kind, EventKind::DeadlineMiss { .. }))
    }

    /// Stop events `(task, job, at)` in order.
    pub fn stops(&self) -> Vec<(TaskId, JobIndex, Instant)> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::TaskStopped { task, job } => Some((task, job, e.at)),
                _ => None,
            })
            .collect()
    }

    /// Fault-detection events `(task, job, at)` in order.
    pub fn faults(&self) -> Vec<(TaskId, JobIndex, Instant)> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::FaultDetected { task, job } => Some((task, job, e.at)),
                _ => None,
            })
            .collect()
    }

    /// A stable content hash of the log (FNV-1a over every event's
    /// fields) — used by determinism tests and the campaign engine's
    /// per-job digests: same seed ⇒ same hash. Allocation-free: the
    /// campaign hot path hashes millions of events.
    pub fn content_hash(&self) -> u64 {
        fn eat_bytes(h: &mut u64, bytes: &[u8]) {
            for b in bytes {
                *h ^= u64::from(*b);
                *h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for e in &self.events {
            eat_bytes(&mut h, &e.at.as_nanos().to_le_bytes());
            // Discriminant: the full per-variant tag (unique strings).
            eat_bytes(&mut h, e.kind.tag().as_bytes());
            eat_bytes(
                &mut h,
                &e.kind
                    .task()
                    .map_or(u64::MAX, |t| u64::from(t.0))
                    .to_le_bytes(),
            );
            eat_bytes(&mut h, &e.kind.job().unwrap_or(u64::MAX).to_le_bytes());
            // Payload fields outside (task, job) — extend this match
            // when a new variant carries extra data.
            match e.kind {
                EventKind::Preempted { by, .. } => {
                    eat_bytes(&mut h, &u64::from(by.0).to_le_bytes())
                }
                EventKind::AllowanceGranted { amount, .. } => {
                    eat_bytes(&mut h, &amount.as_nanos().to_le_bytes())
                }
                _ => {}
            }
        }
        h
    }
}

impl FromIterator<TraceEvent> for TraceLog {
    fn from_iter<I: IntoIterator<Item = TraceEvent>>(iter: I) -> Self {
        let mut log = TraceLog::new();
        for e in iter {
            log.push_event(e);
        }
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtft_core::time::Duration;

    fn t(ms: i64) -> Instant {
        Instant::from_millis(ms)
    }

    fn sample() -> TraceLog {
        let mut log = TraceLog::new();
        log.push(
            t(0),
            EventKind::JobRelease {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(0),
            EventKind::JobStart {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(29),
            EventKind::JobEnd {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(30),
            EventKind::DetectorRelease {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(120),
            EventKind::DeadlineMiss {
                task: TaskId(3),
                job: 0,
            },
        );
        log.push(t(150), EventKind::SimEnd);
        log
    }

    #[test]
    fn push_and_query() {
        let log = sample();
        assert_eq!(log.len(), 6);
        assert_eq!(log.end(), Some(t(150)));
        assert_eq!(log.for_task(TaskId(1)).count(), 4);
        assert_eq!(log.window(t(0), t(30)).count(), 3);
        assert_eq!(log.job_end(TaskId(1), 0), Some(t(29)));
        assert_eq!(log.job_release(TaskId(1), 0), Some(t(0)));
        assert_eq!(log.misses(TaskId(3)), vec![0]);
        assert!(log.any_miss());
        assert!(log.misses(TaskId(1)).is_empty());
    }

    #[test]
    #[should_panic(expected = "time order")]
    #[cfg(debug_assertions)]
    fn out_of_order_push_panics() {
        let mut log = TraceLog::new();
        log.push(t(10), EventKind::CpuIdle);
        log.push(t(5), EventKind::CpuIdle);
    }

    #[test]
    fn equal_timestamps_allowed() {
        let mut log = TraceLog::new();
        log.push(
            t(10),
            EventKind::JobEnd {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(10),
            EventKind::JobStart {
                task: TaskId(2),
                job: 0,
            },
        );
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn stops_and_faults() {
        let mut log = sample();
        log.push(
            t(160),
            EventKind::FaultDetected {
                task: TaskId(1),
                job: 5,
            },
        );
        log.push(
            t(160),
            EventKind::AllowanceGranted {
                task: TaskId(1),
                job: 5,
                amount: Duration::millis(11),
            },
        );
        log.push(
            t(171),
            EventKind::TaskStopped {
                task: TaskId(1),
                job: 5,
            },
        );
        assert_eq!(log.faults(), vec![(TaskId(1), 5, t(160))]);
        assert_eq!(log.stops(), vec![(TaskId(1), 5, t(171))]);
    }

    #[test]
    fn hash_is_content_sensitive() {
        let a = sample();
        let b = sample();
        assert_eq!(a.content_hash(), b.content_hash());
        let mut c = sample();
        c.push(t(200), EventKind::CpuIdle);
        assert_ne!(a.content_hash(), c.content_hash());
    }

    #[test]
    fn from_iterator() {
        let log: TraceLog = sample().events().iter().copied().collect();
        assert_eq!(log, sample());
    }
}
