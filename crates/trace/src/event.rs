//! Trace event records — the "key dates in the system life" of the paper's
//! Section 5, plus scheduler-level detail (preemptions, stops, grants) that
//! the treatments need for verification.

use rtft_core::task::TaskId;
use rtft_core::time::{Duration, Instant};
use std::fmt;

/// Index of a job within its task (0 = first activation).
pub type JobIndex = u64;

/// What happened.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// A job became ready (the ↑ marker of the paper's figures).
    JobRelease {
        /// Task concerned.
        task: TaskId,
        /// Job index.
        job: JobIndex,
    },
    /// A job got the CPU for the first time — the instant
    /// `computeBeforePeriodic()` runs in the paper's instrumentation.
    JobStart {
        /// Task concerned.
        task: TaskId,
        /// Job index.
        job: JobIndex,
    },
    /// A job completed — `computeAfterPeriodic()`.
    JobEnd {
        /// Task concerned.
        task: TaskId,
        /// Job index.
        job: JobIndex,
    },
    /// A running job lost the CPU to a higher-priority one.
    Preempted {
        /// Task concerned.
        task: TaskId,
        /// Job index.
        job: JobIndex,
        /// Task that took the CPU.
        by: TaskId,
    },
    /// A preempted job got the CPU back.
    Resumed {
        /// Task concerned.
        task: TaskId,
        /// Job index.
        job: JobIndex,
    },
    /// A job was still unfinished at its absolute deadline (the ↓ marker):
    /// the failure the treatments try to confine.
    DeadlineMiss {
        /// Task concerned.
        task: TaskId,
        /// Job index.
        job: JobIndex,
    },
    /// A detector fired (the ◆ marker). `job` is the job it inspected.
    DetectorRelease {
        /// Task watched.
        task: TaskId,
        /// Job inspected.
        job: JobIndex,
    },
    /// The detector found the inspected job unfinished: a temporal fault.
    FaultDetected {
        /// Faulty task.
        task: TaskId,
        /// Faulty job.
        job: JobIndex,
    },
    /// The treatment granted extra time to a faulty job.
    AllowanceGranted {
        /// Faulty task.
        task: TaskId,
        /// Faulty job.
        job: JobIndex,
        /// Extra time granted past the detection point.
        amount: Duration,
    },
    /// The treatment stopped the faulty task (its current job is abandoned
    /// and, in the paper's static setting, the task makes no further
    /// releases until re-admitted).
    TaskStopped {
        /// Stopped task.
        task: TaskId,
        /// Abandoned job.
        job: JobIndex,
    },
    /// The processor went idle.
    CpuIdle,
    /// The simulation horizon was reached.
    SimEnd,
}

impl EventKind {
    /// The task this event concerns, if any.
    pub fn task(&self) -> Option<TaskId> {
        match *self {
            EventKind::JobRelease { task, .. }
            | EventKind::JobStart { task, .. }
            | EventKind::JobEnd { task, .. }
            | EventKind::Preempted { task, .. }
            | EventKind::Resumed { task, .. }
            | EventKind::DeadlineMiss { task, .. }
            | EventKind::DetectorRelease { task, .. }
            | EventKind::FaultDetected { task, .. }
            | EventKind::AllowanceGranted { task, .. }
            | EventKind::TaskStopped { task, .. } => Some(task),
            EventKind::CpuIdle | EventKind::SimEnd => None,
        }
    }

    /// The job index this event concerns, if any.
    pub fn job(&self) -> Option<JobIndex> {
        match *self {
            EventKind::JobRelease { job, .. }
            | EventKind::JobStart { job, .. }
            | EventKind::JobEnd { job, .. }
            | EventKind::Preempted { job, .. }
            | EventKind::Resumed { job, .. }
            | EventKind::DeadlineMiss { job, .. }
            | EventKind::DetectorRelease { job, .. }
            | EventKind::FaultDetected { job, .. }
            | EventKind::AllowanceGranted { job, .. }
            | EventKind::TaskStopped { job, .. } => Some(job),
            EventKind::CpuIdle | EventKind::SimEnd => None,
        }
    }

    /// Stable lowercase tag used by the text log format.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::JobRelease { .. } => "release",
            EventKind::JobStart { .. } => "start",
            EventKind::JobEnd { .. } => "end",
            EventKind::Preempted { .. } => "preempt",
            EventKind::Resumed { .. } => "resume",
            EventKind::DeadlineMiss { .. } => "miss",
            EventKind::DetectorRelease { .. } => "detector",
            EventKind::FaultDetected { .. } => "fault",
            EventKind::AllowanceGranted { .. } => "grant",
            EventKind::TaskStopped { .. } => "stop",
            EventKind::CpuIdle => "idle",
            EventKind::SimEnd => "simend",
        }
    }
}

/// A timestamped trace record.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// When it happened (virtual time).
    pub at: Instant,
    /// What happened.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Build a record.
    pub fn new(at: Instant, kind: EventKind) -> Self {
        TraceEvent { at, kind }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind.task() {
            Some(task) => match self.kind.job() {
                Some(job) => write!(f, "{} {} {} job {}", self.at, self.kind.tag(), task, job),
                None => write!(f, "{} {} {}", self.at, self.kind.tag(), task),
            },
            None => write!(f, "{} {}", self.at, self.kind.tag()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let e = EventKind::JobEnd {
            task: TaskId(2),
            job: 4,
        };
        assert_eq!(e.task(), Some(TaskId(2)));
        assert_eq!(e.job(), Some(4));
        assert_eq!(e.tag(), "end");
        assert_eq!(EventKind::CpuIdle.task(), None);
        assert_eq!(EventKind::SimEnd.job(), None);
    }

    #[test]
    fn display() {
        let e = TraceEvent::new(
            Instant::from_millis(1020),
            EventKind::FaultDetected {
                task: TaskId(1),
                job: 5,
            },
        );
        let s = e.to_string();
        assert!(s.contains("t=1020ms"));
        assert!(s.contains("fault"));
        assert!(s.contains("τ1"));
        assert!(s.contains("job 5"));
    }

    #[test]
    fn grant_carries_amount() {
        let e = EventKind::AllowanceGranted {
            task: TaskId(1),
            job: 5,
            amount: Duration::millis(33),
        };
        assert_eq!(e.tag(), "grant");
        if let EventKind::AllowanceGranted { amount, .. } = e {
            assert_eq!(amount, Duration::millis(33));
        }
    }
}
