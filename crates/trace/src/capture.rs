//! Capture format v2 — the persisted trace artifact behind `rtft trace`
//! and `rtft replay`.
//!
//! A *capture* is a trace log plus the provenance a replay needs: which
//! spec produced it (by content hash), under which policy, placement and
//! treatment, on how many cores, and the content hash of the events
//! themselves. The header rides as `#`-comment lines, so a flat capture
//! is still a valid v1 trace file — `format::from_text` (and therefore
//! `rtft chart`) skips the header and reads the events unchanged:
//!
//! ```text
//! # rtft trace v2
//! # spec-hash 00c0ffee00c0ffee
//! # policy fp
//! # placement partitioned
//! # cores 1
//! # treatment equitable
//! # content-hash 0123456789abcdef
//! 0 release task 1 job 0
//! ...
//! ```
//!
//! Multicore captures prefix every event line with its core tag
//! (`c0 1000 start task 1 job 0`), merged chronologically — the same
//! shape [`crate::merge::to_text`] has always written, now with the
//! header in front. A JSON rendering of the same data is available for
//! tooling ([`TraceCapture::render_json`] / [`TraceCapture::parse_json`]);
//! both renderings round-trip exactly (property-tested).
//!
//! Determinism contract: the simulator is deterministic, so capture →
//! import → replay sees byte-for-byte the events a fresh run would
//! produce, and the content hash in the header pins them. A capture
//! whose events no longer match its `content-hash` has been edited;
//! a capture whose `spec-hash` disagrees with the spec it is replayed
//! against belongs to a different system (lint rule RT035).

use crate::event::{EventKind, TraceEvent};
use crate::format::{self, ParseError};
use crate::log::TraceLog;
use crate::merge::{merge_core_traces, merged_content_hash, CoreEvent};
use rtft_core::task::TaskId;
use rtft_core::time::{Duration, Instant};
use std::fmt::Write as _;

/// Provenance metadata of a capture: which spec produced the events,
/// under what scheduling configuration, and the content hash pinning
/// the events themselves.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceHeader {
    /// [`rtft_core::query::spec_hash`] of the originating [`SystemSpec`]
    /// (the serve cache keys warm sessions by the same hash).
    ///
    /// [`SystemSpec`]: rtft_core::query::SystemSpec
    pub spec_hash: u64,
    /// Scheduling policy label (`fp`, `edf`, `npfp`).
    pub policy: String,
    /// Placement label (`partitioned`, `global`).
    pub placement: String,
    /// Core count of the run.
    pub cores: usize,
    /// Fault-treatment keyword (`none`, `detect`, `stop`, `equitable`,
    /// `system`).
    pub treatment: String,
    /// Content hash of the events: [`TraceLog::content_hash`] for a
    /// flat capture, [`merged_content_hash`] over the per-core logs for
    /// a multicore one.
    pub content_hash: u64,
}

/// The event body of a capture.
#[derive(Clone, PartialEq, Debug)]
pub enum CaptureBody {
    /// A uniprocessor run: one chronological log, no core tags.
    Flat(TraceLog),
    /// A multicore run: the chronological core-tagged merge of the
    /// per-core logs.
    Merged(Vec<CoreEvent>),
}

/// A parsed or freshly built capture: optional header (legacy v1 files
/// have none) plus the event body.
#[derive(Clone, PartialEq, Debug)]
pub struct TraceCapture {
    /// Provenance header; `None` when importing a legacy headerless
    /// trace file.
    pub header: Option<TraceHeader>,
    /// The events.
    pub body: CaptureBody,
}

/// Group a merged stream back into per-core logs (distinct cores,
/// ascending) and fold them with [`merged_content_hash`]. Both the
/// capture constructors and [`TraceCapture::recomputed_hash`] go
/// through here, so a freshly built capture's stored hash always
/// matches its recomputed one (inputs that contributed no events drop
/// out of both sides identically).
fn merged_hash_of(events: &[CoreEvent]) -> u64 {
    let mut cores: Vec<usize> = events.iter().map(|e| e.core).collect();
    cores.sort_unstable();
    cores.dedup();
    let logs: Vec<(usize, TraceLog)> = cores
        .into_iter()
        .map(|c| {
            (
                c,
                events
                    .iter()
                    .filter(|e| e.core == c)
                    .map(|e| e.event)
                    .collect(),
            )
        })
        .collect();
    let refs: Vec<(usize, &TraceLog)> = logs.iter().map(|(c, l)| (*c, l)).collect();
    merged_content_hash(&refs)
}

impl TraceCapture {
    /// Build a capture of a uniprocessor run.
    pub fn flat(spec_hash: u64, policy: &str, treatment: &str, log: TraceLog) -> Self {
        let content_hash = log.content_hash();
        TraceCapture {
            header: Some(TraceHeader {
                spec_hash,
                policy: policy.to_string(),
                placement: "partitioned".to_string(),
                cores: 1,
                treatment: treatment.to_string(),
                content_hash,
            }),
            body: CaptureBody::Flat(log),
        }
    }

    /// Build a capture of a multicore run from its per-core logs
    /// (`(core id, log)` pairs, cores ascending — the same inputs
    /// [`merge_core_traces`] takes).
    pub fn merged(
        spec_hash: u64,
        policy: &str,
        placement: &str,
        cores: usize,
        treatment: &str,
        logs: &[(usize, &TraceLog)],
    ) -> Self {
        let events = merge_core_traces(logs);
        let content_hash = merged_hash_of(&events);
        TraceCapture {
            header: Some(TraceHeader {
                spec_hash,
                policy: policy.to_string(),
                placement: placement.to_string(),
                cores,
                treatment: treatment.to_string(),
                content_hash,
            }),
            body: CaptureBody::Merged(events),
        }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        match &self.body {
            CaptureBody::Flat(log) => log.len(),
            CaptureBody::Merged(events) => events.len(),
        }
    }

    /// `true` when the capture holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The events as a uniform core-tagged chronological stream (a flat
    /// body reads as core 0). Replay indexes divergences into this
    /// stream.
    pub fn events(&self) -> Vec<CoreEvent> {
        match &self.body {
            CaptureBody::Flat(log) => log
                .events()
                .iter()
                .map(|e| CoreEvent { core: 0, event: *e })
                .collect(),
            CaptureBody::Merged(events) => events.clone(),
        }
    }

    /// The events as one chronological [`TraceLog`], core tags dropped
    /// (the merge is already time-ordered, so this is well-formed).
    pub fn flat_log(&self) -> TraceLog {
        match &self.body {
            CaptureBody::Flat(log) => log.clone(),
            CaptureBody::Merged(events) => events.iter().map(|e| e.event).collect(),
        }
    }

    /// Per-core logs of a merged body (distinct cores, ascending); a
    /// flat body yields a single `(0, log)` pair.
    pub fn core_logs(&self) -> Vec<(usize, TraceLog)> {
        match &self.body {
            CaptureBody::Flat(log) => vec![(0, log.clone())],
            CaptureBody::Merged(events) => {
                let mut cores: Vec<usize> = events.iter().map(|e| e.core).collect();
                cores.sort_unstable();
                cores.dedup();
                cores
                    .into_iter()
                    .map(|c| {
                        (
                            c,
                            events
                                .iter()
                                .filter(|e| e.core == c)
                                .map(|e| e.event)
                                .collect(),
                        )
                    })
                    .collect()
            }
        }
    }

    /// Recompute the content hash from the events actually present —
    /// the check behind lint rule RT035's tampered-capture face.
    pub fn recomputed_hash(&self) -> u64 {
        match &self.body {
            CaptureBody::Flat(log) => log.content_hash(),
            CaptureBody::Merged(events) => merged_hash_of(events),
        }
    }

    /// Does the header's stored content hash match the events? `None`
    /// when the capture has no header to check against.
    pub fn hash_matches(&self) -> Option<bool> {
        self.header
            .as_ref()
            .map(|h| h.content_hash == self.recomputed_hash())
    }

    /// A copy keeping only the first `keep` events (of the chronological
    /// stream), with the header's content hash updated to match. Replay
    /// minimization truncates the suffix after the first divergence, so
    /// the divergence keeps its event index in the minimized capture.
    pub fn truncated(&self, keep: usize) -> TraceCapture {
        let body = match &self.body {
            CaptureBody::Flat(log) => CaptureBody::Flat(
                log.events()
                    .iter()
                    .take(keep)
                    .copied()
                    .collect::<TraceLog>(),
            ),
            CaptureBody::Merged(events) => {
                CaptureBody::Merged(events.iter().take(keep).cloned().collect())
            }
        };
        let recomputed = match &body {
            CaptureBody::Flat(log) => log.content_hash(),
            CaptureBody::Merged(events) => merged_hash_of(events),
        };
        let header = self.header.clone().map(|mut h| {
            h.content_hash = recomputed;
            h
        });
        TraceCapture { header, body }
    }

    /// Render the line format (header comments + event lines).
    pub fn render_text(&self) -> String {
        let mut out = String::with_capacity(self.len() * 40 + 192);
        out.push_str("# rtft trace v2\n");
        if let Some(h) = &self.header {
            let _ = writeln!(out, "# spec-hash {:016x}", h.spec_hash);
            let _ = writeln!(out, "# policy {}", h.policy);
            let _ = writeln!(out, "# placement {}", h.placement);
            let _ = writeln!(out, "# cores {}", h.cores);
            let _ = writeln!(out, "# treatment {}", h.treatment);
            let _ = writeln!(out, "# content-hash {:016x}", h.content_hash);
        }
        match &self.body {
            CaptureBody::Flat(log) => {
                for e in log.events() {
                    format::write_line(&mut out, e);
                }
            }
            CaptureBody::Merged(events) => {
                for ce in events {
                    let _ = write!(out, "c{} ", ce.core);
                    format::write_line(&mut out, &ce.event);
                }
            }
        }
        out
    }

    /// Parse the line format. Accepts a v2 capture (header + flat or
    /// core-tagged body), a legacy headerless v1 trace file (flat body,
    /// `header: None`), or a headerless core-tagged body (`header:
    /// None`). The *old* multicore `--save-trace` dumps used the human
    /// display format and were never machine-readable — those still
    /// fail to parse.
    pub fn parse_text(text: &str) -> Result<TraceCapture, ParseError> {
        let mut spec_hash: Option<u64> = None;
        let mut policy: Option<String> = None;
        let mut placement: Option<String> = None;
        let mut cores: Option<usize> = None;
        let mut treatment: Option<String> = None;
        let mut content_hash: Option<u64> = None;
        let mut in_header = true;

        enum Acc {
            Empty,
            Flat(TraceLog),
            Merged(Vec<CoreEvent>),
        }
        let mut acc = Acc::Empty;
        let mut last_at: Option<Instant> = None;

        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let fail = |message: String| ParseError {
                line: line_no,
                message,
            };
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                let rest = rest.trim();
                if !in_header {
                    continue; // ordinary comment inside the body
                }
                if let Some((key, value)) = rest.split_once(' ') {
                    let value = value.trim();
                    match key {
                        "spec-hash" => {
                            spec_hash = Some(
                                u64::from_str_radix(value, 16)
                                    .map_err(|e| fail(format!("bad spec-hash: {e}")))?,
                            );
                        }
                        "content-hash" => {
                            content_hash = Some(
                                u64::from_str_radix(value, 16)
                                    .map_err(|e| fail(format!("bad content-hash: {e}")))?,
                            );
                        }
                        "policy" => policy = Some(value.to_string()),
                        "placement" => placement = Some(value.to_string()),
                        "treatment" => treatment = Some(value.to_string()),
                        "cores" => {
                            cores = Some(
                                value
                                    .parse()
                                    .map_err(|e| fail(format!("bad cores count: {e}")))?,
                            );
                        }
                        _ => {} // "rtft trace v2", "rtft trace v1", free comments
                    }
                }
                continue;
            }

            in_header = false;
            // Core-tagged line? `c<digits> <event line>`.
            let tagged = line
                .strip_prefix('c')
                .and_then(|rest| rest.split_once(' '))
                .and_then(|(digits, event_line)| {
                    digits.parse::<usize>().ok().map(|c| (c, event_line))
                });
            if let Some((core, event_line)) = tagged {
                let event = format::parse_line(event_line).map_err(&fail)?;
                if last_at.is_some_and(|last| event.at < last) {
                    return Err(fail(format!(
                        "timestamp {} out of order",
                        event.at.as_nanos()
                    )));
                }
                last_at = Some(event.at);
                match &mut acc {
                    Acc::Empty => acc = Acc::Merged(vec![CoreEvent { core, event }]),
                    Acc::Merged(events) => events.push(CoreEvent { core, event }),
                    Acc::Flat(_) => {
                        return Err(fail(
                            "core-tagged line in a flat capture (mixed body)".to_string(),
                        ));
                    }
                }
            } else {
                let event = format::parse_line(line).map_err(&fail)?;
                if last_at.is_some_and(|last| event.at < last) {
                    return Err(fail(format!(
                        "timestamp {} out of order",
                        event.at.as_nanos()
                    )));
                }
                last_at = Some(event.at);
                match &mut acc {
                    Acc::Empty => {
                        let mut log = TraceLog::new();
                        log.push_event(event);
                        acc = Acc::Flat(log);
                    }
                    Acc::Flat(log) => log.push_event(event),
                    Acc::Merged(_) => {
                        return Err(fail(
                            "flat line in a core-tagged capture (mixed body)".to_string(),
                        ));
                    }
                }
            }
        }

        let any_field = spec_hash.is_some()
            || policy.is_some()
            || placement.is_some()
            || cores.is_some()
            || treatment.is_some()
            || content_hash.is_some();
        let header = if any_field {
            match (spec_hash, policy, placement, cores, treatment, content_hash) {
                (
                    Some(spec_hash),
                    Some(policy),
                    Some(placement),
                    Some(cores),
                    Some(treatment),
                    Some(content_hash),
                ) => Some(TraceHeader {
                    spec_hash,
                    policy,
                    placement,
                    cores,
                    treatment,
                    content_hash,
                }),
                _ => {
                    return Err(ParseError {
                        line: 1,
                        message: "incomplete capture header (need spec-hash, policy, \
                                  placement, cores, treatment, content-hash)"
                            .to_string(),
                    });
                }
            }
        } else {
            None
        };
        let body = match acc {
            Acc::Empty => CaptureBody::Flat(TraceLog::new()),
            Acc::Flat(log) => CaptureBody::Flat(log),
            Acc::Merged(events) => CaptureBody::Merged(events),
        };
        Ok(TraceCapture { header, body })
    }

    /// Render the JSON form of the same data (hashes as 16-hex-digit
    /// strings, times in nanoseconds).
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(self.len() * 64 + 256);
        out.push_str("{\n  \"version\": 2,\n");
        match &self.header {
            Some(h) => {
                out.push_str("  \"header\": {\n");
                let _ = writeln!(out, "    \"spec_hash\": \"{:016x}\",", h.spec_hash);
                let _ = writeln!(out, "    \"policy\": {},", json_string(&h.policy));
                let _ = writeln!(out, "    \"placement\": {},", json_string(&h.placement));
                let _ = writeln!(out, "    \"cores\": {},", h.cores);
                let _ = writeln!(out, "    \"treatment\": {},", json_string(&h.treatment));
                let _ = writeln!(out, "    \"content_hash\": \"{:016x}\"", h.content_hash);
                out.push_str("  },\n");
            }
            None => out.push_str("  \"header\": null,\n"),
        }
        let kind = match &self.body {
            CaptureBody::Flat(_) => "flat",
            CaptureBody::Merged(_) => "merged",
        };
        let _ = writeln!(out, "  \"body\": \"{kind}\",");
        out.push_str("  \"events\": [");
        let events = self.events();
        for (i, ce) in events.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {");
            if matches!(self.body, CaptureBody::Merged(_)) {
                let _ = write!(out, "\"core\": {}, ", ce.core);
            }
            let e = &ce.event;
            let _ = write!(
                out,
                "\"at\": {}, \"tag\": \"{}\"",
                e.at.as_nanos(),
                e.kind.tag()
            );
            if let Some(task) = e.kind.task() {
                let _ = write!(out, ", \"task\": {}", task.0);
            }
            if let Some(job) = e.kind.job() {
                let _ = write!(out, ", \"job\": {job}");
            }
            match e.kind {
                EventKind::Preempted { by, .. } => {
                    let _ = write!(out, ", \"by\": {}", by.0);
                }
                EventKind::AllowanceGranted { amount, .. } => {
                    let _ = write!(out, ", \"amount\": {}", amount.as_nanos());
                }
                _ => {}
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parse the JSON form.
    pub fn parse_json(text: &str) -> Result<TraceCapture, ParseError> {
        let value = json::parse(text)?;
        let obj = value.as_object().ok_or_else(|| ParseError {
            line: 1,
            message: "top-level JSON value must be an object".to_string(),
        })?;
        let fail = |message: String| ParseError { line: 1, message };

        let header = match obj.iter().find(|(k, _)| k == "header").map(|(_, v)| v) {
            None | Some(json::Value::Null) => None,
            Some(v) => {
                let h = v
                    .as_object()
                    .ok_or_else(|| fail("`header` must be an object or null".to_string()))?;
                let field = |name: &str| {
                    h.iter()
                        .find(|(k, _)| k == name)
                        .map(|(_, v)| v)
                        .ok_or_else(|| fail(format!("header missing `{name}`")))
                };
                let hex = |name: &str| -> Result<u64, ParseError> {
                    let s = field(name)?
                        .as_str()
                        .ok_or_else(|| fail(format!("header `{name}` must be a hex string")))?;
                    u64::from_str_radix(s, 16).map_err(|e| fail(format!("bad `{name}`: {e}")))
                };
                let string = |name: &str| -> Result<String, ParseError> {
                    field(name)?
                        .as_str()
                        .map(str::to_string)
                        .ok_or_else(|| fail(format!("header `{name}` must be a string")))
                };
                let cores = field("cores")?
                    .as_i64()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| fail("header `cores` must be a positive number".to_string()))?
                    as usize;
                Some(TraceHeader {
                    spec_hash: hex("spec_hash")?,
                    policy: string("policy")?,
                    placement: string("placement")?,
                    cores,
                    treatment: string("treatment")?,
                    content_hash: hex("content_hash")?,
                })
            }
        };

        let body_kind = obj
            .iter()
            .find(|(k, _)| k == "body")
            .map(|(_, v)| v)
            .and_then(|v| v.as_str())
            .ok_or_else(|| fail("missing `body`: \"flat\" or \"merged\"".to_string()))?;
        let events_value = obj
            .iter()
            .find(|(k, _)| k == "events")
            .map(|(_, v)| v)
            .ok_or_else(|| fail("missing `events` array".to_string()))?;
        let items = events_value
            .as_array()
            .ok_or_else(|| fail("`events` must be an array".to_string()))?;

        let mut events: Vec<CoreEvent> = Vec::with_capacity(items.len());
        let mut last_at: Option<Instant> = None;
        for (i, item) in items.iter().enumerate() {
            let efail = |message: String| ParseError {
                line: 1,
                message: format!("event {i}: {message}"),
            };
            let fields = item
                .as_object()
                .ok_or_else(|| efail("must be an object".to_string()))?;
            let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
            let num = |name: &str| -> Result<Option<i64>, ParseError> {
                match get(name) {
                    None => Ok(None),
                    Some(v) => v
                        .as_i64()
                        .map(Some)
                        .ok_or_else(|| efail(format!("`{name}` must be a number"))),
                }
            };
            let at = num("at")?.ok_or_else(|| efail("missing `at`".to_string()))?;
            let tag = get("tag")
                .and_then(|v| v.as_str())
                .ok_or_else(|| efail("missing `tag` string".to_string()))?;
            let task = num("task")?
                .map(|n| u32::try_from(n).map(TaskId))
                .transpose()
                .map_err(|_| efail("`task` out of range".to_string()))?;
            let job = num("job")?
                .map(u64::try_from)
                .transpose()
                .map_err(|_| efail("`job` out of range".to_string()))?;
            let by = num("by")?
                .map(|n| u32::try_from(n).map(TaskId))
                .transpose()
                .map_err(|_| efail("`by` out of range".to_string()))?;
            let amount = num("amount")?.map(Duration::nanos);
            let core = num("core")?
                .map(usize::try_from)
                .transpose()
                .map_err(|_| efail("`core` out of range".to_string()))?
                .unwrap_or(0);
            let kind = format::kind_from_parts(tag, task, job, amount, by).map_err(efail)?;
            let event = TraceEvent::new(Instant::from_nanos(at), kind);
            if last_at.is_some_and(|last| event.at < last) {
                return Err(ParseError {
                    line: 1,
                    message: format!("event {i}: timestamp {at} out of order"),
                });
            }
            last_at = Some(event.at);
            events.push(CoreEvent { core, event });
        }

        let body = match body_kind {
            "flat" => CaptureBody::Flat(events.iter().map(|e| e.event).collect()),
            "merged" => CaptureBody::Merged(events),
            other => return Err(fail(format!("unknown body kind `{other}`"))),
        };
        Ok(TraceCapture { header, body })
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A minimal recursive-descent JSON reader — just enough for the
/// capture schema (objects, arrays, strings, integer numbers, booleans,
/// null). Object members keep their document order.
mod json {
    use super::ParseError;

    /// A parsed JSON value.
    #[derive(Clone, PartialEq, Debug)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// An integer (the capture schema uses no fractions).
        Num(i64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, members in document order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(members) => Some(members),
                _ => None,
            }
        }
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
        pub fn as_i64(&self) -> Option<i64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }
    }

    struct Reader<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        fn error(&self, message: impl Into<String>) -> ParseError {
            let line = 1 + self.bytes[..self.pos.min(self.bytes.len())]
                .iter()
                .filter(|b| **b == b'\n')
                .count();
            ParseError {
                line,
                message: message.into(),
            }
        }

        fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
            {
                self.pos += 1;
            }
        }

        fn peek(&mut self) -> Option<u8> {
            self.skip_ws();
            self.bytes.get(self.pos).copied()
        }

        fn eat(&mut self, byte: u8) -> Result<(), ParseError> {
            if self.peek() == Some(byte) {
                self.pos += 1;
                Ok(())
            } else {
                Err(self.error(format!("expected `{}`", byte as char)))
            }
        }

        fn eat_literal(&mut self, lit: &str) -> bool {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                true
            } else {
                false
            }
        }

        fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
            if depth > 64 {
                return Err(self.error("nesting too deep"));
            }
            match self.peek() {
                Some(b'{') => {
                    self.pos += 1;
                    let mut members = Vec::new();
                    if self.peek() == Some(b'}') {
                        self.pos += 1;
                        return Ok(Value::Obj(members));
                    }
                    loop {
                        self.skip_ws();
                        let key = match self.string()? {
                            Value::Str(s) => s,
                            _ => unreachable!("string() yields Str"),
                        };
                        self.eat(b':')?;
                        let value = self.value(depth + 1)?;
                        members.push((key, value));
                        match self.peek() {
                            Some(b',') => self.pos += 1,
                            Some(b'}') => {
                                self.pos += 1;
                                return Ok(Value::Obj(members));
                            }
                            _ => return Err(self.error("expected `,` or `}`")),
                        }
                    }
                }
                Some(b'[') => {
                    self.pos += 1;
                    let mut items = Vec::new();
                    if self.peek() == Some(b']') {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    loop {
                        items.push(self.value(depth + 1)?);
                        match self.peek() {
                            Some(b',') => self.pos += 1,
                            Some(b']') => {
                                self.pos += 1;
                                return Ok(Value::Arr(items));
                            }
                            _ => return Err(self.error("expected `,` or `]`")),
                        }
                    }
                }
                Some(b'"') => self.string(),
                Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
                Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
                Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
                Some(b'-' | b'0'..=b'9') => self.number(),
                _ => Err(self.error("expected a JSON value")),
            }
        }

        fn number(&mut self) -> Result<Value, ParseError> {
            let start = self.pos;
            if self.bytes.get(self.pos) == Some(&b'-') {
                self.pos += 1;
            }
            while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            let text =
                std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are valid UTF-8");
            text.parse::<i64>()
                .map(Value::Num)
                .map_err(|e| self.error(format!("bad number: {e}")))
        }

        fn string(&mut self) -> Result<Value, ParseError> {
            self.eat(b'"')?;
            let mut out = String::new();
            loop {
                match self.bytes.get(self.pos).copied() {
                    None => return Err(self.error("unterminated string")),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(Value::Str(out));
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.bytes.get(self.pos).copied() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .and_then(|b| std::str::from_utf8(b).ok())
                                    .ok_or_else(|| self.error("truncated \\u escape"))?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|e| self.error(format!("bad \\u escape: {e}")))?;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| self.error("invalid \\u code point"))?,
                                );
                                self.pos += 4;
                            }
                            _ => return Err(self.error("bad escape")),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (strings are already
                        // validated UTF-8 from the &str input).
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| self.error("invalid UTF-8"))?;
                        let c = rest.chars().next().expect("non-empty");
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }
    }

    /// Parse one JSON document; trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut r = Reader {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = r.value(0)?;
        r.skip_ws();
        if r.pos != r.bytes.len() {
            return Err(r.error("trailing garbage after JSON document"));
        }
        Ok(value)
    }
}

/// The static diagnostics of a trace file — the `rtft lint` face of
/// rule `RT035`: a capture whose events no longer fold to the
/// `content-hash` its header pins has been edited (or truncated) since
/// it was recorded, so nothing replayed from it can be trusted against
/// the original run. Unparseable input reports through the shared
/// parse-failure codes; legacy headerless traces carry no pinned hash
/// and lint clean.
pub fn lint_trace_text(text: &str) -> Vec<rtft_core::diag::Diagnostic> {
    use rtft_core::diag::{parse_failure, Diagnostic, Span};
    let capture = match TraceCapture::parse_text(text) {
        Ok(c) => c,
        Err(e) => return vec![parse_failure(e.line, e.message)],
    };
    match capture.hash_matches() {
        Some(false) => {
            let stored = capture.header.as_ref().expect("hash implies header");
            vec![Diagnostic::new(
                "RT035",
                Span::Whole,
                format!(
                    "trace content hash {:016x} disagrees with the header's {:016x}: \
                     the events were edited after capture",
                    capture.recomputed_hash(),
                    stored.content_hash
                ),
                "re-export the trace, or replay the edited events deliberately with \
                 `rtft replay --force`",
            )]
        }
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: i64) -> Instant {
        Instant::from_millis(ms)
    }

    fn sample_log() -> TraceLog {
        let mut log = TraceLog::new();
        log.push(
            t(0),
            EventKind::JobRelease {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(0),
            EventKind::JobStart {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(5),
            EventKind::Preempted {
                task: TaskId(2),
                job: 3,
                by: TaskId(1),
            },
        );
        log.push(
            t(29),
            EventKind::JobEnd {
                task: TaskId(1),
                job: 0,
            },
        );
        log.push(
            t(31),
            EventKind::AllowanceGranted {
                task: TaskId(1),
                job: 0,
                amount: Duration::millis(11),
            },
        );
        log.push(t(150), EventKind::SimEnd);
        log
    }

    fn flat_capture() -> TraceCapture {
        TraceCapture::flat(0xc0ffee, "fp", "equitable", sample_log())
    }

    fn merged_capture() -> TraceCapture {
        let a = sample_log();
        let mut b = TraceLog::new();
        b.push(
            t(2),
            EventKind::JobStart {
                task: TaskId(3),
                job: 0,
            },
        );
        b.push(t(160), EventKind::SimEnd);
        TraceCapture::merged(
            0xc0ffee,
            "fp",
            "partitioned",
            2,
            "system",
            &[(0, &a), (1, &b)],
        )
    }

    #[test]
    fn text_roundtrip_flat() {
        let cap = flat_capture();
        let text = cap.render_text();
        let back = TraceCapture::parse_text(&text).unwrap();
        assert_eq!(back, cap);
    }

    #[test]
    fn text_roundtrip_merged() {
        let cap = merged_capture();
        let text = cap.render_text();
        assert!(text.contains("c0 "), "multicore bodies are core-tagged");
        let back = TraceCapture::parse_text(&text).unwrap();
        assert_eq!(back, cap);
    }

    #[test]
    fn json_roundtrip_flat_and_merged() {
        for cap in [flat_capture(), merged_capture()] {
            let json = cap.render_json();
            let back = TraceCapture::parse_json(&json).unwrap();
            assert_eq!(back, cap);
        }
    }

    #[test]
    fn stored_hash_always_matches_fresh_captures() {
        assert_eq!(flat_capture().hash_matches(), Some(true));
        assert_eq!(merged_capture().hash_matches(), Some(true));
    }

    #[test]
    fn flat_capture_is_still_a_valid_v1_trace_file() {
        // `rtft chart` (format::from_text) must read a v2 flat capture
        // unchanged: the header is all comments.
        let cap = flat_capture();
        let log = format::from_text(&cap.render_text()).unwrap();
        assert_eq!(log, sample_log());
    }

    #[test]
    fn legacy_headerless_v1_imports_with_no_header() {
        let text = format::to_text(&sample_log());
        let cap = TraceCapture::parse_text(&text).unwrap();
        assert_eq!(cap.header, None);
        assert_eq!(cap.body, CaptureBody::Flat(sample_log()));
        assert_eq!(cap.hash_matches(), None);
    }

    #[test]
    fn headerless_core_tagged_body_imports_as_merged() {
        let cap = TraceCapture::parse_text("c0 0 idle\nc1 5 simend\n").unwrap();
        assert_eq!(cap.header, None);
        match cap.body {
            CaptureBody::Merged(events) => {
                assert_eq!(events.len(), 2);
                assert_eq!(events[1].core, 1);
            }
            other => panic!("expected merged body, got {other:?}"),
        }
    }

    #[test]
    fn old_display_format_dumps_stay_unreadable() {
        // The pre-v2 multicore `--save-trace` wrote the human display
        // format (`c0 t=0ms release τ1 job 0`) — never importable, and
        // the capture parser must say so rather than misread it.
        let a = sample_log();
        let merged = merge_core_traces(&[(0, &a)]);
        let text = crate::merge::to_text(&merged);
        assert!(TraceCapture::parse_text(&text).is_err());
    }

    #[test]
    fn tampering_breaks_the_stored_hash() {
        let cap = flat_capture();
        let text = cap.render_text();
        // Delete one event line (not the header, not a comment).
        let mutated: String = text
            .lines()
            .filter(|l| !l.contains("preempt"))
            .map(|l| format!("{l}\n"))
            .collect();
        let back = TraceCapture::parse_text(&mutated).unwrap();
        assert_eq!(back.hash_matches(), Some(false));
    }

    #[test]
    fn truncation_updates_the_hash_and_keeps_prefix() {
        let cap = flat_capture();
        let cut = cap.truncated(3);
        assert_eq!(cut.len(), 3);
        assert_eq!(cut.hash_matches(), Some(true));
        assert_eq!(cut.events(), cap.events()[..3].to_vec());
        // Header provenance is preserved.
        assert_eq!(
            cut.header.as_ref().unwrap().spec_hash,
            cap.header.as_ref().unwrap().spec_hash
        );
    }

    #[test]
    fn incomplete_header_is_an_error() {
        let text = "# rtft trace v2\n# spec-hash 00ff\n0 idle\n";
        let err = TraceCapture::parse_text(text).unwrap_err();
        assert!(err.message.contains("incomplete capture header"));
    }

    #[test]
    fn mixed_bodies_are_rejected() {
        let err = TraceCapture::parse_text("0 idle\nc0 5 idle\n").unwrap_err();
        assert!(err.message.contains("mixed"));
        let err = TraceCapture::parse_text("c0 0 idle\n5 idle\n").unwrap_err();
        assert!(err.message.contains("mixed"));
    }

    #[test]
    fn out_of_order_streams_are_rejected() {
        let err = TraceCapture::parse_text("c0 5 idle\nc1 1 idle\n").unwrap_err();
        assert!(err.message.contains("out of order"));
    }

    #[test]
    fn json_parser_rejects_garbage() {
        for junk in ["", "{", "[1,", "{\"a\" 1}", "{} trailing", "nulll"] {
            assert!(TraceCapture::parse_json(junk).is_err(), "junk: {junk:?}");
        }
    }

    #[test]
    fn events_view_tags_flat_bodies_with_core_zero() {
        let cap = flat_capture();
        assert!(cap.events().iter().all(|e| e.core == 0));
        assert_eq!(cap.flat_log(), sample_log());
    }

    #[test]
    fn merged_core_logs_roundtrip_the_inputs() {
        let cap = merged_capture();
        let logs = cap.core_logs();
        assert_eq!(logs.len(), 2);
        assert_eq!(logs[0].0, 0);
        assert_eq!(logs[1].0, 1);
        assert_eq!(logs[0].1, sample_log());
    }
}
