//! Divergence minimization into the campaign repro-artifact format.
//!
//! A diverging replay is minimized the same way an oracle violation is:
//! a standalone one-job campaign spec (`# repro:` header, system lines,
//! treatment) that `rtft campaign` — and [`crate::job_from_campaign`] —
//! replays directly, paired with the capture truncated right after the
//! diverging event. Truncation only drops a suffix, so the divergence
//! index in the minimized capture is the index in the original.

use crate::divergence::Divergence;
use rtft_campaign::JobSpec;
use rtft_core::query::spec_hash;
use rtft_trace::TraceCapture;

/// A minimized divergence: a one-job campaign spec plus the shortest
/// prefix of the capture that still diverges at the same event index.
#[derive(Clone, PartialEq, Debug)]
pub struct Repro {
    /// One-job campaign spec text (parses via
    /// [`rtft_campaign::parse_spec`]).
    pub spec: String,
    /// The capture truncated to `divergence.index + 1` events.
    pub capture: TraceCapture,
}

/// Minimize `capture`'s divergence against `job`: keep the event prefix
/// up to and including the diverging event, and render the job as a
/// standalone repro spec.
///
/// The repro spec names a *new* system (`campaign repro-jobN` with
/// inline task lines), so the truncated capture's header is restamped
/// with that system's spec hash — the minimized pair is
/// self-consistent and replays without a hash override.
pub fn minimize(capture: &TraceCapture, job: &JobSpec, divergence: &Divergence) -> Repro {
    let spec = job.repro_spec();
    let mut capture = capture.truncated(divergence.index + 1);
    if let (Some(h), Ok(reparsed)) = (capture.header.as_mut(), crate::job_from_campaign(&spec)) {
        h.spec_hash = spec_hash(&reparsed.system_spec());
    }
    Repro { spec, capture }
}
