//! The event-stepping divergence checker.
//!
//! A saved trace is replayed event by event against the resolved
//! [`ReplayBounds`]; the first event the analysis plane cannot accept
//! is reported with its index in the capture stream. Three divergence
//! faces exist:
//!
//! * **missed threshold** — a job completed past a line the detectors
//!   guaranteed to police (the certified response bound when the fault
//!   plan is within the admitted allowance, or the quantized detection
//!   line with no preceding `fault` event);
//! * **uncertified stop** — a `stop` event under a treatment that never
//!   stops, or earlier than the detection threshold permits (stops can
//!   only be *delayed* by quantization and allowance grants, never
//!   hastened);
//! * **order mismatch** — an execution event for a job the trace never
//!   released, a duplicate completion, or activity after a stop.
//!
//! The checks are deliberately one-sided where the platform models
//! leave slack: a completion *between* the exact threshold and the
//! quantized detector fire legitimately carries no `fault` event
//! (Figure 5's τ2 ends at 1059 ms, response 59 ms > WCRT 58 ms, one
//! millisecond before its detector's 1060 ms grid slot), so the
//! detection-line check uses the quantized line, and the stop check is
//! a lower bound only (Figure 5's stop latency is 30 ms against a
//! 29 ms WCRT for the same reason). The Figure 3–7 golden traces —
//! including the out-of-allowance 40 ms injection — replay clean;
//! divergences mean the trace and the spec disagree.

use crate::bounds::{resolve_bounds, Certification, ReplayBounds};
use crate::ReplayError;
use rtft_campaign::JobSpec;
use rtft_core::task::TaskId;
use rtft_core::time::{Duration, Instant};
use rtft_ft::verdict::Verdict;
use rtft_trace::{EventKind, TraceCapture, TraceLog};
use std::collections::BTreeMap;

/// Why an event diverged from the analysis plane.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DivergenceKind {
    /// A completion responded past a policed line.
    MissedThreshold {
        /// Offending task.
        task: TaskId,
        /// Offending job.
        job: u64,
        /// Observed response time.
        response: Duration,
        /// The line it crossed (certified bound, or the quantized
        /// detection line relative to release).
        bound: Duration,
        /// `true` when the crossed line is the oracle's certified
        /// response bound; `false` for an unpoliced detection line.
        certified: bool,
    },
    /// A stop the treatment could not have issued.
    UncertifiedStop {
        /// Stopped task.
        task: TaskId,
        /// Stopped job.
        job: u64,
        /// Observed stop latency past the release.
        latency: Duration,
        /// The detection threshold stops must respect (`None` when the
        /// treatment never stops at all).
        threshold: Option<Duration>,
    },
    /// The event stream itself is inconsistent.
    OrderMismatch {
        /// What went wrong, human-readable.
        detail: String,
    },
}

impl std::fmt::Display for DivergenceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DivergenceKind::MissedThreshold {
                task,
                job,
                response,
                bound,
                certified,
            } => write!(
                f,
                "{task:?} job {job} responded in {response} past the {} {bound}",
                if *certified {
                    "certified bound"
                } else {
                    "unpoliced detection line"
                }
            ),
            DivergenceKind::UncertifiedStop {
                task,
                job,
                latency,
                threshold,
            } => match threshold {
                Some(t) => write!(
                    f,
                    "{task:?} job {job} stopped {latency} after release, before its {t} threshold"
                ),
                None => write!(
                    f,
                    "{task:?} job {job} stopped {latency} after release under a non-stopping \
                     treatment"
                ),
            },
            DivergenceKind::OrderMismatch { detail } => f.write_str(detail),
        }
    }
}

/// The first point a capture and the analysis plane disagree.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Divergence {
    /// Index of the offending event in the capture's merged stream
    /// (what [`TraceCapture::events`] yields).
    pub index: usize,
    /// Its timestamp.
    pub at: Instant,
    /// What diverged.
    pub kind: DivergenceKind,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "event {} (t = {}): {}", self.index, self.at, self.kind)
    }
}

/// Everything a replay produced.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReplayReport {
    /// Events stepped (the full stream, even past a divergence).
    pub events: usize,
    /// Completions compared against a bound or detection line.
    pub checked: usize,
    /// First divergence, when any.
    pub divergence: Option<Divergence>,
    /// Verdict reconstructed from the capture — for a clean replay of a
    /// faithful trace this is byte-identical (via `Display`) to the
    /// verdict the original run produced.
    pub verdict: Verdict,
    /// Whether completions were held to a certified bound.
    pub certification: Certification,
}

impl ReplayReport {
    /// `true` iff no divergence was found.
    pub fn is_clean(&self) -> bool {
        self.divergence.is_none()
    }
}

#[derive(Default)]
struct JobState {
    released_at: Option<Instant>,
    ended: bool,
    stopped: bool,
    detected: bool,
}

/// Replay `capture` against the analysis of `job`: resolve the bounds,
/// then step every event to the first divergence.
///
/// # Errors
/// [`ReplayError::Analysis`] when the job's analysis fails (see
/// [`resolve_bounds`]).
pub fn replay(capture: &TraceCapture, job: &JobSpec) -> Result<ReplayReport, ReplayError> {
    let bounds = resolve_bounds(job)?;
    Ok(replay_with(capture, job, &bounds))
}

/// [`replay`] against bounds the caller already resolved — the hot path
/// for replaying many captures of one spec (benchmarks, campaign
/// digests).
pub fn replay_with(capture: &TraceCapture, job: &JobSpec, bounds: &ReplayBounds) -> ReplayReport {
    let events = capture.events();
    let mut state: BTreeMap<(TaskId, u64), JobState> = BTreeMap::new();
    let mut divergence: Option<Divergence> = None;
    let mut checked = 0usize;

    // Simultaneous events have no defined interleaving across cores: a
    // merged capture renders the platform bucket's `release` *after* a
    // worker core's same-instant `start`. Each instant is therefore
    // stepped in phases — releases first, observer events (detector,
    // fault, allowance) second, execution events last — while
    // divergence indices keep pointing into the rendered stream.
    let mut group = 0;
    while group < events.len() {
        let at = events[group].event.at;
        let mut end = group;
        while end < events.len() && events[end].event.at == at {
            end += 1;
        }
        for phase in 0..3u8 {
            for (index, ce) in events.iter().enumerate().take(end).skip(group) {
                if step_phase(ce.event.kind) != phase {
                    continue;
                }
                let verdict = step_event(&mut state, bounds, ce.event.kind, at, &mut checked);
                if divergence.is_none() {
                    if let Some(kind) = verdict {
                        divergence = Some(Divergence { index, at, kind });
                    }
                }
            }
        }
        group = end;
    }

    let log: TraceLog = events.iter().map(|ce| ce.event).collect();
    ReplayReport {
        events: events.len(),
        checked,
        divergence,
        verdict: Verdict::from_log(&job.set, &log),
        certification: bounds.certification.clone(),
    }
}

/// Within one instant, the phase an event steps in: `release` lands
/// before the observers, which land before execution events.
fn step_phase(kind: EventKind) -> u8 {
    match kind {
        EventKind::JobRelease { .. } => 0,
        EventKind::DetectorRelease { .. }
        | EventKind::FaultDetected { .. }
        | EventKind::AllowanceGranted { .. } => 1,
        _ => 2,
    }
}

/// Step one event against the job-state machine, returning the
/// divergence it provokes (if any).
fn step_event(
    state: &mut BTreeMap<(TaskId, u64), JobState>,
    bounds: &ReplayBounds,
    kind: EventKind,
    at: rtft_core::time::Instant,
    checked: &mut usize,
) -> Option<DivergenceKind> {
    match kind {
        EventKind::JobRelease { task, job: j } => {
            let slot = state.entry((task, j)).or_default();
            if slot.released_at.is_some() {
                Some(DivergenceKind::OrderMismatch {
                    detail: format!("{task:?} job {j} released twice"),
                })
            } else {
                slot.released_at = Some(at);
                None
            }
        }
        EventKind::JobStart { task, job: j }
        | EventKind::Resumed { task, job: j }
        | EventKind::Preempted { task, job: j, .. } => {
            let tag = kind.tag();
            match state.get(&(task, j)) {
                None => Some(DivergenceKind::OrderMismatch {
                    detail: format!("`{tag}` for unreleased {task:?} job {j}"),
                }),
                Some(s) if s.ended => Some(DivergenceKind::OrderMismatch {
                    detail: format!("`{tag}` after {task:?} job {j} already ended"),
                }),
                Some(s) if s.stopped => Some(DivergenceKind::OrderMismatch {
                    detail: format!("`{tag}` after {task:?} job {j} was stopped"),
                }),
                Some(_) => None,
            }
        }
        EventKind::JobEnd { task, job: j } => match state.get_mut(&(task, j)) {
            None => Some(DivergenceKind::OrderMismatch {
                detail: format!("`end` for unreleased {task:?} job {j}"),
            }),
            Some(s) if s.ended => Some(DivergenceKind::OrderMismatch {
                detail: format!("{task:?} job {j} ended twice"),
            }),
            Some(s) if s.stopped => Some(DivergenceKind::OrderMismatch {
                detail: format!("`end` after {task:?} job {j} was stopped"),
            }),
            Some(s) => {
                let released = s.released_at.expect("released jobs carry their instant");
                let detected = s.detected;
                s.ended = true;
                *checked += 1;
                let response = at - released;
                check_completion(bounds, task, j, response, detected)
            }
        },
        EventKind::TaskStopped { task, job: j } => match state.get_mut(&(task, j)) {
            None => Some(DivergenceKind::OrderMismatch {
                detail: format!("`stop` for unreleased {task:?} job {j}"),
            }),
            Some(s) if s.ended => Some(DivergenceKind::OrderMismatch {
                detail: format!("`stop` after {task:?} job {j} already ended"),
            }),
            Some(s) if s.stopped => Some(DivergenceKind::OrderMismatch {
                detail: format!("{task:?} job {j} stopped twice"),
            }),
            Some(s) => {
                let released = s.released_at.expect("released jobs carry their instant");
                s.stopped = true;
                let latency = at - released;
                let threshold = bounds.of(task).and_then(|b| b.threshold);
                if !bounds.stops {
                    Some(DivergenceKind::UncertifiedStop {
                        task,
                        job: j,
                        latency,
                        threshold: None,
                    })
                } else {
                    match threshold {
                        // Stops fire at the (quantized, allowance-
                        // extended) detection line — never before
                        // the exact threshold.
                        Some(t) if latency < t => Some(DivergenceKind::UncertifiedStop {
                            task,
                            job: j,
                            latency,
                            threshold: Some(t),
                        }),
                        _ => None,
                    }
                }
            }
        },
        EventKind::FaultDetected { task, job: j } => {
            if let Some(s) = state.get_mut(&(task, j)) {
                s.detected = true;
            }
            None
        }
        // Detector fires, allowance grants, deadline misses and
        // platform events carry no obligation of their own: a miss
        // in an out-of-allowance run is the specified behaviour
        // (Figure 3), and detectors keep polling stopped tasks.
        EventKind::DetectorRelease { .. }
        | EventKind::AllowanceGranted { .. }
        | EventKind::DeadlineMiss { .. }
        | EventKind::CpuIdle
        | EventKind::SimEnd => None,
    }
}

/// The two completion checks: the oracle's certified bound (when the
/// fault plan is admitted), then the quantized detection line (a late
/// completion with no preceding `fault` event means the detectors the
/// spec prescribes were not running).
fn check_completion(
    bounds: &ReplayBounds,
    task: TaskId,
    job: u64,
    response: Duration,
    detected: bool,
) -> Option<DivergenceKind> {
    let b = bounds.of(task)?;
    if let Some(bound) = b.certified {
        if response > bound {
            return Some(DivergenceKind::MissedThreshold {
                task,
                job,
                response,
                bound,
                certified: true,
            });
        }
    }
    if let Some(threshold) = b.threshold {
        let line = threshold + b.detect_delay;
        if response > line && !detected {
            return Some(DivergenceKind::MissedThreshold {
                task,
                job,
                response,
                bound: line,
                certified: false,
            });
        }
    }
    None
}
