//! # rtft-replay — trace-driven replay against the analysis plane
//!
//! A saved [`TraceCapture`] is evidence of
//! what a run *did*; the analyzer's thresholds are a contract for what
//! any run *may* do. This crate steps a capture event-by-event against
//! that contract — the same `policy_thresholds()` recipe the campaign
//! oracle certifies jobs with — and reports the **first divergence**:
//!
//! * a *missed threshold* (a completion past the certified response
//!   bound, or past the quantized detection line with no `fault` event
//!   preceding it),
//! * an *uncertified stop* (a `stop` event the treatment could not have
//!   issued, or one earlier than its detection threshold permits),
//! * an *order mismatch* (execution events for jobs the trace never
//!   released, duplicate completions, activity after a stop).
//!
//! A divergence is [minimized](repro::minimize) to the campaign's
//! repro-artifact format: a standalone one-job spec plus the capture
//! truncated right after the diverging event, so `rtft replay` on the
//! minimized pair diverges at the same index. The Figure 3–7 golden
//! traces replay clean against the paper system and reproduce their
//! verdicts byte-identically — divergence means the trace and the spec
//! genuinely disagree.
//!
//! ```
//! use rtft_replay::{job_from_campaign, replay};
//! use rtft_trace::TraceCapture;
//!
//! let job = job_from_campaign(
//!     "campaign demo\n\
//!      horizon 1300ms\n\
//!      taskgen paper\n\
//!      faults paper\n\
//!      treatment detect\n\
//!      platform jrate\n",
//! )
//! .unwrap();
//! let outcome = rtft_ft::harness::run_scenario(&job.scenario()).unwrap();
//! let capture = TraceCapture::flat(0, "fp", "detect", outcome.log.clone());
//! let report = replay(&capture, &job).unwrap();
//! assert!(report.is_clean());
//! assert_eq!(report.verdict.to_string(), outcome.verdict.to_string());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bounds;
pub mod divergence;
pub mod repro;

pub use bounds::{resolve_bounds, Certification, ReplayBounds, TaskBounds};
pub use divergence::{replay, replay_with, Divergence, DivergenceKind, ReplayReport};
pub use repro::{minimize, Repro};

use rtft_campaign::{parse_spec, JobSpec, PlatformSpec};
use rtft_core::query::{spec_hash, SystemSpec};
use rtft_core::time::Instant;
use rtft_ft::treatment::Treatment;
use rtft_sim::fault::FaultPlan;
use rtft_trace::TraceCapture;
use std::sync::Arc;

/// What went wrong while setting a replay up.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ReplayError {
    /// The spec side is unusable (parse error, not exactly one job).
    Spec(String),
    /// The analysis plane rejected the job (infeasible base system, no
    /// admitted allowance to certify against).
    Analysis(String),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Spec(m) => write!(f, "replay spec error: {m}"),
            ReplayError::Analysis(m) => write!(f, "replay analysis error: {m}"),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Parse a campaign spec that expands to **exactly one job** — the
/// repro-artifact contract — and return that job.
///
/// # Errors
/// [`ReplayError::Spec`] when the text does not parse or expands to
/// zero or several jobs (a grid, not a repro).
pub fn job_from_campaign(text: &str) -> Result<JobSpec, ReplayError> {
    let spec = parse_spec(text).map_err(|e| ReplayError::Spec(e.to_string()))?;
    let jobs = spec
        .expand()
        .map_err(|e| ReplayError::Spec(e.to_string()))?;
    match jobs.len() {
        1 => Ok(jobs.into_iter().next().expect("len checked")),
        n => Err(ReplayError::Spec(format!(
            "replay needs a one-job spec, but `{}` expands to {n} jobs",
            spec.name
        ))),
    }
}

/// Lift a query-plane [`SystemSpec`] (an `.rtft` batch header) into a
/// replayable job under `treatment`, simulated to `horizon`.
pub fn job_from_system(spec: &SystemSpec, treatment: Treatment, horizon: Instant) -> JobSpec {
    let mut faults = FaultPlan::none();
    for entry in &spec.faults {
        if entry.delta.is_positive() {
            faults = faults.overrun(entry.task, entry.job, entry.delta);
        } else if entry.delta.is_negative() {
            faults = faults.underrun(entry.task, entry.job, entry.delta.abs());
        }
    }
    JobSpec {
        index: 0,
        set_ordinal: 0,
        set_label: spec.name.clone(),
        set: Arc::new(spec.set.clone()),
        policy: spec.policy,
        cores: spec.cores,
        placement: spec.placement,
        alloc: spec.alloc,
        fault_label: "explicit".to_string(),
        faults,
        treatment,
        platform: PlatformSpec::from_model(&spec.platform),
        horizon,
    }
}

/// Does the capture's header claim it was recorded from `job`'s system?
/// Compares the header's spec hash against
/// [`spec_hash`]`(&job.system_spec())`. `None` when the capture is
/// headerless (a legacy v1 trace) — the caller decides whether to
/// trust it.
pub fn spec_matches(capture: &TraceCapture, job: &JobSpec) -> Option<bool> {
    capture
        .header
        .as_ref()
        .map(|h| h.spec_hash == spec_hash(&job.system_spec()))
}
