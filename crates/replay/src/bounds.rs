//! Resolving the thresholds a trace must respect.
//!
//! Replay asks the analysis plane the same questions the execution
//! stack asked before the run: the detector thresholds the treatment
//! prescribed (the harness recipe) and the certified response bound the
//! differential oracle would check completions against (the
//! `rtft_campaign::oracle` recipe, including its out-of-allowance
//! skip). Both are resolved **per task**, so the stepping checker never
//! cares which placement produced an event — a partitioned job simply
//! resolves each core's subset through its own session, exactly as the
//! multicore runner built one session per core.

use crate::ReplayError;
use rtft_campaign::oracle::max_overrun;
use rtft_campaign::JobSpec;
use rtft_core::analyzer::Analyzer;
use rtft_core::policy::PolicyKind;
use rtft_core::query::Placement;
use rtft_core::task::{TaskId, TaskSet};
use rtft_core::time::Duration;
use rtft_ft::treatment::Treatment;
use rtft_sim::fault::FaultPlan;
use rtft_sim::timer::TimerModel;
use std::collections::BTreeMap;

/// Whether completions can be held to a certified response bound — the
/// oracle's applicability verdict, mirrored.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Certification {
    /// Every completion must respond within the Δmax-inflated bound.
    Certified {
        /// The inflation the bounds were computed at.
        dmax: Duration,
    },
    /// No certified bound applies (fault plan out of allowance, or the
    /// inflated analysis failed); only the detection-line checks run.
    Uncertified {
        /// Largest injected overrun.
        dmax: Duration,
        /// Why certification was declined.
        reason: String,
    },
    /// The platform charges overheads the analysis does not model.
    Overheads,
}

impl Certification {
    /// `true` iff completions are checked against a certified bound.
    pub fn is_certified(&self) -> bool {
        matches!(self, Certification::Certified { .. })
    }
}

impl std::fmt::Display for Certification {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Certification::Certified { dmax } => {
                write!(f, "certified at Δmax = {dmax}")
            }
            Certification::Uncertified { dmax, reason } => {
                write!(f, "uncertified (Δmax = {dmax}: {reason})")
            }
            Certification::Overheads => write!(f, "uncertified (charged overheads)"),
        }
    }
}

/// What one task's events are held to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TaskBounds {
    /// Detection threshold the treatment configured (`None` under
    /// [`Treatment::NoDetection`]).
    pub threshold: Option<Duration>,
    /// Quantization delay of this task's detector line: its first fire
    /// is rounded up to the platform's timer grid, subsequent fires
    /// step exactly, so every job's detection instant is
    /// `release + threshold + detect_delay`.
    pub detect_delay: Duration,
    /// Certified response bound for completed jobs, when certification
    /// applies to this task's core.
    pub certified: Option<Duration>,
}

/// Per-task bounds plus the job-wide certification verdict.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReplayBounds {
    /// Bounds of every task of the set.
    pub per_task: BTreeMap<TaskId, TaskBounds>,
    /// Job-wide certification face (the worst core's, under
    /// partitioned placement).
    pub certification: Certification,
    /// `true` iff the treatment is allowed to stop faulty tasks — a
    /// `stop` event in a trace of a non-stopping treatment is always a
    /// divergence.
    pub stops: bool,
}

impl ReplayBounds {
    /// Bounds of one task (`None` for tasks outside the job's set).
    pub fn of(&self, task: TaskId) -> Option<&TaskBounds> {
        self.per_task.get(&task)
    }
}

/// Resolve the bounds a trace of `job` must respect, per placement:
/// one uniprocessor session for 1-core jobs, one session per occupied
/// core under partitioned placement (with each core's own fault slice
/// deciding its certification), the global sufficient test under
/// global placement.
///
/// # Errors
/// [`ReplayError::Analysis`] when the base system is infeasible (an
/// infeasible system never ran, so no honest trace of it exists), the
/// allocator finds no partition, or an analysis query fails.
pub fn resolve_bounds(job: &JobSpec) -> Result<ReplayBounds, ReplayError> {
    let overheads_free = job.platform.overheads.is_free();
    let timer = job.platform.timer;
    let stops = job.treatment.stops_faulty_tasks();

    if job.cores <= 1 {
        let dmax = max_overrun(&job.faults);
        let (per_task, certification) = set_bounds(
            &job.set,
            job.policy,
            job.treatment,
            timer,
            dmax,
            overheads_free,
        )?;
        return Ok(ReplayBounds {
            per_task,
            certification,
            stops,
        });
    }

    match job.placement {
        Placement::Global => global_bounds(job, overheads_free, timer, stops),
        Placement::Partitioned => partitioned_bounds(job, overheads_free, timer, stops),
    }
}

/// The uniprocessor recipe over one (sub)set — also each partitioned
/// core's recipe, with the core's own Δmax.
fn set_bounds(
    set: &TaskSet,
    policy: PolicyKind,
    treatment: Treatment,
    timer: TimerModel,
    dmax: Duration,
    overheads_free: bool,
) -> Result<(BTreeMap<TaskId, TaskBounds>, Certification), ReplayError> {
    let analysis = |e: &dyn std::fmt::Display| ReplayError::Analysis(e.to_string());
    let mut session = Analyzer::for_policy(set, policy);
    match session.is_feasible() {
        Ok(true) => {}
        Ok(false) => {
            return Err(ReplayError::Analysis(
                "base system is not feasible — it cannot have produced a trace".into(),
            ))
        }
        Err(e) => return Err(analysis(&e)),
    }
    let wcrt = session.policy_thresholds().map_err(|e| analysis(&e))?;

    // The detection thresholds the treatment configured — the harness
    // recipe, verbatim.
    let thresholds: Option<Vec<Duration>> = match treatment {
        Treatment::NoDetection => None,
        Treatment::DetectOnly
        | Treatment::ImmediateStop { .. }
        | Treatment::SystemAllowance { .. } => Some(wcrt.clone()),
        Treatment::EquitableAllowance { .. } => Some(
            session
                .equitable_allowance()
                .map_err(|e| analysis(&e))?
                .ok_or_else(|| {
                    ReplayError::Analysis("the set admits no equitable allowance".into())
                })?
                .inflated_wcrt,
        ),
    };

    // The certified response bound — the differential oracle's recipe,
    // including its out-of-allowance skip.
    let (certified, certification): (Option<Vec<Duration>>, Certification) = if !overheads_free {
        (None, Certification::Overheads)
    } else if dmax.is_zero() {
        (Some(wcrt.clone()), Certification::Certified { dmax })
    } else {
        match session.equitable_allowance() {
            Ok(Some(eq)) if dmax <= eq.allowance => {
                if policy == PolicyKind::Edf {
                    // Deadlines do not move under inflation.
                    (Some(wcrt.clone()), Certification::Certified { dmax })
                } else {
                    session.inflate_all(dmax);
                    let inflated = session.policy_thresholds();
                    session.reset_costs();
                    match inflated {
                        Ok(w) => (Some(w), Certification::Certified { dmax }),
                        Err(e) => (
                            None,
                            Certification::Uncertified {
                                dmax,
                                reason: e.to_string(),
                            },
                        ),
                    }
                }
            }
            Ok(_) => (
                None,
                Certification::Uncertified {
                    dmax,
                    reason: "fault plan exceeds the admitted allowance".into(),
                },
            ),
            Err(e) => (
                None,
                Certification::Uncertified {
                    dmax,
                    reason: e.to_string(),
                },
            ),
        }
    };

    let per_task = (0..set.len())
        .map(|rank| {
            let spec = set.by_rank(rank);
            let threshold = thresholds.as_ref().map(|t| t[rank]);
            (
                spec.id,
                TaskBounds {
                    threshold,
                    detect_delay: threshold
                        .map(|t| timer.delay(spec.offset + t))
                        .unwrap_or(Duration::ZERO),
                    certified: certified.as_ref().map(|c| c[rank]),
                },
            )
        })
        .collect();
    Ok((per_task, certification))
}

fn partitioned_bounds(
    job: &JobSpec,
    overheads_free: bool,
    timer: TimerModel,
    stops: bool,
) -> Result<ReplayBounds, ReplayError> {
    let partition = rtft_part::alloc::allocate(&job.set, job.cores, job.policy, job.alloc)
        .map_err(|e| ReplayError::Analysis(e.to_string()))?;
    let mut per_task = BTreeMap::new();
    let mut certification: Option<Certification> = None;
    let dmax_all = max_overrun(&job.faults);
    for core in partition.occupied_cores() {
        let subset = partition.core_set(core).expect("occupied core");
        let dmax_core = core_dmax(&job.faults, &partition, core);
        let (rows, cert) = set_bounds(
            subset,
            job.policy,
            job.treatment,
            timer,
            dmax_core,
            overheads_free,
        )?;
        per_task.extend(rows);
        certification = Some(match (certification.take(), cert) {
            (None, c) => c,
            // The job-wide face is the worst core's, reported at the
            // job-wide Δmax.
            (Some(Certification::Overheads), _) | (_, Certification::Overheads) => {
                Certification::Overheads
            }
            (Some(Certification::Uncertified { reason, .. }), _)
            | (_, Certification::Uncertified { reason, .. }) => Certification::Uncertified {
                dmax: dmax_all,
                reason,
            },
            (Some(Certification::Certified { .. }), Certification::Certified { .. }) => {
                Certification::Certified { dmax: dmax_all }
            }
        });
    }
    Ok(ReplayBounds {
        per_task,
        certification: certification.unwrap_or(Certification::Certified {
            dmax: Duration::ZERO,
        }),
        stops,
    })
}

/// Largest positive delta injected into tasks placed on `core`.
fn core_dmax(faults: &FaultPlan, partition: &rtft_part::Partition, core: usize) -> Duration {
    faults
        .entries()
        .filter(|(task, _, delta)| delta.is_positive() && partition.core_of(*task) == Some(core))
        .map(|(_, _, delta)| delta)
        .max()
        .unwrap_or(Duration::ZERO)
}

fn global_bounds(
    job: &JobSpec,
    overheads_free: bool,
    timer: TimerModel,
    stops: bool,
) -> Result<ReplayBounds, ReplayError> {
    let mut session = rtft_global::GlobalAnalyzer::new((*job.set).clone(), job.cores, job.policy);
    if !session.is_feasible() {
        return Err(ReplayError::Analysis(
            "the global sufficient test cannot prove the base system — it never ran".into(),
        ));
    }
    let wcrt = session.stop_thresholds_at(Duration::ZERO);
    let thresholds: Option<Vec<Duration>> = match job.treatment {
        Treatment::NoDetection => None,
        Treatment::DetectOnly
        | Treatment::ImmediateStop { .. }
        | Treatment::SystemAllowance { .. } => Some(wcrt.clone()),
        Treatment::EquitableAllowance { .. } => {
            let eq = session.equitable_allowance().ok_or_else(|| {
                ReplayError::Analysis("the set admits no global equitable allowance".into())
            })?;
            Some(session.stop_thresholds_at(eq))
        }
    };
    let dmax = max_overrun(&job.faults);
    let (certified, certification): (Option<Vec<Duration>>, Certification) = if !overheads_free {
        (None, Certification::Overheads)
    } else if dmax.is_zero() {
        (Some(wcrt.clone()), Certification::Certified { dmax })
    } else {
        match session.equitable_allowance() {
            Some(a) if dmax <= a => (
                Some(session.stop_thresholds_at(dmax)),
                Certification::Certified { dmax },
            ),
            _ => (
                None,
                Certification::Uncertified {
                    dmax,
                    reason: "fault plan exceeds the admitted allowance".into(),
                },
            ),
        }
    };
    let per_task = (0..job.set.len())
        .map(|rank| {
            let spec = job.set.by_rank(rank);
            let threshold = thresholds.as_ref().map(|t| t[rank]);
            (
                spec.id,
                TaskBounds {
                    threshold,
                    detect_delay: threshold
                        .map(|t| timer.delay(spec.offset + t))
                        .unwrap_or(Duration::ZERO),
                    certified: certified.as_ref().map(|c| c[rank]),
                },
            )
        })
        .collect();
    Ok(ReplayBounds {
        per_task,
        certification,
        stops,
    })
}
