//! Synthetic captures exercising each divergence face in isolation.

use rtft_campaign::JobSpec;
use rtft_core::task::TaskId;
use rtft_core::time::Instant;
use rtft_replay::{
    job_from_campaign, job_from_system, replay, spec_matches, DivergenceKind, ReplayError,
};
use rtft_trace::{EventKind, TraceCapture, TraceEvent, TraceLog};

/// A one-task job (WCRT = 10 ms, exact platform) under `treatment`.
fn one_task_job(treatment: &str) -> JobSpec {
    job_from_campaign(&format!(
        "campaign synth\n\
         horizon 500ms\n\
         task t1 10 100ms 100ms 10ms\n\
         treatment {treatment}\n\
         platform exact\n"
    ))
    .expect("synthetic spec is one job")
}

fn capture_of(events: &[(i64, EventKind)]) -> TraceCapture {
    let log: TraceLog = events
        .iter()
        .map(|&(ms, kind)| TraceEvent {
            at: Instant::from_millis(ms),
            kind,
        })
        .collect();
    TraceCapture::flat(0, "fp", "synth", log)
}

const T1: TaskId = TaskId(1);

fn release(job: u64) -> EventKind {
    EventKind::JobRelease { task: T1, job }
}
fn start(job: u64) -> EventKind {
    EventKind::JobStart { task: T1, job }
}
fn end(job: u64) -> EventKind {
    EventKind::JobEnd { task: T1, job }
}
fn stop(job: u64) -> EventKind {
    EventKind::TaskStopped { task: T1, job }
}

fn first_divergence(job: &JobSpec, events: &[(i64, EventKind)]) -> Option<(usize, DivergenceKind)> {
    replay(&capture_of(events), job)
        .expect("synthetic job analyses")
        .divergence
        .map(|d| (d.index, d.kind))
}

#[test]
fn stop_under_a_non_stopping_treatment_is_uncertified() {
    let job = one_task_job("detect");
    let (index, kind) =
        first_divergence(&job, &[(0, release(0)), (0, start(0)), (20, stop(0))]).unwrap();
    assert_eq!(index, 2);
    assert!(
        matches!(
            kind,
            DivergenceKind::UncertifiedStop {
                threshold: None,
                ..
            }
        ),
        "got {kind}"
    );
}

#[test]
fn stop_before_the_detection_threshold_is_uncertified() {
    let job = one_task_job("stop");
    // WCRT (= threshold) is 10 ms; a stop 5 ms after release is earlier
    // than any detector could have fired.
    let (index, kind) =
        first_divergence(&job, &[(0, release(0)), (0, start(0)), (5, stop(0))]).unwrap();
    assert_eq!(index, 2);
    match kind {
        DivergenceKind::UncertifiedStop {
            latency,
            threshold: Some(t),
            ..
        } => assert!(latency < t),
        other => panic!("expected an early stop, got {other}"),
    }
    // At the threshold the stop is legitimate (quantization and
    // allowance can only delay it further).
    assert_eq!(
        first_divergence(&job, &[(0, release(0)), (0, start(0)), (10, stop(0))]),
        None
    );
}

#[test]
fn order_mismatches_flag_the_offending_event() {
    let job = one_task_job("stop");
    for (label, events) in [
        ("end without release", vec![(0, end(0))]),
        ("duplicate release", vec![(0, release(0)), (0, release(0))]),
        (
            "duplicate end",
            vec![(0, release(0)), (0, start(0)), (5, end(0)), (5, end(0))],
        ),
        (
            "start after stop",
            vec![
                (0, release(0)),
                (0, start(0)),
                (10, stop(0)),
                (12, start(0)),
            ],
        ),
        (
            "end after stop",
            vec![(0, release(0)), (0, start(0)), (10, stop(0)), (12, end(0))],
        ),
        (
            "stop after end",
            vec![(0, release(0)), (0, start(0)), (5, end(0)), (10, stop(0))],
        ),
        (
            "start for unreleased job",
            vec![(0, release(0)), (0, start(1))],
        ),
    ] {
        let (index, kind) = first_divergence(&job, &events)
            .unwrap_or_else(|| panic!("{label}: expected a divergence"));
        assert_eq!(index, events.len() - 1, "{label}: wrong event flagged");
        assert!(
            matches!(kind, DivergenceKind::OrderMismatch { .. }),
            "{label}: got {kind}"
        );
    }
}

#[test]
fn a_well_formed_completion_within_bounds_is_clean() {
    let job = one_task_job("stop");
    let report = replay(
        &capture_of(&[(0, release(0)), (0, start(0)), (10, end(0))]),
        &job,
    )
    .unwrap();
    assert!(report.is_clean());
    assert_eq!(report.checked, 1);
    assert_eq!(report.events, 3);
}

#[test]
fn multi_job_specs_are_rejected() {
    let err = job_from_campaign("taskgen paper\ntreatment all\n").unwrap_err();
    assert!(
        matches!(&err, ReplayError::Spec(m) if m.contains("expands to 5 jobs")),
        "got {err}"
    );
}

#[test]
fn spec_matches_compares_header_hashes() {
    let job = one_task_job("detect");
    let hash = rtft_core::query::spec_hash(&job.system_spec());
    let log: TraceLog = TraceLog::new();
    let good = TraceCapture::flat(hash, "fp", "detect", log.clone());
    let bad = TraceCapture::flat(hash ^ 1, "fp", "detect", log.clone());
    let headerless = TraceCapture {
        header: None,
        ..good.clone()
    };
    assert_eq!(spec_matches(&good, &job), Some(true));
    assert_eq!(spec_matches(&bad, &job), Some(false));
    assert_eq!(spec_matches(&headerless, &job), None);
    // Lifting the job's own SystemSpec back into a job preserves the
    // hash identity.
    let lifted = job_from_system(&job.system_spec(), job.treatment, job.horizon);
    assert_eq!(spec_matches(&good, &lifted), Some(true));
}
