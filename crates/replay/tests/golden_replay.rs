//! Replay of the pinned Figure 3–7 golden traces.
//!
//! The acceptance bar for the replay subsystem: each golden trace,
//! replayed against the paper job that produced it, reports **zero
//! divergences** and reproduces the original verdict byte-identically —
//! including Figures 3 and 4, whose out-of-allowance 40 ms injection
//! produces deadline misses that are *specified* behaviour, not
//! divergence. A tampered trace (detection events deleted) must
//! diverge, and its minimized repro must diverge at the same index.

use rtft_campaign::JobSpec;
use rtft_core::task::TaskId;
use rtft_ft::harness::run_scenario;
use rtft_replay::{job_from_campaign, minimize, replay, Certification, DivergenceKind};
use rtft_trace::TraceCapture;
use std::path::PathBuf;

/// The five paper-lineup jobs in figure order (fig3 = no detection …
/// fig7 = system allowance), exactly as `rtft campaign` expands them.
fn lineup_jobs() -> Vec<JobSpec> {
    let spec = rtft_campaign::parse_spec(
        "campaign figs\n\
         horizon 1300ms\n\
         taskgen paper\n\
         faults paper\n\
         treatment all\n\
         platform jrate\n",
    )
    .expect("lineup spec parses");
    let jobs = spec.expand().expect("lineup spec expands");
    assert_eq!(jobs.len(), 5, "one job per lineup treatment");
    jobs
}

fn golden_text(fig: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../ft/tests/golden")
        .join(format!("{fig}.trace"));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden trace {} ({e})", path.display()))
}

#[test]
fn golden_figures_replay_clean_and_reproduce_verdicts() {
    let figures = ["fig3", "fig4", "fig5", "fig6", "fig7"];
    for (job, fig) in lineup_jobs().iter().zip(figures) {
        let capture = TraceCapture::parse_text(&golden_text(fig))
            .unwrap_or_else(|e| panic!("{fig}: golden trace must import: {e}"));
        assert!(capture.header.is_none(), "{fig}: goldens are legacy v1");
        let report = replay(&capture, job).unwrap_or_else(|e| panic!("{fig}: {e}"));
        assert!(
            report.is_clean(),
            "{fig}: golden trace diverged: {}",
            report.divergence.unwrap()
        );
        assert!(report.checked > 0, "{fig}: no completions were checked");
        // Byte-identical verdict reproduction against a fresh run.
        let outcome = run_scenario(&job.scenario()).expect("paper system runs");
        assert_eq!(
            report.verdict.to_string(),
            outcome.verdict.to_string(),
            "{fig}: replayed verdict drifted from the live run"
        );
        // The 40 ms injection exceeds the 11 ms equitable allowance, so
        // no figure's completions are certified — the misses of Figures
        // 3/4 are specified behaviour.
        assert!(
            !report.certification.is_certified(),
            "{fig}: out-of-allowance fault plan cannot certify"
        );
    }
}

#[test]
fn tampered_detection_trace_diverges_and_minimizes_to_the_same_index() {
    // Delete the three `fault` (detection) events from the detect-only
    // figure: the late completions are now unexplained, so the first
    // late end — τ1 job 5 at t = 1069 ms — must flag a missed
    // (unpoliced) detection line.
    let tampered: String = golden_text("fig4")
        .lines()
        .filter(|l| l.split_ascii_whitespace().nth(1) != Some("fault"))
        .map(|l| format!("{l}\n"))
        .collect();
    let capture = TraceCapture::parse_text(&tampered).expect("tampered trace still parses");
    let job = &lineup_jobs()[1]; // fig4 = detect-only
    let report = replay(&capture, job).expect("analysis succeeds");
    let d = report.divergence.expect("deleting detections must diverge");
    match d.kind {
        DivergenceKind::MissedThreshold {
            task,
            job: j,
            certified,
            ..
        } => {
            assert_eq!((task, j), (TaskId(1), 5), "first unexplained late end");
            assert!(!certified, "out-of-allowance plan has no certified bound");
        }
        other => panic!("expected a missed threshold, got {other}"),
    }

    // Minimization keeps the prefix up to the divergence and re-diverges
    // at the same event index when replayed from its own repro spec.
    let repro = minimize(&capture, job, &d);
    assert_eq!(repro.capture.len(), d.index + 1);
    let re_job = job_from_campaign(&repro.spec).expect("repro spec is one job");
    let re_report = replay(&repro.capture, &re_job).expect("repro analysis succeeds");
    let re_d = re_report.divergence.expect("minimized capture diverges");
    assert_eq!(re_d.index, d.index, "divergence index must be preserved");
    assert_eq!(re_d.kind, d.kind, "divergence kind must be preserved");
}

#[test]
fn fault_free_lineup_certifies_and_replays_clean() {
    // Without the injection the plan is trivially within allowance:
    // completions are held to the *certified* bounds and still pass.
    let spec = rtft_campaign::parse_spec(
        "campaign clean\n\
         horizon 1300ms\n\
         taskgen paper\n\
         faults none\n\
         treatment equitable\n\
         platform jrate\n",
    )
    .unwrap();
    let job = &spec.expand().unwrap()[0];
    let outcome = run_scenario(&job.scenario()).unwrap();
    let capture = TraceCapture::flat(0, "fp", "equitable", outcome.log.clone());
    let report = replay(&capture, job).unwrap();
    assert!(
        report.is_clean(),
        "diverged: {}",
        report.divergence.unwrap()
    );
    assert!(matches!(
        report.certification,
        Certification::Certified { .. }
    ));
    assert_eq!(report.verdict.to_string(), outcome.verdict.to_string());
}
